//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, the `criterion_group!`/`criterion_main!` macros, and
//! `black_box` — over a plain wall-clock harness. The real crate cannot be
//! fetched in the build container.
//!
//! Statistics are deliberately simple: each benchmark routine is warmed up
//! once, then timed over `sample_size` calls, reporting mean ns/iteration
//! (plus throughput when configured). No outlier analysis, no HTML
//! reports, no regression baselines.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Label for one benchmark, optionally parameterised (`"spawn_wait/1024"`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{param}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Work performed per routine call, for derived rate reporting.
#[derive(Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.id, self.sample_size, None, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.criterion.sample_size, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.criterion.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Handed to each routine; the routine calls [`Bencher::iter`] exactly once
/// with the closure to measure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos() as f64;
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher { iters: sample_size as u64, elapsed_ns: 0.0 };
    f(&mut bencher);
    let per_iter = bencher.elapsed_ns / bencher.iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3e} elem/s)", n as f64 / (per_iter * 1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.3e} B/s)", n as f64 / (per_iter * 1e-9))
        }
        None => String::new(),
    };
    println!(
        "bench {label:<48} {per_iter:>14.1} ns/iter  [{} samples]{rate}",
        bencher.iters
    );
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routine(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = routine
    }

    #[test]
    fn harness_runs_groups() {
        benches();
    }
}
