//! Offline stand-in for `serde_derive`.
//!
//! Expands `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the shapes
//! this workspace actually defines: non-generic structs (named, tuple,
//! newtype, unit) and non-generic enums whose variants are unit, newtype,
//! tuple, or struct-like. Upstream uses `syn`/`quote`; those cannot be
//! fetched in the build container, so the item is parsed directly off the
//! `proc_macro` token stream. Only field *names* and *counts* are needed —
//! field types are never parsed, because the generated `Deserialize` code
//! recovers them through inference (`next_element()` feeding a struct
//! literal / constructor call).
//!
//! Unsupported (rejected with `compile_error!`): generic parameters and
//! `where` clauses. Ignored: all attributes, including `#[serde(...)]`
//! (the workspace uses none). Struct deserialization is sequence-driven
//! only, matching the non-self-describing parcel codec in
//! `parallex-core`; map-keyed formats are out of scope.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;
use std::str::FromStr;

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

enum Fields {
    Unit,
    /// Tuple struct/variant with this many fields.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    TokenStream::from_str(&code).expect("derive shim generated invalid Rust")
}

// ---- parsing --------------------------------------------------------------

fn peek_punct(it: &mut TokenIter, c: char) -> bool {
    matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn peek_ident(it: &mut TokenIter, word: &str) -> bool {
    matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == word)
}

/// If the next token is a group, return its delimiter and contents without
/// consuming it.
fn peek_group(it: &mut TokenIter) -> Option<(Delimiter, TokenStream)> {
    match it.peek() {
        Some(TokenTree::Group(g)) => Some((g.delimiter(), g.stream())),
        _ => None,
    }
}

/// Consume `#[...]` attributes (doc comments arrive in this form too).
fn skip_attributes(it: &mut TokenIter) {
    while peek_punct(it, '#') {
        it.next();
        it.next(); // the [...] group
    }
}

/// Consume `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(it: &mut TokenIter) {
    if peek_ident(it, "pub") {
        it.next();
        if let Some((Delimiter::Parenthesis, _)) = peek_group(it) {
            it.next();
        }
    }
}

/// Consume tokens until a top-level `,` (or the end), tracking `<`/`>`
/// depth so commas inside generic arguments don't terminate early. Groups
/// are single tokens, so only angle brackets need explicit depth.
fn skip_past_comma(it: &mut TokenIter) {
    let mut depth = 0i32;
    for tt in it.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut it: TokenIter = input.into_iter().peekable();

    skip_attributes(&mut it);
    skip_visibility(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => {
            let word = id.to_string();
            if word != "struct" && word != "enum" {
                return Err(format!(
                    "serde derive shim: unsupported item kind `{word}` (only structs and enums)"
                ));
            }
            word
        }
        other => {
            return Err(format!(
                "serde derive shim: unexpected token {:?} before item keyword",
                other.map(|t| t.to_string())
            ))
        }
    };

    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde derive shim: expected item name".into()),
    };

    if peek_punct(&mut it, '<') {
        return Err(format!(
            "serde derive shim: `{name}` is generic; only non-generic types are supported offline"
        ));
    }
    if peek_ident(&mut it, "where") {
        return Err(format!(
            "serde derive shim: `{name}` has a where clause; not supported offline"
        ));
    }

    if kind == "enum" {
        match peek_group(&mut it) {
            Some((Delimiter::Brace, body)) => Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            }),
            _ => Err(format!("serde derive shim: expected `{{` after `enum {name}`")),
        }
    } else {
        let fields = match peek_group(&mut it) {
            Some((Delimiter::Brace, body)) => Fields::Named(parse_named_fields(body)?),
            Some((Delimiter::Parenthesis, body)) => Fields::Tuple(count_tuple_fields(body)),
            None if peek_punct(&mut it, ';') => Fields::Unit,
            _ => return Err(format!("serde derive shim: malformed struct `{name}` body")),
        };
        Ok(Item::Struct { name, fields })
    }
}

/// Count comma-separated items at angle-bracket depth 0, tolerating a
/// trailing comma.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    let mut any = false;
    for tt in body {
        any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    match (any, trailing_comma) {
        (false, _) => 0,
        (true, true) => commas,
        (true, false) => commas + 1,
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut it: TokenIter = body.into_iter().peekable();
    let mut names = Vec::new();
    loop {
        skip_attributes(&mut it);
        skip_visibility(&mut it);
        match it.next() {
            None => return Ok(names),
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                if !peek_punct(&mut it, ':') {
                    return Err(format!(
                        "serde derive shim: expected `:` after field `{id}`"
                    ));
                }
                it.next();
                skip_past_comma(&mut it);
            }
            Some(t) => {
                return Err(format!(
                    "serde derive shim: unexpected token `{t}` in field list"
                ))
            }
        }
    }
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut it: TokenIter = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut it);
        match it.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(id)) => {
                let fields = match peek_group(&mut it) {
                    Some((Delimiter::Parenthesis, inner)) => {
                        it.next();
                        Fields::Tuple(count_tuple_fields(inner))
                    }
                    Some((Delimiter::Brace, inner)) => {
                        it.next();
                        Fields::Named(parse_named_fields(inner)?)
                    }
                    _ => Fields::Unit,
                };
                // Swallow an optional `= discriminant` and the separator.
                skip_past_comma(&mut it);
                variants.push(Variant { name: id.to_string(), fields });
            }
            Some(t) => {
                return Err(format!(
                    "serde derive shim: unexpected token `{t}` in variant list"
                ))
            }
        }
    }
}

// ---- code generation ------------------------------------------------------

fn str_slice(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("{s:?}")).collect();
    format!("&[{}]", quoted.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, gen_serialize_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, gen_serialize_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, clippy::all)]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S>(&self, __serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error>\n\
             where __S: ::serde::ser::Serializer {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn gen_serialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => {
            format!("::serde::ser::Serializer::serialize_unit_struct(__serializer, {name:?})")
        }
        Fields::Tuple(1) => format!(
            "::serde::ser::Serializer::serialize_newtype_struct(__serializer, {name:?}, &self.0)"
        ),
        Fields::Tuple(n) => {
            let mut out = format!(
                "let mut __state = ::serde::ser::Serializer::serialize_tuple_struct(__serializer, {name:?}, {n}usize)?;\n"
            );
            for i in 0..*n {
                let _ = writeln!(
                    out,
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __state, &self.{i})?;"
                );
            }
            out.push_str("::serde::ser::SerializeTupleStruct::end(__state)");
            out
        }
        Fields::Named(names) => {
            let mut out = format!(
                "let mut __state = ::serde::ser::Serializer::serialize_struct(__serializer, {name:?}, {}usize)?;\n",
                names.len()
            );
            for f in names {
                let _ = writeln!(
                    out,
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, {f:?}, &self.{f})?;"
                );
            }
            out.push_str("::serde::ser::SerializeStruct::end(__state)");
            out
        }
    }
}

fn gen_serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    if variants.is_empty() {
        return "match *self {}".into();
    }
    let mut out = String::from("match self {\n");
    for (i, v) in variants.iter().enumerate() {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => {
                let _ = writeln!(
                    out,
                    "{name}::{vname} => ::serde::ser::Serializer::serialize_unit_variant(__serializer, {name:?}, {i}u32, {vname:?}),"
                );
            }
            Fields::Tuple(1) => {
                let _ = writeln!(
                    out,
                    "{name}::{vname}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(__serializer, {name:?}, {i}u32, {vname:?}, __f0),"
                );
            }
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                let _ = writeln!(out, "{name}::{vname}({}) => {{", binders.join(", "));
                let _ = writeln!(
                    out,
                    "let mut __state = ::serde::ser::Serializer::serialize_tuple_variant(__serializer, {name:?}, {i}u32, {vname:?}, {n}usize)?;"
                );
                for b in &binders {
                    let _ = writeln!(
                        out,
                        "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, {b})?;"
                    );
                }
                out.push_str("::serde::ser::SerializeTupleVariant::end(__state)\n}\n");
            }
            Fields::Named(fields) => {
                let _ = writeln!(out, "{name}::{vname} {{ {} }} => {{", fields.join(", "));
                let _ = writeln!(
                    out,
                    "let mut __state = ::serde::ser::Serializer::serialize_struct_variant(__serializer, {name:?}, {i}u32, {vname:?}, {}usize)?;",
                    fields.len()
                );
                for f in fields {
                    let _ = writeln!(
                        out,
                        "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, {f:?}, {f})?;"
                    );
                }
                out.push_str("::serde::ser::SerializeStructVariant::end(__state)\n}\n");
            }
        }
    }
    out.push('}');
    out
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => (name, gen_deserialize_struct_body(name, fields)),
        Item::Enum { name, variants } => (name, gen_deserialize_enum_body(name, variants)),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_mut, clippy::all)]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D>(__deserializer: __D) -> ::core::result::Result<Self, __D::Error>\n\
             where __D: ::serde::de::Deserializer<'de> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

/// `match` arm pulling sequence element `idx` with a length error naming
/// the overall shape; the element type is inferred from the construction
/// site this expression is spliced into.
fn next_element_expr(idx: usize, expected: &str) -> String {
    format!(
        "match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
             ::core::option::Option::Some(__value) => __value,\n\
             ::core::option::Option::None => return ::core::result::Result::Err(\n\
                 ::serde::de::Error::invalid_length({idx}usize, &{expected:?})),\n\
         }}"
    )
}

/// A `visit_seq` implementation whose body evaluates `construct` (an
/// expression over `__seq`).
fn visit_seq_fn(construct: &str) -> String {
    format!(
        "fn visit_seq<__A>(self, mut __seq: __A) -> ::core::result::Result<Self::Value, __A::Error>\n\
         where __A: ::serde::de::SeqAccess<'de> {{\n\
             ::core::result::Result::Ok({construct})\n\
         }}"
    )
}

fn named_construct(path: &str, fields: &[String], expected: &str) -> String {
    let mut out = format!("{path} {{\n");
    for (i, f) in fields.iter().enumerate() {
        let _ = writeln!(out, "{f}: {},", next_element_expr(i, expected));
    }
    out.push('}');
    out
}

fn tuple_construct(path: &str, n: usize, expected: &str) -> String {
    let elems: Vec<String> = (0..n).map(|i| next_element_expr(i, expected)).collect();
    format!("{path}({})", elems.join(",\n"))
}

fn visitor_impl(visitor: &str, value: &str, expecting: &str, methods: &str) -> String {
    format!(
        "struct {visitor};\n\
         impl<'de> ::serde::de::Visitor<'de> for {visitor} {{\n\
             type Value = {value};\n\
             fn expecting(&self, __f: &mut ::core::fmt::Formatter<'_>) -> ::core::fmt::Result {{\n\
                 __f.write_str({expecting:?})\n\
             }}\n\
             {methods}\n\
         }}\n"
    )
}

fn gen_deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => {
            let methods = format!(
                "fn visit_unit<__E>(self) -> ::core::result::Result<Self::Value, __E>\n\
                 where __E: ::serde::de::Error {{ ::core::result::Result::Ok({name}) }}"
            );
            format!(
                "{}\n::serde::de::Deserializer::deserialize_unit_struct(__deserializer, {name:?}, __Visitor)",
                visitor_impl("__Visitor", name, &format!("unit struct {name}"), &methods)
            )
        }
        Fields::Tuple(1) => {
            let expected = format!("tuple struct {name} with 1 element");
            let methods = format!(
                "fn visit_newtype_struct<__E>(self, __inner: __E) -> ::core::result::Result<Self::Value, __E::Error>\n\
                 where __E: ::serde::de::Deserializer<'de> {{\n\
                     ::core::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(__inner)?))\n\
                 }}\n\
                 {}",
                visit_seq_fn(&tuple_construct(name, 1, &expected))
            );
            format!(
                "{}\n::serde::de::Deserializer::deserialize_newtype_struct(__deserializer, {name:?}, __Visitor)",
                visitor_impl("__Visitor", name, &expected, &methods)
            )
        }
        Fields::Tuple(n) => {
            let expected = format!("tuple struct {name} with {n} elements");
            let methods = visit_seq_fn(&tuple_construct(name, *n, &expected));
            format!(
                "{}\n::serde::de::Deserializer::deserialize_tuple_struct(__deserializer, {name:?}, {n}usize, __Visitor)",
                visitor_impl("__Visitor", name, &expected, &methods)
            )
        }
        Fields::Named(names) => {
            let expected = format!("struct {name} with {} fields", names.len());
            let methods = visit_seq_fn(&named_construct(name, names, &expected));
            format!(
                "{}\n::serde::de::Deserializer::deserialize_struct(__deserializer, {name:?}, {}, __Visitor)",
                visitor_impl("__Visitor", name, &expected, &methods),
                str_slice(names)
            )
        }
    }
}

fn gen_deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let n = variants.len();
    let mut arms = String::new();
    for (i, v) in variants.iter().enumerate() {
        let vname = &v.name;
        let path = format!("{name}::{vname}");
        match &v.fields {
            Fields::Unit => {
                let _ = writeln!(
                    arms,
                    "{i}u32 => {{ ::serde::de::VariantAccess::unit_variant(__variant)?; ::core::result::Result::Ok({path}) }}"
                );
            }
            Fields::Tuple(1) => {
                let _ = writeln!(
                    arms,
                    "{i}u32 => ::core::result::Result::Ok({path}(::serde::de::VariantAccess::newtype_variant(__variant)?)),"
                );
            }
            Fields::Tuple(k) => {
                let expected = format!("tuple variant {path} with {k} elements");
                let visitor = format!("__Variant{i}");
                let _ = writeln!(
                    arms,
                    "{i}u32 => {{\n{}\n::serde::de::VariantAccess::tuple_variant(__variant, {k}usize, {visitor})\n}}",
                    visitor_impl(
                        &visitor,
                        name,
                        &expected,
                        &visit_seq_fn(&tuple_construct(&path, *k, &expected)),
                    )
                );
            }
            Fields::Named(fields) => {
                let expected = format!("struct variant {path} with {} fields", fields.len());
                let visitor = format!("__Variant{i}");
                let _ = writeln!(
                    arms,
                    "{i}u32 => {{\n{}\n::serde::de::VariantAccess::struct_variant(__variant, {}, {visitor})\n}}",
                    visitor_impl(
                        &visitor,
                        name,
                        &expected,
                        &visit_seq_fn(&named_construct(&path, fields, &expected)),
                    ),
                    str_slice(fields)
                );
            }
        }
    }
    let variant_names: Vec<String> = variants.iter().map(|v| v.name.clone()).collect();
    let methods = format!(
        "fn visit_enum<__A>(self, __data: __A) -> ::core::result::Result<Self::Value, __A::Error>\n\
         where __A: ::serde::de::EnumAccess<'de> {{\n\
             let (__index, __variant): (u32, _) = ::serde::de::EnumAccess::variant(__data)?;\n\
             match __index {{\n\
                 {arms}\n\
                 __other => ::core::result::Result::Err(::serde::de::Error::custom(\n\
                     ::core::format_args!(\"invalid variant index {{}} for enum {name} with {n} variants\", __other))),\n\
             }}\n\
         }}"
    );
    format!(
        "{}\n::serde::de::Deserializer::deserialize_enum(__deserializer, {name:?}, {}, __Visitor)",
        visitor_impl("__Visitor", name, &format!("enum {name}"), &methods),
        str_slice(&variant_names)
    )
}
