//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! Provides the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), `any::<T>()`,
//! numeric range strategies, `collection::vec`, `option::of`, tuple
//! strategies, a `.{m,n}`-style string pattern strategy, and the
//! `prop_assert!`/`prop_assert_eq!` macros. The real crate cannot be
//! fetched in the build container.
//!
//! Deliberate simplifications: no shrinking (a failing case reports its
//! inputs via the assertion message instead of minimising them), and
//! generation is deterministic per test name (seeded from a hash of the
//! test function's name) so failures reproduce exactly across runs.

pub mod strategy {
    use crate::test_runner::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut Rng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;
                    fn sample(&self, rng: &mut Rng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128) - (self.start as i128);
                        let off = (rng.next_u64() as i128).rem_euclid(span);
                        (self.start as i128 + off) as $ty
                    }
                }
            )*
        };
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;
                    fn sample(&self, rng: &mut Rng) -> $ty {
                        self.start + (rng.next_unit_f64() as $ty) * (self.end - self.start)
                    }
                }
            )*
        };
    }

    float_range_strategy!(f32, f64);

    /// Strategy yielding arbitrary values of `T`; see [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with a default "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_from_bits {
        ($($ty:ty => $conv:expr,)*) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary(rng: &mut Rng) -> $ty {
                        let bits = rng.next_u64();
                        #[allow(clippy::redundant_closure_call)]
                        ($conv)(bits)
                    }
                }
            )*
        };
    }

    arbitrary_from_bits! {
        u8 => |b| b as u8,
        u16 => |b| b as u16,
        u32 => |b| b as u32,
        u64 => |b| b,
        usize => |b| b as usize,
        i8 => |b| b as i8,
        i16 => |b| b as i16,
        i32 => |b| b as i32,
        i64 => |b| b as i64,
        isize => |b| b as isize,
        bool => |b| b & 1 == 1,
        // Full bit patterns on purpose: serialization roundtrips compare
        // `to_bits`, so NaN payloads are legitimate inputs.
        f64 => f64::from_bits,
        f32 => |b| f32::from_bits(b as u32),
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut Rng) -> char {
            loop {
                if let Some(c) = char::from_u32(rng.next_u64() as u32 % 0x11_0000) {
                    return c;
                }
            }
        }
    }

    /// String patterns double as strategies; only the `.{m,n}` form the
    /// workspace uses is interpreted, anything else falls back to short
    /// strings. Mixed ASCII/multibyte alphabet exercises UTF-8 handling.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut Rng) -> String {
            const ALPHABET: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '.', '"', '\\', '\n',
                'é', 'ß', 'λ', '中', '🦀',
            ];
            let (min, max) = parse_repeat_pattern(self).unwrap_or((0, 16));
            let len = min + (rng.next_u64() as usize) % (max - min + 1);
            (0..len)
                .map(|_| ALPHABET[rng.next_u64() as usize % ALPHABET.len()])
                .collect()
        }
    }

    /// Parse `.{m,n}` into `(m, n)`.
    fn parse_repeat_pattern(pat: &str) -> Option<(usize, usize)> {
        let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {
            $(
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);
                    fn sample(&self, rng: &mut Rng) -> Self::Value {
                        ($(self.$n.sample(rng),)+)
                    }
                }
            )*
        };
    }

    tuple_strategy! {
        (0 S0, 1 S1)
        (0 S0, 1 S1, 2 S2)
        (0 S0, 1 S1, 2 S2, 3 S3)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + (rng.next_u64() as usize) % span.max(1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Option<S::Value> {
            // Roughly one None in four keeps both arms exercised.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod test_runner {
    /// SplitMix64: tiny, full-period, and plenty for test-input generation.
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Seed from the test name so every run of a given test replays the
        /// same case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Rng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-invocation knobs; only the case count is configurable here.
    #[derive(Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
/// Each function body runs `cases` times with fresh deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::Rng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assertion macro mirroring `proptest::prop_assert!`; panics (failing the
/// surrounding `#[test]`) instead of returning a `TestCaseError`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y), "{y} out of range");
        }

        #[test]
        fn vec_sizes_respect_spec(
            v in crate::collection::vec(any::<u8>(), 2..5),
            w in crate::collection::vec(any::<u32>(), 8),
            s in ".{0,16}",
            o in crate::option::of(any::<i64>()),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(w.len(), 8);
            prop_assert!(s.chars().count() <= 16);
            let _ = o;
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::Rng::deterministic("x");
        let mut b = crate::test_runner::Rng::deterministic("x");
        let mut c = crate::test_runner::Rng::deterministic("y");
        let (a0, b0, c0) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(a0, b0);
        assert_ne!(a0, c0);
    }
}
