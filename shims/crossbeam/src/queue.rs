//! `SegQueue`: unbounded MPMC FIFO.
//!
//! Upstream's segmented lock-free queue needs epoch-based reclamation to
//! free consumed segments safely; vendoring that machinery is not worth it
//! for the cold lanes this queue serves (pinned / high-priority tasks and
//! external injection). This stand-in is a short-critical-section spinlock
//! around a `VecDeque`, with a batch pop so callers can amortize one lock
//! acquisition over many elements.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

/// A minimal test-and-test-and-set spinlock.
struct SpinLock {
    locked: AtomicBool,
}

impl SpinLock {
    const fn new() -> SpinLock {
        SpinLock { locked: AtomicBool::new(false) }
    }

    fn acquire(&self) {
        let mut spins = 0u32;
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    fn release(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

/// An unbounded MPMC FIFO queue.
pub struct SegQueue<T> {
    lock: SpinLock,
    items: UnsafeCell<VecDeque<T>>,
}

unsafe impl<T: Send> Send for SegQueue<T> {}
unsafe impl<T: Send> Sync for SegQueue<T> {}

impl<T> SegQueue<T> {
    pub const fn new() -> SegQueue<T> {
        SegQueue {
            lock: SpinLock::new(),
            items: UnsafeCell::new(VecDeque::new()),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut VecDeque<T>) -> R) -> R {
        self.lock.acquire();
        // SAFETY: the spinlock serializes all access to `items`.
        let r = f(unsafe { &mut *self.items.get() });
        self.lock.release();
        r
    }

    /// Append to the back.
    pub fn push(&self, value: T) {
        self.with(|q| q.push_back(value));
    }

    /// Take from the front.
    pub fn pop(&self) -> Option<T> {
        self.with(|q| q.pop_front())
    }

    /// Take up to half the queue (at least one element, at most `max`)
    /// from the front in one lock acquisition.
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        self.with(|q| {
            let n = q.len().div_ceil(2).min(max).min(q.len());
            q.drain(..n).collect()
        })
    }

    pub fn len(&self) -> usize {
        self.with(|q| q.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        SegQueue::new()
    }
}

impl<T> std::fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegQueue").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = SegQueue::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_batch_takes_half_up_to_max() {
        let q = SegQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        let b = q.pop_batch(32);
        assert_eq!(b, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.len(), 5);
        assert_eq!(q.pop_batch(2), vec![5, 6]);
    }

    #[test]
    fn concurrent_push_pop() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let q = Arc::new(SegQueue::new());
        let got = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        q.push(i);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                let got = got.clone();
                std::thread::spawn(move || loop {
                    if q.pop().is_some() {
                        if got.fetch_add(1, Ordering::Relaxed) + 1 == 4000 {
                            break;
                        }
                    } else if got.load(Ordering::Relaxed) >= 4000 {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(got.load(Ordering::Relaxed), 4000);
    }
}
