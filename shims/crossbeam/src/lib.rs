//! Offline stand-in for the [`crossbeam`](https://docs.rs/crossbeam) facade
//! crate, providing the subset this workspace uses:
//!
//! * [`deque`] — a genuine lock-free Chase-Lev work-stealing deque
//!   (`Worker` / `Stealer` / `Injector` / `Steal`), including
//!   `steal_batch_and_pop`. The owner-side `push`/`pop` and the thief-side
//!   `steal` are wait-free/lock-free exactly as in `crossbeam-deque`; this
//!   is the hot path of the `parallex` scheduler.
//! * [`queue`] — `SegQueue`, an unbounded MPMC FIFO. Unlike upstream this
//!   one is a small spinlock around a `VecDeque` (safe memory reclamation
//!   for a fully lock-free segmented queue needs epoch GC, which is not
//!   worth vendoring); the scheduler only touches it on cold lanes
//!   (pinned/high-priority tasks).
//! * [`utils`] — `CachePadded`, alignment padding against false sharing.
//!
//! The build container has no registry access, so the real crate cannot be
//! fetched; API names and semantics follow upstream so the workspace code
//! reads identically.

pub mod deque;
pub mod queue;
pub mod utils;
