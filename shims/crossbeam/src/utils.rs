//! Small utilities mirroring `crossbeam-utils`.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so adjacent values never share a
/// cache line (128 covers the prefetch-pair granularity of modern x86 and
/// the 128-byte lines of some Arm server cores, the platforms the paper
/// targets).
#[derive(Clone, Copy, Default, Debug)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
    }
}
