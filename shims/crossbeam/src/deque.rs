//! Chase-Lev work-stealing deque with batch stealing.
//!
//! The implementation follows Lê, Pop, Cohen & Zappa Nardelli, *"Correct
//! and Efficient Work-Stealing for Weak Memory Models"* (PPoPP'13): the
//! owner pushes and pops at the *bottom* (LIFO), thieves `compare_exchange`
//! the *top* (FIFO), a `SeqCst` fence orders the owner's bottom
//! decrement against the thief's top read, and the race for the last
//! element is resolved by a CAS on `top` from both sides.
//!
//! Differences from `crossbeam-deque` worth knowing about:
//!
//! * **Buffer reclamation is deferred to drop.** Upstream frees grown-out
//!   buffers through epoch GC; here the owner retires old buffers into a
//!   list freed when the last handle goes away. A deque that grows to N
//!   elements retires at most 2N slots of garbage (geometric series), so
//!   memory stays bounded by live usage.
//! * Only the LIFO worker flavor is provided (`Worker::new_lifo`), which
//!   is what a task scheduler wants: the task most recently made runnable
//!   has the warmest cache footprint.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Arc;

/// How many tasks one `steal_batch_and_pop` may move (upstream uses 32).
const MAX_BATCH: isize = 32;

/// The result of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// One element was stolen (for batch steals: the first of the batch,
    /// the rest having been pushed into the destination worker).
    Success(T),
    /// A concurrent operation interfered; the caller may retry.
    Retry,
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

/// A growable ring buffer of `T` slots. Slots are raw (`MaybeUninit`);
/// liveness is tracked by the deque's `top`/`bottom` indices.
struct Buffer<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Power-of-two capacity; index masking instead of modulo.
    mask: usize,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::into_raw(Box::new(Buffer { slots, mask: cap - 1 }))
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    /// Raw slot pointer for logical index `i`.
    fn at(&self, i: isize) -> *mut MaybeUninit<T> {
        self.slots[(i as usize) & self.mask].get()
    }

    unsafe fn write(&self, i: isize, v: T) {
        (*self.at(i)).write(v);
    }

    unsafe fn read(&self, i: isize) -> T {
        self.at(i).read().assume_init()
    }
}

struct Inner<T> {
    /// Thieves' end. Monotonically increasing.
    top: AtomicIsize,
    /// Owner's end.
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by `grow`, freed on drop (owner-only access).
    retired: UnsafeCell<Vec<*mut Buffer<T>>>,
}

unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access: the last Worker/Stealer handle is gone.
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        let buf = self.buffer.load(Ordering::Relaxed);
        unsafe {
            for i in t..b {
                drop((*buf).read(i));
            }
            drop(Box::from_raw(buf));
            for old in self.retired.get_mut().drain(..) {
                drop(Box::from_raw(old));
            }
        }
    }
}

/// The owner handle: single-threaded LIFO push/pop at the bottom end.
///
/// `Worker` is `Send` (it can be moved to the worker thread) but not
/// `Sync` and not `Clone`: exactly one thread may use it at a time, which
/// is what makes the owner path lock-free without CAS on push.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    /// `!Sync` marker: owner operations are single-threaded by contract.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

unsafe impl<T: Send> Send for Worker<T> {}

impl<T> Worker<T> {
    /// Create a LIFO worker (owner pops its most recent push first;
    /// thieves steal the oldest element).
    pub fn new_lifo() -> Worker<T> {
        let inner = Arc::new(Inner {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::alloc(64)),
            retired: UnsafeCell::new(Vec::new()),
        });
        Worker { inner, _not_sync: PhantomData }
    }

    /// A thief handle to this deque. Cheap; any number may exist.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { inner: self.inner.clone() }
    }

    /// Number of elements currently in the deque (racy snapshot).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Replace the buffer with one of twice the capacity, copying the live
    /// range. Owner-only. The old buffer is retired, not freed: thieves
    /// may still be reading it.
    #[cold]
    fn grow(&self, t: isize, b: isize) -> *mut Buffer<T> {
        let old = self.inner.buffer.load(Ordering::Relaxed);
        unsafe {
            let new = Buffer::alloc((*old).cap() * 2);
            for i in t..b {
                std::ptr::copy_nonoverlapping((*old).at(i), (*new).at(i), 1);
            }
            (*self.inner.retired.get()).push(old);
            self.inner.buffer.store(new, Ordering::Release);
            new
        }
    }

    /// Push onto the bottom end. Lock-free, no CAS.
    pub fn push(&self, value: T) {
        let b = self.inner.bottom.load(Ordering::Relaxed);
        let t = self.inner.top.load(Ordering::Acquire);
        let mut buf = self.inner.buffer.load(Ordering::Relaxed);
        unsafe {
            if b - t > (*buf).cap() as isize - 1 {
                buf = self.grow(t, b);
            }
            (*buf).write(b, value);
        }
        fence(Ordering::Release);
        self.inner.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Pop from the bottom end (the most recent push). Lock-free; a CAS
    /// happens only in the one-element race against thieves.
    pub fn pop(&self) -> Option<T> {
        let b = self.inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.inner.buffer.load(Ordering::Relaxed);
        self.inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.inner.top.load(Ordering::Relaxed);
        if t <= b {
            let value = unsafe { (*buf).read(b) };
            if t == b {
                // Last element: race thieves for it via top.
                if self
                    .inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    // A thief got it; the value we read is theirs.
                    std::mem::forget(value);
                    self.inner.bottom.store(b + 1, Ordering::Relaxed);
                    return None;
                }
                self.inner.bottom.store(b + 1, Ordering::Relaxed);
            }
            Some(value)
        } else {
            // Deque was empty; restore bottom.
            self.inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Worker").field("len", &self.len()).finish()
    }
}

/// A thief handle: lock-free FIFO steals from the top end.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

unsafe impl<T: Send> Send for Stealer<T> {}
unsafe impl<T: Send> Sync for Stealer<T> {}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { inner: self.inner.clone() }
    }
}

impl<T> Stealer<T> {
    /// Number of elements currently in the deque (racy snapshot).
    pub fn len(&self) -> usize {
        let t = self.inner.top.load(Ordering::Relaxed);
        let b = self.inner.bottom.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Steal the oldest element.
    pub fn steal(&self) -> Steal<T> {
        let t = self.inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = self.inner.buffer.load(Ordering::Acquire);
        let value = unsafe { (*buf).read(t) };
        if self
            .inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            // Lost the race: the value belongs to whoever advanced top.
            std::mem::forget(value);
            return Steal::Retry;
        }
        Steal::Success(value)
    }

    /// Steal up to half the victim's elements (capped at a small batch
    /// size), push all but the first into `dest`, and return the first.
    ///
    /// Elements are claimed one `compare_exchange` on `top` at a time,
    /// aborting the batch at the first interference. A single bulk CAS
    /// over a speculatively-read range would be unsound: the owner
    /// removes non-last elements by moving `bottom` alone (it only
    /// touches `top` for the final element), so a bulk CAS on `top` can
    /// succeed even after the owner popped — or pushed over — slots the
    /// thief already read, running the same task twice and leaving
    /// `top > bottom`. Upstream crossbeam-deque steals LIFO batches
    /// element-wise for the same reason; the batch still amortizes the
    /// victim-selection walk and fence traffic over many tasks.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut t = self.inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.inner.bottom.load(Ordering::Acquire);
        let n = b - t;
        if n <= 0 {
            return Steal::Empty;
        }
        let take = ((n + 1) / 2).min(MAX_BATCH);
        let buf = self.inner.buffer.load(Ordering::Acquire);
        let first = unsafe { (*buf).read(t) };
        if self
            .inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            // Lost the race: the value belongs to whoever advanced top.
            std::mem::forget(first);
            return Steal::Retry;
        }
        t += 1;
        for _ in 1..take {
            // Re-validate against `bottom` (the owner may have popped
            // down into the planned range) and reload the buffer (the
            // owner may have grown it) before each claim.
            fence(Ordering::SeqCst);
            let b = self.inner.bottom.load(Ordering::Acquire);
            if t >= b {
                break;
            }
            let buf = self.inner.buffer.load(Ordering::Acquire);
            let v = unsafe { (*buf).read(t) };
            if self
                .inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                std::mem::forget(v);
                break;
            }
            dest.push(v);
            t += 1;
        }
        Steal::Success(first)
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stealer").field("len", &self.len()).finish()
    }
}

/// An injector queue: an MPMC FIFO for work arriving from outside the
/// worker pool, drained in batches into a worker's deque.
///
/// Upstream's `Injector` is a lock-free segmented queue; safe reclamation
/// there rides on epoch GC. This stand-in is a spinlock around a
/// `VecDeque` — the scheduler only touches it for external spawns and
/// drains it in batches, so one brief lock acquisition amortizes over up
/// to [`MAX_BATCH`] tasks.
pub struct Injector<T> {
    queue: crate::queue::SegQueue<T>,
}

impl<T> Injector<T> {
    pub fn new() -> Injector<T> {
        Injector { queue: crate::queue::SegQueue::new() }
    }

    pub fn push(&self, value: T) {
        self.queue.push(value);
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Take the oldest element.
    pub fn steal(&self) -> Steal<T> {
        match self.queue.pop() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Take up to half the queue (capped), push all but the first into
    /// `dest`, return the first.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let batch = self.queue.pop_batch(MAX_BATCH as usize);
        let mut it = batch.into_iter();
        match it.next() {
            None => Steal::Empty,
            Some(first) => {
                for v in it {
                    dest.push(v);
                }
                Steal::Success(first)
            }
        }
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Injector").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn owner_is_lifo_thief_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1), "thief takes oldest");
        assert_eq!(w.pop(), Some(3), "owner takes newest");
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn grows_past_initial_capacity() {
        let w = Worker::new_lifo();
        for i in 0..10_000 {
            w.push(i);
        }
        assert_eq!(w.len(), 10_000);
        for i in (0..10_000).rev() {
            assert_eq!(w.pop(), Some(i));
        }
    }

    #[test]
    fn batch_steal_moves_half_and_pops_first() {
        let victim = Worker::new_lifo();
        let thief = Worker::new_lifo();
        for i in 0..8 {
            victim.push(i);
        }
        let got = victim.stealer().steal_batch_and_pop(&thief);
        assert_eq!(got, Steal::Success(0), "batch yields the oldest first");
        // Half of 8 = 4 moved: one returned, three in the thief's deque.
        assert_eq!(thief.len(), 3);
        assert_eq!(victim.len(), 4);
        // Thief's deque preserves FIFO order of the batch under LIFO pop?
        // No: thief pops newest first — the batch was pushed 1,2,3.
        assert_eq!(thief.pop(), Some(3));
    }

    #[test]
    fn injector_fifo_and_batch() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        assert_eq!(inj.steal(), Steal::Success(0));
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(1));
        assert!(inj.len() < 9);
    }

    #[test]
    fn drop_releases_remaining_elements() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let w = Worker::new_lifo();
            for _ in 0..100 {
                w.push(D);
            }
            for _ in 0..250 {
                w.push(D);
                w.pop();
            }
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 350);
    }

    #[test]
    fn concurrent_steal_conserves_elements() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        const N: usize = 100_000;
        let w = Worker::new_lifo();
        // Per-element delivery flags: batch stealing racing an owner that
        // pops down into the thief's planned range must never hand the
        // same element out twice (the owner removes non-last elements by
        // moving `bottom` alone, invisible to a bulk CAS on `top`).
        let seen: Arc<Vec<AtomicBool>> =
            Arc::new((0..N).map(|_| AtomicBool::new(false)).collect());
        let taken = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        let thieves: Vec<_> = (0..4)
            .map(|_| {
                let s = w.stealer();
                let seen = seen.clone();
                let taken = taken.clone();
                let done = done.clone();
                std::thread::spawn(move || {
                    let local = Worker::new_lifo();
                    let claim = |i: usize| {
                        assert!(!seen[i].swap(true, Ordering::Relaxed), "element {i} delivered twice");
                        taken.fetch_add(1, Ordering::Relaxed);
                    };
                    loop {
                        match s.steal_batch_and_pop(&local) {
                            Steal::Success(i) => {
                                claim(i);
                                while let Some(i) = local.pop() {
                                    claim(i);
                                }
                            }
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) == 1 {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                            Steal::Retry => {}
                        }
                    }
                })
            })
            .collect();
        let mut popped = 0;
        for i in 0..N {
            w.push(i);
            if i % 3 == 0 {
                if let Some(j) = w.pop() {
                    assert!(!seen[j].swap(true, Ordering::Relaxed), "element {j} delivered twice");
                    popped += 1;
                }
            }
        }
        while let Some(j) = w.pop() {
            assert!(!seen[j].swap(true, Ordering::Relaxed), "element {j} delivered twice");
            popped += 1;
        }
        done.store(1, Ordering::Release);
        for t in thieves {
            t.join().unwrap();
        }
        assert_eq!(popped + taken.load(Ordering::Relaxed), N);
    }
}
