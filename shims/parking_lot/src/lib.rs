//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot),
//! implementing the subset of its API this workspace uses on top of
//! `std::sync`. The build container has no registry access, so the real
//! crate cannot be fetched; the semantics match parking_lot's documented
//! behavior (no lock poisoning, guards deref to the data, `Condvar` works
//! with this module's `MutexGuard`).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutex that does not poison on panic (parking_lot semantics).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so [`Condvar`] can
/// temporarily take the std guard during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().unwrap()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().unwrap()
    }
}

/// A reader-writer lock without poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockReadGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockWriteGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with this module's [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().unwrap();
        guard.inner = Some(
            self.inner
                .wait(std_guard)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().unwrap();
        let (std_guard, result) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let now = std::time::Instant::now();
        if now >= deadline {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, deadline - now)
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // std does not report whether a thread was woken; parking_lot's
        // return value is only used informationally.
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                c.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panicked holder");
    }
}
