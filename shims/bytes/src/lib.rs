//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate,
//! covering the subset this workspace uses: [`Bytes`] as an immutable,
//! cheaply cloneable, reference-counted byte buffer. The build container
//! has no registry access, so the real crate cannot be fetched.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable shared byte buffer. Cloning is O(1) (bumps a refcount);
/// slicing views are not supported — this workspace only ships whole
/// payloads.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.data.iter() {
            for esc in std::ascii::escape_default(byte) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_shares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*c, &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }
}
