//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate,
//! covering the subset this workspace uses: [`Bytes`] as an immutable,
//! cheaply cloneable, reference-counted byte buffer with zero-copy
//! subslice views. The build container has no registry access, so the
//! real crate cannot be fetched.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable shared byte buffer. Cloning is O(1) (bumps a refcount),
/// and [`Bytes::slice`] returns an O(1) view sharing the same backing
/// allocation — like the real crate, equality/ordering/hashing compare
/// the visible contents, not the backing storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { off: 0, len: data.len(), data: Arc::from(data) }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// A zero-copy view of `range` (indices relative to this view),
    /// sharing the backing allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds, as the real crate does.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds of Bytes of length {}",
            self.len
        );
        Bytes { data: self.data.clone(), off: self.off + start, len: end - start }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { off: 0, len: v.len(), data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &byte in self.as_slice().iter() {
            for esc in std::ascii::escape_default(byte) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_shares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*c, &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default().len(), 0);
    }

    #[test]
    fn slice_is_a_zero_copy_view_with_value_equality() {
        let b = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(s.slice(1..), Bytes::from(vec![3u8, 4]), "nested view, content equality");
        assert_eq!(s.slice(..0).len(), 0);
        assert_eq!(b.slice(..), b);
        let copy = Bytes::copy_from_slice(&[2, 3, 4]);
        assert_eq!(s, copy, "equality ignores backing storage");
        use std::collections::hash_map::DefaultHasher;
        let h = |x: &Bytes| {
            let mut hasher = DefaultHasher::new();
            x.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&s), h(&copy));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8, 2]).slice(..3);
    }
}
