//! Offline stand-in for [`serde`](https://docs.rs/serde), implementing the
//! subset of the serde data model this workspace uses: the
//! [`Serialize`]/[`Deserialize`] traits, the [`ser`] and [`de`] trait
//! families a format implementation needs (`parallex`'s binary parcel
//! codec implements both sides in full), impls for the std types the
//! workspace serializes, and `#[derive(Serialize, Deserialize)]` for
//! non-generic structs and enums (re-exported from the sibling
//! `serde_derive` shim). The build container has no registry access, so
//! the real crate cannot be fetched.
//!
//! Not implemented (unused here): zero-copy `&'de` borrows beyond
//! `visit_borrowed_*` pass-throughs, `#[serde(...)]` attributes,
//! self-describing-format helpers (`deserialize_any` beyond the trait
//! slot), and untagged/adjacently tagged enum representations.

pub mod de;
pub mod ser;

mod impls;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};
