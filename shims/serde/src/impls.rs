//! `Serialize`/`Deserialize` implementations for the std types this
//! workspace puts on the wire.

use crate::de::{self, Deserialize, Deserializer, Error as DeError, Visitor};
use crate::ser::{
    Serialize, SerializeMap as _, SerializeSeq as _, SerializeTuple as _, Serializer,
};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;

// ---- primitives -----------------------------------------------------------

macro_rules! primitive_serialize {
    ($($ty:ty => $method:ident,)*) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

primitive_serialize! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    i128 => serialize_i128,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    u128 => serialize_u128,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

/// One visitor per integer target type; any integer visit converts with a
/// range check, so a format is free to call the width it stored.
macro_rules! int_deserialize {
    ($($ty:ty => $deserialize:ident & $expect:literal,)*) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct V;
                    impl<'de> Visitor<'de> for V {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str($expect)
                        }
                        int_visits!($ty);
                    }
                    deserializer.$deserialize(V)
                }
            }
        )*
    };
}

macro_rules! int_visits {
    ($target:ty) => {
        int_visit_one!($target, visit_i8, i8);
        int_visit_one!($target, visit_i16, i16);
        int_visit_one!($target, visit_i32, i32);
        int_visit_one!($target, visit_i64, i64);
        int_visit_one!($target, visit_i128, i128);
        int_visit_one!($target, visit_u8, u8);
        int_visit_one!($target, visit_u16, u16);
        int_visit_one!($target, visit_u32, u32);
        int_visit_one!($target, visit_u64, u64);
        int_visit_one!($target, visit_u128, u128);
    };
}

macro_rules! int_visit_one {
    ($target:ty, $visit:ident, $from:ty) => {
        fn $visit<E: DeError>(self, v: $from) -> Result<$target, E> {
            <$target>::try_from(v).map_err(|_| {
                DeError::custom(format_args!(
                    "integer {} out of range for {}",
                    v,
                    stringify!($target)
                ))
            })
        }
    };
}

int_deserialize! {
    i8 => deserialize_i8 & "i8",
    i16 => deserialize_i16 & "i16",
    i32 => deserialize_i32 & "i32",
    i64 => deserialize_i64 & "i64",
    i128 => deserialize_i128 & "i128",
    u8 => deserialize_u8 & "u8",
    u16 => deserialize_u16 & "u16",
    u32 => deserialize_u32 & "u32",
    u64 => deserialize_u64 & "u64",
    u128 => deserialize_u128 & "u128",
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        u64::deserialize(deserializer).and_then(|v| {
            usize::try_from(v).map_err(|_| DeError::custom("u64 out of range for usize"))
        })
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        i64::deserialize(deserializer).and_then(|v| {
            isize::try_from(v).map_err(|_| DeError::custom("i64 out of range for isize"))
        })
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = bool;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a boolean")
            }
            fn visit_bool<E: DeError>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_bool(V)
    }
}

macro_rules! float_deserialize {
    ($($ty:ty => $deserialize:ident, $visit32:ident, $visit64:ident;)*) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct V;
                    impl<'de> Visitor<'de> for V {
                        type Value = $ty;
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            f.write_str(stringify!($ty))
                        }
                        fn visit_f32<E: DeError>(self, v: f32) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                        fn visit_f64<E: DeError>(self, v: f64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                        fn visit_i64<E: DeError>(self, v: i64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                        fn visit_u64<E: DeError>(self, v: u64) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                    }
                    deserializer.$deserialize(V)
                }
            }
        )*
    };
}

float_deserialize! {
    f32 => deserialize_f32, visit_f32, visit_f64;
    f64 => deserialize_f64, visit_f32, visit_f64;
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = char;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a character")
            }
            fn visit_char<E: DeError>(self, v: char) -> Result<char, E> {
                Ok(v)
            }
            fn visit_str<E: DeError>(self, v: &str) -> Result<char, E> {
                let mut it = v.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(DeError::custom("expected a single character")),
                }
            }
        }
        deserializer.deserialize_char(V)
    }
}

// ---- strings --------------------------------------------------------------

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a string")
            }
            fn visit_str<E: DeError>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
            fn visit_string<E: DeError>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_string(V)
    }
}

// ---- references and boxes -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

// ---- unit and option ------------------------------------------------------

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> Visitor<'de> for V {
            type Value = ();
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("unit")
            }
            fn visit_unit<E: DeError>(self) -> Result<(), E> {
                Ok(())
            }
        }
        deserializer.deserialize_unit(V)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an option")
            }
            fn visit_none<E: DeError>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_unit<E: DeError>(self) -> Result<Option<T>, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(self, d: D) -> Result<Option<T>, D::Error> {
                T::deserialize(d).map(Some)
            }
        }
        deserializer.deserialize_option(V(PhantomData))
    }
}

// ---- sequences ------------------------------------------------------------

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for item in self {
            seq.serialize_element(item)?;
        }
        seq.end()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>> Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a sequence")
            }
            fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(v) = seq.next_element()? {
                    out.push(v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_seq(V(PhantomData))
    }
}

/// Arrays travel as tuples (fixed length, no prefix), as in upstream serde.
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut t = serializer.serialize_tuple(N)?;
        for item in self {
            t.serialize_element(item)?;
        }
        t.end()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, const N: usize>(PhantomData<T>);
        impl<'de, T: Deserialize<'de>, const N: usize> Visitor<'de> for V<T, N> {
            type Value = [T; N];
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "an array of length {N}")
            }
            fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<[T; N], A::Error> {
                let mut out = Vec::with_capacity(N);
                for i in 0..N {
                    match seq.next_element()? {
                        Some(v) => out.push(v),
                        None => {
                            return Err(DeError::custom(format_args!(
                                "array needs {N} elements, got {i}"
                            )))
                        }
                    }
                }
                out.try_into()
                    .map_err(|_| DeError::custom("array length mismatch"))
            }
        }
        deserializer.deserialize_tuple(N, V::<T, N>(PhantomData))
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! tuple_impls {
    ($($len:expr => ($($n:tt $t:ident),+))+) => {
        $(
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut t = serializer.serialize_tuple($len)?;
                    $(t.serialize_element(&self.$n)?;)+
                    t.end()
                }
            }

            impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
                fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                    struct V<$($t),+>(PhantomData<($($t,)+)>);
                    impl<'de, $($t: Deserialize<'de>),+> Visitor<'de> for V<$($t),+> {
                        type Value = ($($t,)+);
                        fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                            write!(f, "a tuple of length {}", $len)
                        }
                        fn visit_seq<A: de::SeqAccess<'de>>(
                            self,
                            mut seq: A,
                        ) -> Result<Self::Value, A::Error> {
                            Ok(($(
                                match seq.next_element::<$t>()? {
                                    Some(v) => v,
                                    None => return Err(DeError::custom(
                                        format_args!("tuple needs {} elements", $len),
                                    )),
                                },
                            )+))
                        }
                    }
                    deserializer.deserialize_tuple($len, V(PhantomData))
                }
            }
        )+
    };
}

tuple_impls! {
    1 => (0 T0)
    2 => (0 T0, 1 T1)
    3 => (0 T0, 1 T1, 2 T2)
    4 => (0 T0, 1 T1, 2 T2, 3 T3)
    5 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4)
    6 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5)
    7 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6)
    8 => (0 T0, 1 T1, 2 T2, 3 T3, 4 T4, 5 T5, 6 T6, 7 T7)
}

// ---- Result ---------------------------------------------------------------

/// Mirrors upstream serde: `Result` travels as an enum with variants
/// `Ok` (index 0) and `Err` (index 1).
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Ok(v) => serializer.serialize_newtype_variant("Result", 0, "Ok", v),
            Err(e) => serializer.serialize_newtype_variant("Result", 1, "Err", e),
        }
    }
}

impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Deserialize<'de> for Result<T, E> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T, E>(PhantomData<(T, E)>);
        impl<'de, T: Deserialize<'de>, E: Deserialize<'de>> Visitor<'de> for V<T, E> {
            type Value = Result<T, E>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a Result")
            }
            fn visit_enum<A: de::EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
                let (idx, variant): (u32, _) = de::EnumAccess::variant(data)?;
                match idx {
                    0 => de::VariantAccess::newtype_variant(variant).map(Ok),
                    1 => de::VariantAccess::newtype_variant(variant).map(Err),
                    other => Err(DeError::custom(format_args!(
                        "invalid variant index {other} for Result"
                    ))),
                }
            }
        }
        deserializer.deserialize_enum("Result", &["Ok", "Err"], V(PhantomData))
    }
}

// ---- maps -----------------------------------------------------------------

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for Vis<K, V> {
            type Value = BTreeMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: de::MapAccess<'de>>(
                self,
                mut map: A,
            ) -> Result<Self::Value, A::Error> {
                let mut out = BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = serializer.serialize_map(Some(self.len()))?;
        for (k, v) in self {
            map.serialize_entry(k, v)?;
        }
        map.end()
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct Vis<K, V>(PhantomData<(K, V)>);
        impl<'de, K, V> Visitor<'de> for Vis<K, V>
        where
            K: Deserialize<'de> + Eq + Hash,
            V: Deserialize<'de>,
        {
            type Value = HashMap<K, V>;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a map")
            }
            fn visit_map<A: de::MapAccess<'de>>(
                self,
                mut map: A,
            ) -> Result<Self::Value, A::Error> {
                let mut out = HashMap::with_capacity(map.size_hint().unwrap_or(0).min(4096));
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_map(Vis(PhantomData))
    }
}
