//! Deserialization half of the data model.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error values produced by a `Deserializer`.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;

    fn invalid_length(len: usize, expected: &dyn Display) -> Self {
        Error::custom(format_args!("invalid length {len}, expected {expected}"))
    }

    fn missing_field(field: &'static str) -> Self {
        Error::custom(format_args!("missing field `{field}`"))
    }
}

/// A data structure that can be deserialized from any format.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

/// Stateful deserialization entry point; `PhantomData<T>` is the stateless
/// seed that just runs `T::deserialize`.
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;
    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

/// Renders a visitor's `expecting` message for error text.
struct Expected<'a, V>(&'a V);

impl<'de, V: Visitor<'de>> Display for Expected<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.expecting(f)
    }
}

macro_rules! visit_default {
    ($name:ident, $ty:ty, $what:literal) => {
        fn $name<E: Error>(self, _v: $ty) -> Result<Self::Value, E> {
            Err(Error::custom(format_args!(
                concat!("invalid type: ", $what, ", expected {}"),
                Expected(&self)
            )))
        }
    };
}

/// Drives construction of a value from whatever shape the format found.
pub trait Visitor<'de>: Sized {
    type Value;

    /// "Expected a …" text used in error messages.
    fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result;

    visit_default!(visit_bool, bool, "a boolean");
    visit_default!(visit_i8, i8, "an integer");
    visit_default!(visit_i16, i16, "an integer");
    visit_default!(visit_i32, i32, "an integer");
    visit_default!(visit_i64, i64, "an integer");
    visit_default!(visit_i128, i128, "an integer");
    visit_default!(visit_u8, u8, "an unsigned integer");
    visit_default!(visit_u16, u16, "an unsigned integer");
    visit_default!(visit_u32, u32, "an unsigned integer");
    visit_default!(visit_u64, u64, "an unsigned integer");
    visit_default!(visit_u128, u128, "an unsigned integer");
    visit_default!(visit_f32, f32, "a float");
    visit_default!(visit_f64, f64, "a float");
    visit_default!(visit_char, char, "a character");

    fn visit_str<E: Error>(self, _v: &str) -> Result<Self::Value, E> {
        Err(Error::custom(format_args!(
            "invalid type: a string, expected {}",
            Expected(&self)
        )))
    }

    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    fn visit_bytes<E: Error>(self, _v: &[u8]) -> Result<Self::Value, E> {
        Err(Error::custom(format_args!(
            "invalid type: bytes, expected {}",
            Expected(&self)
        )))
    }

    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom(format_args!(
            "invalid type: none, expected {}",
            Expected(&self)
        )))
    }

    fn visit_some<D: Deserializer<'de>>(self, _deserializer: D) -> Result<Self::Value, D::Error> {
        Err(Error::custom(format_args!(
            "invalid type: some, expected {}",
            Expected(&self)
        )))
    }

    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        Err(Error::custom(format_args!(
            "invalid type: unit, expected {}",
            Expected(&self)
        )))
    }

    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        _deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        Err(Error::custom(format_args!(
            "invalid type: newtype struct, expected {}",
            Expected(&self)
        )))
    }

    fn visit_seq<A: SeqAccess<'de>>(self, _seq: A) -> Result<Self::Value, A::Error> {
        Err(Error::custom(format_args!(
            "invalid type: sequence, expected {}",
            Expected(&self)
        )))
    }

    fn visit_map<A: MapAccess<'de>>(self, _map: A) -> Result<Self::Value, A::Error> {
        Err(Error::custom(format_args!(
            "invalid type: map, expected {}",
            Expected(&self)
        )))
    }

    fn visit_enum<A: EnumAccess<'de>>(self, _data: A) -> Result<Self::Value, A::Error> {
        Err(Error::custom(format_args!(
            "invalid type: enum, expected {}",
            Expected(&self)
        )))
    }
}

/// A format that can deserialize the serde data model.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn deserialize_i128<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Self::Error> {
        Err(Error::custom("i128 is not supported by this format"))
    }

    fn deserialize_u128<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, Self::Error> {
        Err(Error::custom("u128 is not supported by this format"))
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V)
        -> Result<V::Value, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Access to the elements of a sequence being deserialized.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map being deserialized.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(&mut self, seed: V)
        -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(k) => Ok(Some((k, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum being deserialized.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the contents of the selected enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(self, seed: T)
        -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V)
        -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of a plain value into a `Deserializer` over it, used by
/// formats to hand variant indices to a seed.
pub trait IntoDeserializer<'de, E: Error = value::Error> {
    type Deserializer: Deserializer<'de, Error = E>;
    fn into_deserializer(self) -> Self::Deserializer;
}

pub mod value {
    //! Deserializers over plain in-memory values.

    use super::*;

    /// A plain string error for value deserializers.
    #[derive(Debug)]
    pub struct Error(String);

    impl Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    impl super::Error for Error {
        fn custom<T: Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    impl crate::ser::Error for Error {
        fn custom<T: Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    macro_rules! forward_to_value {
        ($($name:ident $(($($arg:ident : $argty:ty),*))?,)*) => {
            $(
                fn $name<V: Visitor<'de>>(self $(, $($arg: $argty),*)?, visitor: V)
                    -> Result<V::Value, Self::Error>
                {
                    $($(let _ = $arg;)*)?
                    self.deserialize_any(visitor)
                }
            )*
        };
    }

    /// Deserializer over a bare `u32` (enum variant indices).
    pub struct U32Deserializer<E> {
        value: u32,
        marker: PhantomData<E>,
    }

    impl<'de, E: super::Error> Deserializer<'de> for U32Deserializer<E> {
        type Error = E;

        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u32(self.value)
        }

        forward_to_value! {
            deserialize_bool, deserialize_i8, deserialize_i16, deserialize_i32,
            deserialize_i64, deserialize_i128, deserialize_u8, deserialize_u16,
            deserialize_u32, deserialize_u64, deserialize_u128, deserialize_f32,
            deserialize_f64, deserialize_char, deserialize_str, deserialize_string,
            deserialize_bytes, deserialize_byte_buf, deserialize_option,
            deserialize_unit, deserialize_seq, deserialize_map,
            deserialize_identifier, deserialize_ignored_any,
            deserialize_unit_struct(name: &'static str),
            deserialize_newtype_struct(name: &'static str),
            deserialize_tuple(len: usize),
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }
    }

    impl<'de, E: super::Error> IntoDeserializer<'de, E> for u32 {
        type Deserializer = U32Deserializer<E>;
        fn into_deserializer(self) -> U32Deserializer<E> {
            U32Deserializer { value: self, marker: PhantomData }
        }
    }

    /// Deserializer over a bare `usize` (sequence lengths, indices).
    pub struct UsizeDeserializer<E> {
        value: usize,
        marker: PhantomData<E>,
    }

    impl<'de, E: super::Error> Deserializer<'de> for UsizeDeserializer<E> {
        type Error = E;

        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
            visitor.visit_u64(self.value as u64)
        }

        forward_to_value! {
            deserialize_bool, deserialize_i8, deserialize_i16, deserialize_i32,
            deserialize_i64, deserialize_i128, deserialize_u8, deserialize_u16,
            deserialize_u32, deserialize_u64, deserialize_u128, deserialize_f32,
            deserialize_f64, deserialize_char, deserialize_str, deserialize_string,
            deserialize_bytes, deserialize_byte_buf, deserialize_option,
            deserialize_unit, deserialize_seq, deserialize_map,
            deserialize_identifier, deserialize_ignored_any,
            deserialize_unit_struct(name: &'static str),
            deserialize_newtype_struct(name: &'static str),
            deserialize_tuple(len: usize),
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            self.deserialize_any(visitor)
        }
    }

    impl<'de, E: super::Error> IntoDeserializer<'de, E> for usize {
        type Deserializer = UsizeDeserializer<E>;
        fn into_deserializer(self) -> UsizeDeserializer<E> {
            UsizeDeserializer { value: self, marker: PhantomData }
        }
    }
}
