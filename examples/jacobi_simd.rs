//! The paper's shared-memory 2D Jacobi benchmark (Listing 2, Figs. 4–8)
//! at laptop scale: scalar vs. explicit Virtual-Node-Scheme SIMD layouts,
//! verified against each other, timed on the host, and compared with the
//! modeled curves for the paper's machines.
//!
//! ```text
//! cargo run --release -p parallex-bench --example jacobi_simd
//! ```

use parallex::algorithms::par;
use parallex::prelude::*;
use parallex_machine::spec::ProcessorId;
use parallex_perfsim::exec::{glups_at, Stencil2dConfig};
use parallex_perfsim::kernel::Vectorization;
use parallex_stencil::jacobi2d::{Jacobi2d, Jacobi2dVns};

fn init(x: usize, y: usize) -> f64 {
    if x == 0 || y == 0 {
        1.0
    } else {
        0.0
    }
}

fn main() {
    let rt = Runtime::builder().worker_threads(4).build();
    let (nx, ny, steps) = (1024, 512, 50);

    // ---- native run: scalar ("auto-vectorized") layout -----------------
    let mut scalar = Jacobi2d::new(nx, ny, 0.0, init);
    let s_stats = scalar.run(steps, &par(&rt));
    println!(
        "scalar  layout: {:>7.1} MLUP/s ({:.3}s for {}x{}x{})",
        s_stats.glups * 1e3,
        s_stats.seconds,
        nx,
        ny,
        steps
    );

    // ---- native run: explicit VNS SIMD layout (8-wide, AVX-512-like) ---
    let mut vns = Jacobi2dVns::<f64, 8>::new(nx, ny, 0.0, init);
    let v_stats = vns.run(steps, &par(&rt));
    println!(
        "vns<8>  layout: {:>7.1} MLUP/s ({:.3}s)",
        v_stats.glups * 1e3,
        v_stats.seconds
    );

    // The two layouts must agree bit-for-bit.
    let err = scalar.grid().max_abs_diff(&vns.grid());
    println!("max |scalar - vns| = {err:.2e}");
    assert_eq!(err, 0.0);
    rt.shutdown();

    // ---- modeled full-node numbers for the paper's machines ------------
    println!("\nModeled full-node 2D stencil (paper grid 8192x131072, GLUP/s):");
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "machine", "float", "vec float", "double", "vec double"
    );
    for id in ProcessorId::ALL {
        let cores = id.spec().total_cores();
        let g = |bytes, vec| {
            let cfg = Stencil2dConfig::paper(id, bytes, vec);
            glups_at(&cfg, cores).expect("4/8 elem bytes are calibrated")
        };
        println!(
            "{:<26} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            id.name(),
            g(4, Vectorization::Auto),
            g(4, Vectorization::Explicit),
            g(8, Vectorization::Auto),
            g(8, Vectorization::Explicit),
        );
    }
    println!("\n(The A64FX row dwarfs the rest — HBM2; explicit vectorization");
    println!(" pays off most on Kunpeng 916 and ThunderX2, as in the paper.)");
}
