//! Quickstart: the ParalleX programming model in five minutes.
//!
//! ```text
//! cargo run --release -p parallex-bench --example quickstart
//! ```
//!
//! Walks through the core API: a runtime, async tasks + futures, dataflow
//! composition, LCOs, and a data-parallel `for_each` — the building
//! blocks the paper's benchmarks (Listings 1 and 2) are made of.

use parallex::lcos::dataflow::dataflow2;
use parallex::prelude::*;

fn main() {
    // An HPX-style runtime: lightweight tasks over a worker pool.
    let rt = Runtime::builder().worker_threads(4).build();
    println!("runtime up with {} workers", rt.workers());

    // --- futures: eager async tasks with continuations -----------------
    let answer = rt
        .async_task(|| 6 * 7)
        .then(|x| {
            println!("task produced {x}");
            x
        })
        .get();
    assert_eq!(answer, 42);

    // --- dataflow: run when all inputs are ready ------------------------
    let a = rt.async_task(|| 2.0_f64);
    let b = rt.async_task(|| 3.0_f64);
    let hyp = dataflow2(a, b, |a, b| (a * a + b * b).sqrt()).get();
    println!("dataflow: hypotenuse = {hyp:.4}");

    // --- when_all over a task fan-out -----------------------------------
    let squares: Vec<u64> = when_all((0..10).map(|i| rt.async_task(move || i * i)).collect()).get();
    println!("fan-out squares: {squares:?}");

    // --- LCOs: channel between producer and consumer tasks ---------------
    let ch: Channel<String> = Channel::for_runtime(&rt);
    let tx = ch.clone();
    rt.spawn(move || {
        for i in 0..3 {
            tx.send(format!("parcel {i}")).unwrap();
        }
    });
    for _ in 0..3 {
        println!("received: {}", ch.recv().get());
    }

    // --- parallel algorithms: the Listing 1/2 workhorse ------------------
    let mut field = vec![0.0_f64; 1 << 16];
    par(&rt).for_each_mut(&mut field, |i, x| *x = (i as f64 * 0.001).sin());
    let energy = par(&rt).reduce(0..field.len(), 0.0, |i| field[i] * field[i], |a, b| a + b);
    println!("field energy = {energy:.2}");

    // Runtime introspection (HPX performance counters).
    let snap = rt.perf_snapshot();
    println!("tasks executed: {}", snap.tasks_executed);
    rt.shutdown();
    println!("done.");
}
