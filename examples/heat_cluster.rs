//! The paper's distributed 1D heat-equation benchmark (Listing 1, Fig. 3)
//! at laptop scale: a 4-locality in-process cluster solving the heat
//! equation with halo parcels over a *simulated interconnect*, then the
//! Fig. 3 scaling model for the real machines.
//!
//! ```text
//! cargo run --release -p parallex-bench --example heat_cluster
//! ```

use parallex::locality::Cluster;
use parallex_machine::cluster::ClusterSpec;
use parallex_machine::spec::ProcessorId;
use parallex_netsim::parcel_delay_fn;
use parallex_perfsim::heat1d::{self, Heat1dConfig};
use parallex_stencil::heat1d::{install, Heat1dParams, Heat1dSolver};
use parallex_stencil::verify::{heat1d_reference, max_abs_diff};

fn main() {
    // ---- real execution on 4 localities over a modeled fabric ---------
    let localities = 4;
    let cluster = Cluster::new(localities, 2);
    install(&cluster);
    // InfiniBand-class delays, time-compressed 100x so the demo is quick.
    let net = ClusterSpec::for_processor(ProcessorId::XeonE5_2660v3).network;
    cluster.set_network_delay(parcel_delay_fn(net, 0.01));

    let n = 4096;
    let steps = 200;
    let params = Heat1dParams::new(n, steps, 0.25);
    let solver = Heat1dSolver::new(&cluster, params);
    let init = move |i: usize| if (n / 3..n / 2).contains(&i) { 100.0 } else { 0.0 };

    let t = parallex::util::HighResolutionTimer::new();
    let result = solver.run(init);
    let secs = t.elapsed();

    let reference = heat1d_reference(n, steps, 0.25, 0.0, 0.0, init);
    let err = max_abs_diff(&result, &reference);
    println!(
        "distributed heat1d: {n} points x {steps} steps over {localities} localities \
         in {secs:.3}s  (max error vs serial reference: {err:.2e})"
    );
    assert!(err < 1e-12);
    let hot = result.iter().cloned().fold(f64::MIN, f64::max);
    println!("peak temperature after diffusion: {hot:.3} (started at 100)");
    cluster.shutdown();

    // ---- the Fig. 3 model for the paper's machines ---------------------
    println!("\nFig. 3 model — strong scaling, 1.2G points, 100 steps (seconds):");
    println!("{:<26} {:>8} {:>8} {:>8} {:>8}", "machine", "1", "2", "4", "8");
    for id in ProcessorId::ALL {
        let cfg = Heat1dConfig::paper_strong(id);
        let row: Vec<String> = [1, 2, 4, 8]
            .iter()
            .map(|&nodes| format!("{:>8.2}", heat1d::time_seconds(&cfg, nodes)))
            .collect();
        println!("{:<26} {}", id.name(), row.join(" "));
    }
    println!("\nWeak scaling, 480M points/node (seconds):");
    for id in ProcessorId::ALL {
        let cfg = Heat1dConfig::paper_weak(id);
        let row: Vec<String> = [1, 2, 4, 8]
            .iter()
            .map(|&nodes| format!("{:>8.2}", heat1d::time_seconds(&cfg, nodes)))
            .collect();
        println!("{:<26} {}", id.name(), row.join(" "));
    }
    println!("\nNote the Kunpeng 916 lines: the Hi1616 fabric cannot hide halo latency.");
}
