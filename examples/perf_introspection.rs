//! Performance introspection: the PAPI-like hardware-counter emulation
//! (Tables III–VI), the runtime's own counters, the grain-size study on
//! the discrete-event scheduler simulator, and the SMT/pinning model
//! behind the paper's one-thread-per-core choice (Section VI).
//!
//! ```text
//! cargo run --release -p parallex-bench --example perf_introspection
//! ```

use parallex::algorithms::par;
use parallex::prelude::*;
use parallex_machine::spec::ProcessorId;
use parallex_perfsim::counters::measure_reference;
use parallex_perfsim::des::{simulate_step, DesConfig};
use parallex_perfsim::exec::{glups_at, glups_at_smt, Stencil2dConfig};
use parallex_perfsim::kernel::Vectorization;

fn main() {
    // ---- emulated hardware counters (the Tables III–VI workflow) -------
    println!("Hardware counters, 8192x16384 x 100 iterations, one core:\n");
    for id in ProcessorId::ALL {
        println!("{}:", id.name());
        for (bytes, vec) in [
            (4, Vectorization::Auto),
            (4, Vectorization::Explicit),
            (8, Vectorization::Auto),
            (8, Vectorization::Explicit),
        ] {
            let m = measure_reference(id, bytes, vec).expect("4/8 elem bytes are calibrated");
            print!(
                "  {:<14} instr {:>9.3e}  misses {:>9.3e}",
                vec.label(bytes).expect("4/8 elem bytes are calibrated"),
                m.instructions,
                m.cache_misses
            );
            if m.stalls_supported() {
                print!("  FE {:>9.3e}  BE {:>9.3e}", m.fe_stalls, m.be_stalls);
            } else {
                print!("  (stall counters unsupported, as in the paper)");
            }
            println!();
        }
    }

    // ---- real runtime counters -----------------------------------------
    let rt = Runtime::builder().worker_threads(4).build();
    let mut field = vec![0.0f64; 1 << 18];
    par(&rt).for_each_mut(&mut field, |i, x| *x = (i as f64).sqrt());
    let snap = rt.perf_snapshot();
    println!("\nRuntime counters after one parallel sweep:");
    for (path, value) in snap.as_paths() {
        println!("  {path:<32} {value}");
    }
    rt.shutdown();

    // ---- grain size on the DES scheduler --------------------------------
    println!("\nGrain-size study (DES, 8 cores, 10M LUPs, 0.5 ns/LUP):");
    println!("{:>10} {:>14} {:>12}", "chunks", "makespan ms", "utilization");
    let cfg = DesConfig { cores: 8, task_overhead_ns: 400.0, ..Default::default() };
    for chunks in [8usize, 32, 256, 4096, 65_536] {
        let r = simulate_step(&cfg, 1e7, chunks, 0.5);
        println!(
            "{:>10} {:>14.3} {:>12.2}",
            chunks,
            r.makespan_ns / 1e6,
            r.utilization()
        );
    }
    println!("(the paper: \"HPX is known to have contention overheads when the");
    println!(" grain size is too small\" — visible in the 65536-chunk row)");

    // ---- SMT vs pinning --------------------------------------------------
    println!("\nWhy the paper pins one thread per core (modeled GLUP/s):");
    for id in [ProcessorId::XeonE5_2660v3, ProcessorId::ThunderX2] {
        let spec = id.spec();
        let cfg = Stencil2dConfig::paper(id, 4, Vectorization::Explicit);
        let cores = spec.total_cores();
        print!("  {:<24} pinned {:>7.2}", id.name(), glups_at(&cfg, cores).expect("4/8 elem bytes are calibrated"));
        for t in 2..=spec.threads_per_core {
            print!("  {}x-SMT {:>7.2}", t, glups_at_smt(&cfg, cores, t).expect("4/8 elem bytes are calibrated"));
        }
        println!();
    }
}
