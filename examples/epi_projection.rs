//! Projecting the benchmark onto a hypothetical future Arm chip.
//!
//! The paper's introduction names the European Processor Initiative (EPI)
//! as one of the Arm-HPC efforts motivating the study. EPI silicon was not
//! available to the authors (or to anyone, in 2020) — but the calibrated
//! models make the question answerable in the same way the paper answers
//! it for real chips: describe the machine, borrow kernel coefficients
//! from its nearest ISA relative, and run the 2D-stencil model.
//!
//! ```text
//! cargo run --release -p parallex-bench --example epi_projection
//! ```

use parallex_machine::cache::CacheBlocking;
use parallex_machine::spec::{Processor, ProcessorId, VectorPipeline};
use parallex_perfsim::exec::{glups_at, glups_custom, CustomMachine, Stencil2dConfig};
use parallex_perfsim::kernel::Vectorization;

fn epi_like(width_bits: usize, domain_bw: f64) -> CustomMachine {
    CustomMachine {
        proc: Processor {
            id: ProcessorId::A64FX, // tag only; the model reads the fields
            clock_ghz: 2.0,
            cores_per_socket: 64,
            sockets: 1,
            threads_per_core: 1,
            vector: VectorPipeline { width_bits, pipes: 2, isa_name: "SVE" },
            numa_domains: 4,
            domain_bw_gbs: domain_bw,
            core_bw_gbs: 14.0,
            cache_line_bytes: 64,
            llc_per_domain_bytes: 32 * 1024 * 1024,
            partial_domain_penalty: 0.9,
        },
        coeffs_from: ProcessorId::A64FX,
        blocking: CacheBlocking::None,
    }
}

fn main() {
    println!("2D Jacobi projection for hypothetical EPI-class chips");
    println!("(64 SVE cores @ 2 GHz, kernel coefficients borrowed from A64FX)\n");

    println!(
        "{:<34} {:>12} {:>12} {:>12}",
        "configuration", "f32 GLUP/s", "f64 GLUP/s", "vs A64FX"
    );
    let a64 = glups_at(&Stencil2dConfig::paper(ProcessorId::A64FX, 4, Vectorization::Explicit), 48).expect("4/8 elem bytes are calibrated");
    for (label, width, bw) in [
        ("SVE-256, DDR5 300 GB/s", 256usize, 75.0),
        ("SVE-256, DDR5 400 GB/s", 256, 100.0),
        ("SVE-512, HBM 600 GB/s", 512, 150.0),
    ] {
        let m = epi_like(width, bw);
        let f32g = glups_custom(&m, 4, Vectorization::Explicit, 64).expect("4/8 elem bytes are calibrated");
        let f64g = glups_custom(&m, 8, Vectorization::Explicit, 64).expect("4/8 elem bytes are calibrated");
        println!("{label:<34} {f32g:>12.2} {f64g:>12.2} {:>11.0}%", f32g / a64 * 100.0);
    }

    println!("\nCore-count sweep, SVE-256 / 300 GB/s variant (explicit f32):");
    let m = epi_like(256, 75.0);
    for cores in [1usize, 8, 16, 32, 48, 64] {
        let g = glups_custom(&m, 4, Vectorization::Explicit, cores).expect("4/8 elem bytes are calibrated");
        let bar = "#".repeat((g * 2.0) as usize);
        println!("  {cores:>3} cores {g:>8.2} GLUP/s {bar}");
    }

    println!("\nThe projection inherits the paper's lesson: with a memory-bound");
    println!("stencil, bandwidth — not SVE width — decides the outcome.");
}
