//! Irregular workloads on the AMT runtime — the workload class the
//! paper's introduction motivates ParalleX with ("future algorithms are
//! expected to feature an increased dynamic behavior and low uniformity").
//!
//! ```text
//! cargo run --release -p parallex-bench --example irregular_workloads
//! ```

use parallex::prelude::*;
use parallex::sched::SchedulerPolicy;
use parallex::trace::TaskTrace;
use parallex::util::HighResolutionTimer;
use parallex_workloads::quadrature::integrate_adaptive;
use parallex_workloads::uts::{uts_count, uts_count_sequential, UtsParams};
use parallex_workloads::{fib::fib_reference, parallel_fib};

fn main() {
    // ---- unbalanced tree search: stealing vs static placement ----------
    let mut params = UtsParams::small(42);
    params.sequential_below = 6;
    let want = uts_count_sequential(params);
    println!("UTS tree: {want} nodes (deterministic, shape unknown until traversal)\n");
    for (name, policy) in [
        ("work-stealing", SchedulerPolicy::LocalPriority),
        ("static       ", SchedulerPolicy::Static),
    ] {
        let rt = Runtime::builder().worker_threads(4).scheduler(policy).build();
        let t = HighResolutionTimer::new();
        let got = uts_count(&rt, params);
        let secs = t.elapsed();
        assert_eq!(got, want);
        let steals = rt.perf_snapshot().tasks_stolen;
        println!("  {name}: {secs:>8.4}s  ({steals} steals)");
        rt.shutdown();
    }

    // ---- fork-join fib with the grain-size dial -------------------------
    println!("\nfib(30) task recursion (grain-size dial):");
    let rt = Runtime::builder().worker_threads(4).build();
    for threshold in [12u64, 18, 24] {
        let t = HighResolutionTimer::new();
        let got = parallel_fib(&rt, 30, threshold);
        assert_eq!(got, fib_reference(30));
        println!("  threshold {threshold:>2}: {:.4}s", t.elapsed());
    }

    // ---- adaptive quadrature with a task-timeline trace ------------------
    println!("\nadaptive quadrature of a spike, with the task tracer on:");
    rt.task_trace().start();
    let v = integrate_adaptive(&rt, |x| 1.0 / (1e-4 + x * x), -1.0, 1.0, 1e-9);
    rt.wait_idle();
    let recs = rt.task_trace().stop();
    let report = TaskTrace::report(&recs, rt.workers());
    println!("  integral = {v:.4}");
    println!(
        "  {} tasks, mean grain {:.1} us, pool utilization {:.0}%",
        report.tasks,
        report.mean_task_us,
        report.utilization * 100.0
    );
    rt.shutdown();
    println!("\nThe subdivision tree followed the integrand's spike — data-directed");
    println!("computing, scheduled by work stealing without any static partition.");
}
