//! Roofline analysis of the four machines (Section III-C / Eq. 1): ridge
//! points, the stencil's arithmetic-intensity operating points, and the
//! expected-peak lines that Figs. 4–8 draw.
//!
//! ```text
//! cargo run --release -p parallex-bench --example roofline_report
//! ```

use parallex_machine::spec::ProcessorId;
use parallex_roofline::{
    expected_peak_glups, ridge_point, roofline_curve, stencil_ai_lup_per_byte,
};

fn main() {
    println!("Roofline model (Eq. 1: attainable = min(CP, AI x BW))\n");
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "machine", "CP GFLOP/s", "BW GB/s", "ridge F/B"
    );
    for id in ProcessorId::ALL {
        let p = id.spec();
        println!(
            "{:<26} {:>12.0} {:>12.0} {:>12.2}",
            id.name(),
            p.peak_dp_gflops(),
            p.node_bw_gbs(),
            ridge_point(&p)
        );
    }

    println!("\nStencil operating points (LUP/byte):");
    println!("  f32, 3 transfers: {:.4}  (the paper's 1/12)", stencil_ai_lup_per_byte(4, 3.0));
    println!("  f64, 3 transfers: {:.4}  (1/24)", stencil_ai_lup_per_byte(8, 3.0));
    println!("  f32, 2 transfers: {:.4}  (1/8, cache-blocked)", stencil_ai_lup_per_byte(4, 2.0));
    println!("  f64, 2 transfers: {:.4}  (1/16)", stencil_ai_lup_per_byte(8, 2.0));

    println!("\nExpected peaks at full node (GLUP/s):");
    println!(
        "{:<26} {:>14} {:>14} {:>14} {:>14}",
        "machine", "f32/3xfer", "f32/2xfer", "f64/3xfer", "f64/2xfer"
    );
    for id in ProcessorId::ALL {
        let p = id.spec();
        let c = p.total_cores();
        println!(
            "{:<26} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
            id.name(),
            expected_peak_glups(&p, 4, c, 3.0),
            expected_peak_glups(&p, 4, c, 2.0),
            expected_peak_glups(&p, 8, c, 3.0),
            expected_peak_glups(&p, 8, c, 2.0),
        );
    }

    println!("\nA64FX roofline curve (DP, log-spaced AI):");
    for pt in roofline_curve(&ProcessorId::A64FX.spec(), 0.02, 20.0, 12) {
        let bar = "#".repeat((pt.gops / 60.0) as usize);
        println!("  AI {:>7.3} -> {:>8.1} GFLOP/s {bar}", pt.ai, pt.gops);
    }
    println!("\nEverything left of the ridge is memory-bound — which is where");
    println!("the 5-point stencil lives on all four machines (Section V-B).");
}
