//! AGAS in action: global ids, remote actions, and live object migration
//! between localities (the ParalleX feature the paper's Section III-B
//! highlights — "AGAS supports load balancing through object migration").
//!
//! ```text
//! cargo run --release -p parallex-bench --example agas_migration
//! ```

use parallex::locality::Cluster;
use parallex::parcel::serialize;

const KINETIC: u32 = 10;

fn main() {
    let cluster = Cluster::new(3, 2);
    cluster.register_migratable::<component::Cell>();

    // An action that runs *where the object lives* and reports the
    // executing locality.
    cluster.register_action(KINETIC, "kinetic_energy", |loc, gid, _payload| {
        let cell = loc.components().get::<component::Cell>(gid)?;
        let e: f64 = cell.0.iter().map(|p| p * p).sum();
        serialize::to_bytes(&(loc.id(), e))
    });

    // Create the ensemble on locality 0.
    let gid = cluster.new_component(
        0,
        component::Cell((0..1000).map(|i| i as f64 * 1e-3).collect()),
    );
    println!("object {gid:?} created on locality {}", cluster.agas().resolve(gid).unwrap());

    // Invoke from locality 2: the action executes on locality 0.
    let (ran_on, e): (u32, f64) = cluster
        .locality(2)
        .call(gid, KINETIC, &())
        .unwrap()
        .get();
    println!("kinetic energy {e:.3} computed on locality {ran_on}");
    assert_eq!(ran_on, 0);

    // Migrate the object — same GID, new home.
    cluster.migrate(gid, 1).unwrap();
    println!("migrated; AGAS now resolves to locality {}", cluster.agas().resolve(gid).unwrap());

    let (ran_on, e2): (u32, f64) = cluster
        .locality(2)
        .call(gid, KINETIC, &())
        .unwrap()
        .get();
    println!("kinetic energy {e2:.3} computed on locality {ran_on}");
    assert_eq!(ran_on, 1, "the action followed the object");
    assert!((e - e2).abs() < 1e-12, "state survived migration");

    println!("live objects in AGAS: {}", cluster.agas().live_objects());
    cluster.shutdown();
    println!("done.");
}

/// The migratable component type (a particle ensemble's positions).
mod component {
    use serde::{Deserialize, Serialize};

    /// Positions vector as a migratable component.
    #[derive(Serialize, Deserialize)]
    pub struct Cell(pub Vec<f64>);
}
