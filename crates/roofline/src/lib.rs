//! # parallex-roofline
//!
//! The Roofline model (Williams, Waterman, Patterson) exactly as the paper
//! uses it (Section III-C, Eq. 1):
//!
//! ```text
//! Attainable Performance = min(CP, AI × BW)
//! ```
//!
//! For the 2D Jacobi stencil the paper measures performance in **LUP/s**
//! (lattice-site updates per second), so the "compute peak" is expressed in
//! LUP/s as well (4 flops per LUP for the 5-point average — 3 adds and one
//! multiply, Eq. 4) and the arithmetic intensity in LUP/byte (1/12 for
//! `f32`, 1/24 for `f64` under the three-transfer assumption of Section
//! V-B; 1/8 and 1/16 when a large cache line grants the free cache-blocking
//! behaviour of Section VII-B).
//!
//! [`expected_peak_glups`] reproduces the "Expected Peak" lines of
//! Figs. 4–8; [`roofline_curve`] generates classic roofline plots.

use parallex_machine::numa::{DomainPopulation, MemorySystem};
use parallex_machine::spec::Processor;

/// Flops per lattice-site update of the 5-point Jacobi stencil (3 adds +
/// 1 multiply, Eq. 4 of the paper).
pub const JACOBI_FLOPS_PER_LUP: f64 = 4.0;

/// Flops per lattice-site update of the 3-point heat stencil (Eq. 3:
/// 3 adds/subs + 2 multiplies).
pub const HEAT1D_FLOPS_PER_LUP: f64 = 5.0;

/// Eq. 1: attainable performance given compute peak `cp` (op/s) and the
/// memory-side bound `ai_times_bw` (op/s). Units cancel as long as the
/// "op" is consistent (flop or LUP).
pub fn attainable(cp: f64, ai_times_bw: f64) -> f64 {
    cp.min(ai_times_bw)
}

/// Arithmetic intensity of the stencil in LUP/byte for an element of
/// `elem_bytes` moving `transfers` elements to/from memory per update.
pub fn stencil_ai_lup_per_byte(elem_bytes: usize, transfers: f64) -> f64 {
    1.0 / (transfers * elem_bytes as f64)
}

/// Compute-roof in GLUP/s for the Jacobi kernel at `cores` active cores
/// (vector FMA peak divided by flops/LUP; `elem_bytes` selects SP/DP
/// lanes).
pub fn jacobi_compute_roof_glups(proc: &Processor, elem_bytes: usize, cores: usize) -> f64 {
    let flops_per_cycle = if elem_bytes == 4 {
        2 * proc.vector.dp_flops_per_cycle()
    } else {
        proc.vector.dp_flops_per_cycle()
    };
    cores as f64 * proc.clock_ghz * flops_per_cycle as f64 / JACOBI_FLOPS_PER_LUP
}

/// The paper's "Expected Peak" lines: GLUP/s attainable at `cores` cores
/// with `transfers` memory transfers per update. Uses the sequential-fill
/// STREAM bandwidth at that core count (the paper computes expected peak
/// from its measured STREAM curve, Fig. 2).
pub fn expected_peak_glups(
    proc: &Processor,
    elem_bytes: usize,
    cores: usize,
    transfers: f64,
) -> f64 {
    let ms = MemorySystem::new(proc);
    let bw_gbs = ms.stream_aggregate_gbs(&DomainPopulation::fill_sequential(proc, cores));
    let ai = stencil_ai_lup_per_byte(elem_bytes, transfers);
    attainable(jacobi_compute_roof_glups(proc, elem_bytes, cores), ai * bw_gbs)
}

/// One point of a roofline plot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RooflinePoint {
    /// Arithmetic intensity, op/byte.
    pub ai: f64,
    /// Attainable performance, Gop/s.
    pub gops: f64,
}

/// Sample the full-node roofline of a processor over a log-spaced AI range
/// (flop-based: cp = peak DP GFLOP/s, bw = node STREAM GB/s).
pub fn roofline_curve(
    proc: &Processor,
    ai_min: f64,
    ai_max: f64,
    points: usize,
) -> Vec<RooflinePoint> {
    assert!(points >= 2 && ai_min > 0.0 && ai_max > ai_min);
    let cp = proc.peak_dp_gflops();
    let bw = proc.node_bw_gbs();
    let ratio = (ai_max / ai_min).powf(1.0 / (points - 1) as f64);
    (0..points)
        .map(|i| {
            let ai = ai_min * ratio.powi(i as i32);
            RooflinePoint { ai, gops: attainable(cp, ai * bw) }
        })
        .collect()
}

/// The AI at which a processor transitions from memory- to compute-bound
/// (the roofline "ridge point"), flop/byte.
pub fn ridge_point(proc: &Processor) -> f64 {
    proc.peak_dp_gflops() / proc.node_bw_gbs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallex_machine::spec::ProcessorId;

    #[test]
    fn eq1_picks_the_binding_constraint() {
        assert_eq!(attainable(100.0, 50.0), 50.0, "memory bound");
        assert_eq!(attainable(100.0, 5000.0), 100.0, "compute bound");
    }

    #[test]
    fn paper_ai_values() {
        // Section V-B: 1/12 LUP/B for floats, 1/24 LUP/B for doubles.
        assert!((stencil_ai_lup_per_byte(4, 3.0) - 1.0 / 12.0).abs() < 1e-12);
        assert!((stencil_ai_lup_per_byte(8, 3.0) - 1.0 / 24.0).abs() < 1e-12);
        // Section VII-B cache-blocked: 1/8 and 1/16.
        assert!((stencil_ai_lup_per_byte(4, 2.0) - 1.0 / 8.0).abs() < 1e-12);
        assert!((stencil_ai_lup_per_byte(8, 2.0) - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn stencil_is_memory_bound_on_all_four_processors() {
        // "The low arithmetic intensity makes the application memory bound
        // for a broad class of processors" (Section V-B).
        for id in ProcessorId::ALL {
            let p = id.spec();
            let cores = p.total_cores();
            let mem_peak = expected_peak_glups(&p, 8, cores, 3.0);
            let compute_roof = jacobi_compute_roof_glups(&p, 8, cores);
            assert!(
                mem_peak < compute_roof,
                "{id:?}: {mem_peak} should be < {compute_roof}"
            );
        }
    }

    #[test]
    fn two_transfer_peak_is_1_5x_three_transfer_peak() {
        // The paper's "49% performance boost" from free cache blocking.
        let p = ProcessorId::A64FX.spec();
        let lo = expected_peak_glups(&p, 8, 48, 3.0);
        let hi = expected_peak_glups(&p, 8, 48, 2.0);
        assert!((hi / lo - 1.5).abs() < 1e-9);
    }

    #[test]
    fn expected_peak_grows_with_cores_until_saturation() {
        let p = ProcessorId::XeonE5_2660v3.spec();
        let p4 = expected_peak_glups(&p, 4, 4, 3.0);
        let p10 = expected_peak_glups(&p, 4, 10, 3.0);
        let p20 = expected_peak_glups(&p, 4, 20, 3.0);
        assert!(p10 > p4);
        assert!(p20 > p10, "second socket adds bandwidth");
    }

    #[test]
    fn float_peak_is_double_double_peak_when_memory_bound() {
        let p = ProcessorId::Kunpeng916.spec();
        let f32_peak = expected_peak_glups(&p, 4, 64, 3.0);
        let f64_peak = expected_peak_glups(&p, 8, 64, 3.0);
        assert!((f32_peak / f64_peak - 2.0).abs() < 1e-9);
    }

    #[test]
    fn roofline_curve_is_monotone_then_flat() {
        let p = ProcessorId::A64FX.spec();
        let pts = roofline_curve(&p, 0.01, 100.0, 40);
        assert_eq!(pts.len(), 40);
        for w in pts.windows(2) {
            assert!(w[1].gops >= w[0].gops - 1e-9);
        }
        assert!((pts.last().unwrap().gops - p.peak_dp_gflops()).abs() < 1e-6);
    }

    #[test]
    fn ridge_point_separates_regimes() {
        let p = ProcessorId::ThunderX2.spec();
        let r = ridge_point(&p);
        assert!(attainable(p.peak_dp_gflops(), r * 0.5 * p.node_bw_gbs()) < p.peak_dp_gflops());
        assert!(
            (attainable(p.peak_dp_gflops(), r * 2.0 * p.node_bw_gbs()) - p.peak_dp_gflops()).abs()
                < 1e-9
        );
    }

    #[test]
    fn a64fx_has_by_far_the_highest_memory_roof() {
        let peaks: Vec<f64> = ProcessorId::ALL
            .iter()
            .map(|id| {
                let p = id.spec();
                expected_peak_glups(&p, 4, p.total_cores(), 3.0)
            })
            .collect();
        let a64fx = peaks[3];
        for (i, other) in peaks.iter().enumerate().take(3) {
            assert!(a64fx > 2.5 * other, "A64FX vs {i}: {a64fx} vs {other}");
        }
    }
}
