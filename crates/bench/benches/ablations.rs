//! Ablation benchmarks for the design choices DESIGN.md calls out: each
//! bench evaluates a model with one mechanism toggled, and asserts (in
//! passing) that the mechanism is what produces the paper's shape.
//!
//! * NUMA partial-domain penalty ⇒ the Kunpeng 40/56-core dips (Fig. 5)
//! * cache-line effective traffic ⇒ the A64FX/TX2 between-peak placement
//! * latency hiding ⇒ flat vs. growing weak scaling (Fig. 3)
//! * grain size ⇒ AMT overhead regime (DES)
//! * scheduler policy ⇒ stealing vs. static placement on imbalanced loads

use criterion::{criterion_group, criterion_main, Criterion};
use parallex::prelude::*;
use parallex::sched::SchedulerPolicy;
use parallex_machine::numa::{DomainPopulation, MemorySystem};
use parallex_machine::spec::ProcessorId;
use parallex_netsim::halo::exposed_step_overhead_us;
use parallex_perfsim::des::{simulate_step, DesConfig};

fn ablate_numa_penalty(c: &mut Criterion) {
    // With the penalty: dip at 40 cores. Without: monotone.
    c.bench_function("ablation/numa_partial_domain_penalty", |b| {
        b.iter(|| {
            let with = ProcessorId::Kunpeng916.spec();
            let mut without = with.clone();
            without.partial_domain_penalty = 1.0;
            let eff = |p: &parallex_machine::spec::Processor, n| {
                MemorySystem::new(p).effective_bsp_bw(&DomainPopulation::fill_sequential(p, n))
            };
            assert!(eff(&with, 40) < eff(&with, 32), "penalty creates the dip");
            assert!(eff(&without, 40) >= eff(&without, 32), "no penalty, no dip");
        });
    });
}

fn ablate_latency_hiding(c: &mut Criterion) {
    c.bench_function("ablation/latency_hiding", |b| {
        b.iter(|| {
            let mut net =
                parallex_machine::cluster::ClusterSpec::for_processor(ProcessorId::XeonE5_2660v3)
                    .network;
            let compute_us = 30_000.0;
            let hidden = exposed_step_overhead_us(&net, 64, 8, compute_us);
            net.latency_hiding = false;
            let exposed = exposed_step_overhead_us(&net, 64, 8, compute_us);
            assert_eq!(hidden, 0.0);
            assert!(exposed > 0.0, "disabling overlap exposes the wire time");
        });
    });
}

fn ablate_grain_size(c: &mut Criterion) {
    let cfg = DesConfig { cores: 8, task_overhead_ns: 400.0, ..Default::default() };
    let mut g = c.benchmark_group("ablation/grain_size_des");
    for &chunks in &[32usize, 512, 8192] {
        g.bench_with_input(format!("chunks_{chunks}"), &chunks, |b, &chunks| {
            b.iter(|| simulate_step(&cfg, 1e7, chunks, 0.5));
        });
    }
    g.finish();
}

fn ablate_scheduler_policy(c: &mut Criterion) {
    // Imbalanced hinted load: work stealing recovers, static does not.
    let mut g = c.benchmark_group("ablation/scheduler_policy");
    for (name, policy) in [
        ("local_priority_steal", SchedulerPolicy::LocalPriority),
        ("static_no_steal", SchedulerPolicy::Static),
    ] {
        g.bench_function(name, |b| {
            let rt = Runtime::builder().worker_threads(4).scheduler(policy).build();
            b.iter(|| {
                let l = Latch::for_runtime(&rt, 64);
                for i in 0..64 {
                    let l = l.clone();
                    // Everything hinted at worker 0: stealing rebalances.
                    rt.spawn_task(
                        parallex::task::Task::new(move || {
                            std::hint::black_box((0..2_000).map(|x| x * i).sum::<usize>());
                            l.count_down(1);
                        })
                        .with_hint(parallex::task::ScheduleHint::Worker(0)),
                    );
                }
                l.wait();
            });
            rt.shutdown();
        });
    }
    g.finish();
}

fn ablate_numa_placement(c: &mut Criterion) {
    // Sequential vs. balanced core fill: balanced reaches bandwidth sooner.
    c.bench_function("ablation/core_placement", |b| {
        b.iter(|| {
            let p = ProcessorId::Kunpeng916.spec();
            let ms = MemorySystem::new(&p);
            let seq = ms.stream_aggregate_gbs(&DomainPopulation::fill_sequential(&p, 8));
            let bal = ms.stream_aggregate_gbs(&DomainPopulation::fill_balanced(&p, 8));
            assert!(bal > seq, "spreading 8 cores over 4 domains beats packing one");
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablate_numa_penalty, ablate_latency_hiding, ablate_grain_size,
              ablate_scheduler_policy, ablate_numa_placement
}
criterion_main!(benches);
