//! Tracing-overhead benchmark for the introspection layer.
//!
//! Measures three things, each the cost the observability PR is allowed
//! to charge the runtime:
//!
//!   * spawn-drain ns/task with the tracer disabled (the default) — must
//!     stay within noise of the pre-introspection runtime, because the
//!     only hot-path addition is one relaxed atomic load per event site.
//!   * spawn-drain ns/task with the tracer enabled — the documented
//!     tracing-on budget (one `Instant::now` pair + a mutex push per
//!     task).
//!   * raw per-record costs: the disabled check, an enabled instant, an
//!     enabled span.
//!   * a latency-histogram record (one relaxed `fetch_add` on a
//!     log-bucketed counter) — the always-on cost each task/steal/wait
//!     pays for the quantile counters; budgeted at <= 50 ns.
//!
//! Results are printed and written to `BENCH_trace.json` at the workspace
//! root (consumed by CI). Set `TRACE_BENCH_SMOKE=1` for a seconds-long
//! run that only proves the harness works.

use parallex::introspect::{EventKind, Tracer};
use parallex::prelude::*;
use std::time::{Duration, Instant};

fn time_median<F: FnMut() -> Duration>(reps: usize, mut f: F) -> Duration {
    let _ = f(); // warmup
    let mut samples: Vec<Duration> = (0..reps).map(|_| f()).collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let smoke = std::env::var("TRACE_BENCH_SMOKE").is_ok();
    let tasks: usize = if smoke { 2_000 } else { 200_000 };
    let reps = if smoke { 3 } else { 7 };
    let raw_iters: usize = if smoke { 10_000 } else { 2_000_000 };
    let workers = 4;

    // ---- spawn-drain, tracer disabled (the default state) -------------
    let rt = Runtime::builder().worker_threads(workers).build();
    let off = time_median(reps, || {
        let t = Instant::now();
        for _ in 0..tasks {
            rt.spawn(|| {});
        }
        rt.wait_idle();
        t.elapsed()
    });
    rt.shutdown();

    // ---- spawn-drain, tracer enabled ----------------------------------
    // Capacity sized so no event is dropped: a drop is cheaper than a
    // record, and we want the worst-case per-task cost.
    let rt = Runtime::builder()
        .worker_threads(workers)
        .trace_capacity((2 * tasks).next_power_of_two())
        .build();
    let on = time_median(reps, || {
        rt.tracer().start(); // clears buffers from the previous rep
        let t = Instant::now();
        for _ in 0..tasks {
            rt.spawn(|| {});
        }
        rt.wait_idle();
        t.elapsed()
    });
    let trace = rt.tracer().stop();
    assert_eq!(trace.dropped, 0, "capacity must cover the run");
    assert!(trace.of_kind(EventKind::TaskRun).count() >= tasks);
    rt.shutdown();

    let off_ns = off.as_secs_f64() * 1e9 / tasks as f64;
    let on_ns = on.as_secs_f64() * 1e9 / tasks as f64;

    // ---- raw per-record costs ------------------------------------------
    // Disabled: the only cost any event site pays by default.
    let idle = Tracer::new(1);
    let d = time_median(reps, || {
        let t = Instant::now();
        for _ in 0..raw_iters {
            idle.instant(0, EventKind::Steal, 0);
        }
        t.elapsed()
    });
    let disabled_ns = d.as_secs_f64() * 1e9 / raw_iters as f64;
    assert!(idle.stop().events.is_empty());

    let live = Tracer::with_capacity(1, raw_iters + 1);
    let d = time_median(reps, || {
        live.start();
        let t = Instant::now();
        for _ in 0..raw_iters {
            live.instant(0, EventKind::Steal, 0);
        }
        t.elapsed()
    });
    let instant_ns = d.as_secs_f64() * 1e9 / raw_iters as f64;

    let (s, e) = (Instant::now(), Instant::now());
    let d = time_median(reps, || {
        live.start();
        let t = Instant::now();
        for _ in 0..raw_iters {
            live.span(0, EventKind::TaskRun, s, e, 0);
        }
        t.elapsed()
    });
    let span_ns = d.as_secs_f64() * 1e9 / raw_iters as f64;

    // ---- latency-histogram record ---------------------------------------
    // Varying values touch different buckets so the bucket-index math is
    // measured, not one cache-hot counter.
    let hist = parallex::introspect::LatencyHistogram::new();
    let d = time_median(reps, || {
        let t = Instant::now();
        for i in 0..raw_iters {
            hist.record((i as u64).wrapping_mul(0x9e37_79b9) & 0xfff_ffff);
        }
        t.elapsed()
    });
    let hist_record_ns = d.as_secs_f64() * 1e9 / raw_iters as f64;
    assert!(hist.count() >= raw_iters as u64);

    // ---- report ---------------------------------------------------------
    println!("tracing overhead ({} tasks, {workers} workers{}):", tasks, if smoke { ", SMOKE" } else { "" });
    println!("  spawn-drain tracer off: {off_ns:>8.1} ns/task");
    println!("  spawn-drain tracer on:  {on_ns:>8.1} ns/task  (delta {:+.1} ns/task)", on_ns - off_ns);
    println!("  raw disabled check:     {disabled_ns:>8.2} ns");
    println!("  raw instant record:     {instant_ns:>8.2} ns");
    println!("  raw span record:        {span_ns:>8.2} ns");
    println!("  histogram record:       {hist_record_ns:>8.2} ns");

    let json = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \"smoke\": {smoke},\n  \
         \"spawn_drain\": {{\"tasks\": {tasks}, \"workers\": {workers}, \
         \"off_ns_per_task\": {off_ns:.2}, \"on_ns_per_task\": {on_ns:.2}, \
         \"delta_ns_per_task\": {:.2}}},\n  \
         \"raw\": {{\"disabled_check_ns\": {disabled_ns:.3}, \
         \"instant_ns\": {instant_ns:.3}, \"span_ns\": {span_ns:.3}, \
         \"hist_record_ns\": {hist_record_ns:.3}}}\n}}\n",
        on_ns - off_ns,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    std::fs::write(out, &json).expect("write BENCH_trace.json");
    println!("wrote {out}");
}
