//! Criterion wrappers around the figure/table generators: one bench per
//! table and figure of the paper, so `cargo bench` exercises the full
//! reproduction pipeline and reports how long each regeneration takes.

use criterion::{criterion_group, criterion_main, Criterion};
use parallex_bench::{figures, tables};

fn bench_figures(c: &mut Criterion) {
    c.bench_function("repro/table1_specs", |b| b.iter(tables::table1_specs));
    c.bench_function("repro/fig2_stream", |b| b.iter(figures::fig2_stream));
    c.bench_function("repro/fig3_heat1d_scaling", |b| b.iter(figures::fig3_heat1d));
    c.bench_function("repro/fig4_xeon", |b| b.iter(figures::fig4_xeon));
    c.bench_function("repro/fig5_kunpeng", |b| b.iter(figures::fig5_kunpeng));
    c.bench_function("repro/fig6_a64fx", |b| b.iter(figures::fig6_a64fx));
    c.bench_function("repro/fig7_a64fx_large", |b| b.iter(figures::fig7_a64fx_large));
    c.bench_function("repro/fig8_tx2", |b| b.iter(figures::fig8_tx2));
    c.bench_function("repro/table3_xeon", |b| b.iter(tables::table3_xeon));
    c.bench_function("repro/table4_kunpeng", |b| b.iter(tables::table4_kunpeng));
    c.bench_function("repro/table5_a64fx", |b| b.iter(tables::table5_a64fx));
    c.bench_function("repro/table6_tx2", |b| b.iter(tables::table6_tx2));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_figures
}
criterion_main!(benches);
