//! Criterion micro-benchmarks of the real `parallex` runtime: the raw AMT
//! overheads (task spawn, future chains, channels, parcels) whose
//! magnitude justifies the `task_overhead_ns` / `step_overhead_us`
//! parameters used by the performance models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parallex::lcos::future::when_all;
use parallex::locality::Cluster;
use parallex::parcel::serialize;
use parallex::prelude::*;

fn bench_task_spawn(c: &mut Criterion) {
    let rt = Runtime::builder().worker_threads(4).build();
    let mut g = c.benchmark_group("runtime/spawn");
    for &n in &[100usize, 1000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("spawn_wait", n), &n, |b, &n| {
            b.iter(|| {
                let l = Latch::for_runtime(&rt, n);
                for _ in 0..n {
                    let l = l.clone();
                    rt.spawn(move || l.count_down(1));
                }
                l.wait();
            });
        });
    }
    g.finish();
    rt.shutdown();
}

fn bench_future_chain(c: &mut Criterion) {
    let rt = Runtime::builder().worker_threads(2).build();
    c.bench_function("runtime/future_then_chain_depth16", |b| {
        b.iter(|| {
            let mut f = rt.async_task(|| 0u64);
            for _ in 0..16 {
                f = f.then(|x| x + 1);
            }
            assert_eq!(f.get(), 16);
        });
    });
    c.bench_function("runtime/when_all_64", |b| {
        b.iter(|| {
            let fs: Vec<_> = (0..64).map(|i| rt.async_task(move || i as u64)).collect();
            let sum: u64 = when_all(fs).get().into_iter().sum();
            assert_eq!(sum, 2016);
        });
    });
    rt.shutdown();
}

fn bench_channel(c: &mut Criterion) {
    let rt = Runtime::builder().worker_threads(2).build();
    c.bench_function("runtime/channel_send_recv_1000", |b| {
        let ch: Channel<u64> = Channel::for_runtime(&rt);
        b.iter(|| {
            for i in 0..1000 {
                ch.send(i).unwrap();
            }
            let mut sum = 0;
            for _ in 0..1000 {
                sum += ch.recv().get();
            }
            assert_eq!(sum, 499_500);
        });
    });
    rt.shutdown();
}

fn bench_parcel_roundtrip(c: &mut Criterion) {
    let cluster = Cluster::new(2, 2);
    cluster.register_action(1, "echo", |_, _, p| Ok(p.to_vec()));
    let gid = cluster.new_component(1, ());
    c.bench_function("runtime/parcel_echo_roundtrip", |b| {
        b.iter(|| {
            let f = cluster
                .locality(0)
                .async_action_raw(gid, 1, &42u64)
                .unwrap();
            let bytes = f.get();
            let v: u64 = serialize::from_bytes(&bytes).unwrap();
            assert_eq!(v, 42);
        });
    });
    cluster.shutdown();
}

fn bench_serialization(c: &mut Criterion) {
    let halo: Vec<f64> = (0..1024).map(|i| i as f64).collect();
    let mut g = c.benchmark_group("runtime/serialize");
    g.throughput(Throughput::Bytes((halo.len() * 8) as u64));
    g.bench_function("vec_f64_1024_roundtrip", |b| {
        b.iter(|| {
            let bytes = serialize::to_bytes(&halo).unwrap();
            let back: Vec<f64> = serialize::from_bytes(&bytes).unwrap();
            assert_eq!(back.len(), 1024);
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_task_spawn, bench_future_chain, bench_channel,
              bench_parcel_roundtrip, bench_serialization
}
criterion_main!(benches);
