//! Scheduler overhead A/B benchmark: the lock-free Chase-Lev scheduler
//! (current `parallex` runtime) against a faithful replica of the seed's
//! lock-based design (per-worker `Mutex<VecDeque>` deques, unconditional
//! notify on push, 1 ms-timeout polling park).
//!
//! The seed itself predates the vendored dependency shims and cannot be
//! built in this environment, so the baseline is reimplemented here from
//! the seed's `sched.rs` (same queue structure, same pop order, same
//! sleep protocol) for an honest same-binary, same-machine comparison.
//!
//! Workloads, each at 1/2/4/8 workers:
//!   * spawn-drain: one external thread pushes N trivial tasks, workers
//!     drain them (throughput).
//!   * ping-pong: a task chain hops between adjacent workers via
//!     `ScheduleHint::Worker` (per-hop handoff latency).
//!   * UTS-style tree: an unbalanced task tree where every node spawns
//!     its children locally, so all load balancing happens by stealing.
//!
//! Results are printed and written to `BENCH_sched.json` at the workspace
//! root (consumed by CI).

use crossbeam::queue::SegQueue;
use parallex::prelude::*;
use parallex::task::ScheduleHint;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// --------------------------------------------------------------------------
// Lock-based baseline: replica of the seed scheduler + a minimal pool.
// --------------------------------------------------------------------------

struct LockCtx {
    sched: Arc<LockSched>,
    worker: usize,
}

type Job = Box<dyn FnOnce(&LockCtx) + Send + 'static>;

struct LockSched {
    locals: Vec<Mutex<VecDeque<Job>>>,
    injector: SegQueue<Job>,
    lock: Mutex<()>,
    cond: Condvar,
    queued: AtomicUsize,
    outstanding: AtomicUsize,
    shutdown: AtomicBool,
}

impl LockSched {
    fn new(workers: usize) -> Arc<LockSched> {
        Arc::new(LockSched {
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: SegQueue::new(),
            lock: Mutex::new(()),
            cond: Condvar::new(),
            queued: AtomicUsize::new(0),
            outstanding: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        })
    }

    /// Push from outside the pool (seed: hint `None`, `from_worker: None`).
    fn spawn_external(&self, job: Job) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.queued.fetch_add(1, Ordering::Release);
        self.injector.push(job);
        self.cond.notify_one(); // seed: unconditional wake on every push
    }

    /// Push onto worker `w`'s deque (seed: `Worker(w)` hint or local spawn).
    fn spawn_to(&self, w: usize, job: Job) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        self.queued.fetch_add(1, Ordering::Release);
        self.locals[w].lock().push_back(job);
        self.cond.notify_one();
    }

    fn pop(&self, w: usize) -> Option<Job> {
        // The local guard must drop before stealing locks other workers'
        // queues, or two thieves deadlock holding each other's lock.
        let local = self.locals[w].lock().pop_back();
        let got = local
            .or_else(|| self.injector.pop())
            .or_else(|| self.steal(w));
        if got.is_some() {
            self.queued.fetch_sub(1, Ordering::AcqRel);
        }
        got
    }

    fn steal(&self, thief: usize) -> Option<Job> {
        let n = self.locals.len();
        for off in 1..n {
            let victim = (thief + off) % n;
            if let Some(job) = self.locals[victim].lock().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Seed sleep protocol: condvar with a 1 ms timeout so a lost wakeup
    /// can never hang a worker (and idle workers poll forever).
    fn wait_for_work(&self) {
        if self.queued.load(Ordering::Acquire) > 0 || self.shutdown.load(Ordering::Acquire) {
            return;
        }
        let mut guard = self.lock.lock();
        if self.queued.load(Ordering::Acquire) > 0 || self.shutdown.load(Ordering::Acquire) {
            return;
        }
        self.cond.wait_for(&mut guard, Duration::from_millis(1));
    }
}

struct LockPool {
    sched: Arc<LockSched>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl LockPool {
    fn new(workers: usize) -> LockPool {
        let sched = LockSched::new(workers);
        let threads = (0..workers)
            .map(|w| {
                let sched = sched.clone();
                std::thread::spawn(move || {
                    let ctx = LockCtx { sched: sched.clone(), worker: w };
                    loop {
                        if let Some(job) = sched.pop(w) {
                            job(&ctx);
                            sched.outstanding.fetch_sub(1, Ordering::SeqCst);
                            continue;
                        }
                        if sched.shutdown.load(Ordering::Acquire)
                            && sched.queued.load(Ordering::Acquire) == 0
                        {
                            break;
                        }
                        sched.wait_for_work();
                    }
                })
            })
            .collect();
        LockPool { sched, threads }
    }

    fn wait_idle(&self) {
        while self.sched.outstanding.load(Ordering::SeqCst) != 0 {
            std::thread::sleep(Duration::from_micros(20));
        }
    }

    fn shutdown(self) {
        self.sched.shutdown.store(true, Ordering::Release);
        let _guard = self.sched.lock.lock();
        self.sched.cond.notify_all();
        drop(_guard);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

// --------------------------------------------------------------------------
// Workloads.
// --------------------------------------------------------------------------

const SPAWN_DRAIN_TASKS: usize = 20_000;
const PING_PONG_HOPS: usize = 1_000;
const UTS_DEPTH: u32 = 11;
const REPS: usize = 3;

/// Node count of the deterministic unbalanced tree: a node at depth `d`
/// spawns `2 + d % 2` children.
fn uts_expected(depth: u32) -> usize {
    if depth == 0 {
        1
    } else {
        1 + (2 + depth as usize % 2) * uts_expected(depth - 1)
    }
}

fn lock_uts(ctx: &LockCtx, depth: u32, count: &Arc<AtomicUsize>) {
    count.fetch_add(1, Ordering::Relaxed);
    if depth == 0 {
        return;
    }
    for _ in 0..(2 + depth as usize % 2) {
        let count = count.clone();
        ctx.sched.spawn_to(
            ctx.worker,
            Box::new(move |c| lock_uts(c, depth - 1, &count)),
        );
    }
}

fn rt_uts(rt: &Runtime, depth: u32, count: &Arc<AtomicUsize>) {
    count.fetch_add(1, Ordering::Relaxed);
    if depth == 0 {
        return;
    }
    for _ in 0..(2 + depth as usize % 2) {
        let rt2 = rt.clone();
        let count = count.clone();
        rt.spawn(move || rt_uts(&rt2, depth - 1, &count));
    }
}

fn lock_pingpong(ctx: &LockCtx, remaining: usize, workers: usize) {
    if remaining == 0 {
        return;
    }
    let target = (ctx.worker + 1) % workers;
    ctx.sched.spawn_to(
        target,
        Box::new(move |c| lock_pingpong(c, remaining - 1, workers)),
    );
}

fn rt_pingpong(rt: &Runtime, remaining: usize) {
    if remaining == 0 {
        return;
    }
    let target = (rt.current_worker().unwrap_or(0) + 1) % rt.workers();
    let rt2 = rt.clone();
    rt.spawn_hinted(ScheduleHint::Worker(target), move || {
        rt_pingpong(&rt2, remaining - 1)
    });
}

fn time_median<F: FnMut() -> Duration>(reps: usize, mut f: F) -> Duration {
    let _ = f(); // warmup
    let mut samples: Vec<Duration> = (0..reps).map(|_| f()).collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// (utime + stime) of this process in clock ticks, from /proc/self/stat.
fn process_cpu_ticks() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // utime/stime are fields 14 and 15 (1-based); split after the
    // parenthesised comm field, which may itself contain spaces.
    let after = stat.rsplit(')').next()?;
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some(utime + stime)
}

// --------------------------------------------------------------------------
// Harness.
// --------------------------------------------------------------------------

struct Record {
    workload: &'static str,
    engine: &'static str,
    workers: usize,
    items: usize,
    secs: f64,
}

impl Record {
    fn per_sec(&self) -> f64 {
        self.items as f64 / self.secs
    }
}

fn main() {
    let worker_counts = [1usize, 2, 4, 8];
    let mut records: Vec<Record> = Vec::new();
    let uts_nodes = uts_expected(UTS_DEPTH);
    // Cumulative scheduler counters of the 4-worker runtime, captured
    // after its UTS run (the steal-heavy workload).
    let mut loaded_snap: Option<parallex::perf::Snapshot> = None;

    for &w in &worker_counts {
        // ---- lock-based baseline ----
        let pool = LockPool::new(w);
        let d = time_median(REPS, || {
            let t = Instant::now();
            for _ in 0..SPAWN_DRAIN_TASKS {
                pool.sched.spawn_external(Box::new(|_| {}));
            }
            pool.wait_idle();
            t.elapsed()
        });
        records.push(Record {
            workload: "spawn_drain",
            engine: "lock_based",
            workers: w,
            items: SPAWN_DRAIN_TASKS,
            secs: d.as_secs_f64(),
        });
        let d = time_median(REPS, || {
            let t = Instant::now();
            pool.sched.spawn_to(
                0,
                Box::new(move |c| lock_pingpong(c, PING_PONG_HOPS, w)),
            );
            pool.wait_idle();
            t.elapsed()
        });
        records.push(Record {
            workload: "ping_pong",
            engine: "lock_based",
            workers: w,
            items: PING_PONG_HOPS,
            secs: d.as_secs_f64(),
        });
        let d = time_median(REPS, || {
            let count = Arc::new(AtomicUsize::new(0));
            let c2 = count.clone();
            let t = Instant::now();
            pool.sched
                .spawn_external(Box::new(move |c| lock_uts(c, UTS_DEPTH, &c2)));
            pool.wait_idle();
            let elapsed = t.elapsed();
            assert_eq!(count.load(Ordering::Relaxed), uts_nodes);
            elapsed
        });
        records.push(Record {
            workload: "uts_tree",
            engine: "lock_based",
            workers: w,
            items: uts_nodes,
            secs: d.as_secs_f64(),
        });
        pool.shutdown();

        // ---- Chase-Lev runtime ----
        let rt = Runtime::builder().worker_threads(w).build();
        let d = time_median(REPS, || {
            let t = Instant::now();
            for _ in 0..SPAWN_DRAIN_TASKS {
                rt.spawn(|| {});
            }
            rt.wait_idle();
            t.elapsed()
        });
        records.push(Record {
            workload: "spawn_drain",
            engine: "chase_lev",
            workers: w,
            items: SPAWN_DRAIN_TASKS,
            secs: d.as_secs_f64(),
        });
        let d = time_median(REPS, || {
            let rt2 = rt.clone();
            let t = Instant::now();
            rt.spawn_hinted(ScheduleHint::Worker(0), move || {
                rt_pingpong(&rt2, PING_PONG_HOPS)
            });
            rt.wait_idle();
            t.elapsed()
        });
        records.push(Record {
            workload: "ping_pong",
            engine: "chase_lev",
            workers: w,
            items: PING_PONG_HOPS,
            secs: d.as_secs_f64(),
        });
        let d = time_median(REPS, || {
            let count = Arc::new(AtomicUsize::new(0));
            let c2 = count.clone();
            let rt2 = rt.clone();
            let t = Instant::now();
            rt.spawn(move || rt_uts(&rt2, UTS_DEPTH, &c2));
            rt.wait_idle();
            let elapsed = t.elapsed();
            assert_eq!(count.load(Ordering::Relaxed), uts_nodes);
            elapsed
        });
        records.push(Record {
            workload: "uts_tree",
            engine: "chase_lev",
            workers: w,
            items: uts_nodes,
            secs: d.as_secs_f64(),
        });
        if w == 4 {
            loaded_snap = Some(rt.perf_snapshot());
        }
        rt.shutdown();
    }
    let snap = loaded_snap.expect("4-worker config always runs");

    // ---- idle CPU: 4 workers, no work for 500 ms ----
    let idle_window = Duration::from_millis(500);
    let rt = Runtime::builder().worker_threads(4).build();
    rt.wait_idle();
    std::thread::sleep(Duration::from_millis(50)); // let workers park
    let before = process_cpu_ticks();
    std::thread::sleep(idle_window);
    let after = process_cpu_ticks();
    let idle_ticks_chase_lev = match (before, after) {
        (Some(b), Some(a)) => Some(a - b),
        _ => None,
    };
    rt.shutdown();

    let pool = LockPool::new(4);
    std::thread::sleep(Duration::from_millis(50));
    let before = process_cpu_ticks();
    std::thread::sleep(idle_window);
    let after = process_cpu_ticks();
    let idle_ticks_lock = match (before, after) {
        (Some(b), Some(a)) => Some(a - b),
        _ => None,
    };
    pool.shutdown();

    // ---- report ----
    println!(
        "{:<12} {:<11} {:>3}w {:>10} items {:>12} {:>14}",
        "workload", "engine", "", "", "median", "rate"
    );
    for r in &records {
        println!(
            "{:<12} {:<11} {:>3}w {:>10} items {:>10.3} ms {:>11.0} /s",
            r.workload,
            r.engine,
            r.workers,
            r.items,
            r.secs * 1e3,
            r.per_sec()
        );
    }
    for &w in &worker_counts {
        let find = |engine: &str| {
            records
                .iter()
                .find(|r| r.workload == "spawn_drain" && r.engine == engine && r.workers == w)
                .unwrap()
        };
        println!(
            "spawn_drain speedup at {w} workers: {:.2}x (chase_lev vs lock_based)",
            find("chase_lev").per_sec() / find("lock_based").per_sec()
        );
    }
    println!(
        "idle 4-worker CPU over {:?}: chase_lev {:?} ticks, lock_based {:?} ticks",
        idle_window, idle_ticks_chase_lev, idle_ticks_lock
    );
    println!(
        "chase_lev 4-worker counters (cumulative through UTS): stolen={} steal_attempts={} steal_batches={} parks={} wakes={}",
        snap.tasks_stolen, snap.steal_attempts, snap.steal_batches, snap.worker_parks, snap.worker_wakes
    );

    // ---- BENCH_sched.json ----
    let mut json = String::from("{\n  \"bench\": \"sched_overhead\",\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"engine\": \"{}\", \"workers\": {}, \"items\": {}, \"median_secs\": {:.6}, \"per_sec\": {:.1}}}{}\n",
            r.workload,
            r.engine,
            r.workers,
            r.items,
            r.secs,
            r.per_sec(),
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"idle_4worker_cpu_ticks\": {{\"window_ms\": {}, \"chase_lev\": {}, \"lock_based\": {}}},\n",
        idle_window.as_millis(),
        idle_ticks_chase_lev.map_or("null".into(), |v| v.to_string()),
        idle_ticks_lock.map_or("null".into(), |v| v.to_string())
    ));
    json.push_str(&format!(
        "  \"chase_lev_4worker_counters\": {{\"stolen\": {}, \"steal_attempts\": {}, \"steal_batches\": {}, \"parks\": {}, \"wakes\": {}}}\n}}\n",
        snap.tasks_stolen, snap.steal_attempts, snap.steal_batches, snap.worker_parks, snap.worker_wakes
    ));
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sched.json");
    std::fs::write(out, &json).expect("write BENCH_sched.json");
    println!("wrote {out}");
}
