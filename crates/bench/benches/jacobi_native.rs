//! Native (host-executed) 2D Jacobi: scalar vs. explicit VNS-SIMD layouts
//! on the real runtime — the Listing 2 comparison, scaled to laptop size.
//! Reports GLUP/s-equivalent throughput per layout and data type.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use parallex::algorithms::par;
use parallex::runtime::Runtime;
use parallex_stencil::jacobi2d::{Jacobi2d, Jacobi2dVns};

const NX: usize = 512;
const NY: usize = 256;
const STEPS: usize = 4;

fn init(x: usize, y: usize) -> f64 {
    ((x * 31 + y * 17) % 101) as f64 / 101.0
}

fn init32(x: usize, y: usize) -> f32 {
    init(x, y) as f32
}

fn bench_layouts(c: &mut Criterion) {
    let rt = Runtime::builder().worker_threads(4).build();
    let lups = (NX * NY * STEPS) as u64;
    let mut g = c.benchmark_group("jacobi2d_native");
    g.throughput(Throughput::Elements(lups));

    g.bench_function("f64_scalar", |b| {
        let mut j = Jacobi2d::new(NX, NY, 0.0, init);
        b.iter(|| j.run(STEPS, &par(&rt)));
    });
    g.bench_function("f64_vns8", |b| {
        let mut j = Jacobi2dVns::<f64, 8>::new(NX, NY, 0.0, init);
        b.iter(|| j.run(STEPS, &par(&rt)));
    });
    g.bench_function("f32_scalar", |b| {
        let mut j = Jacobi2d::new(NX, NY, 0.0f32, init32);
        b.iter(|| j.run(STEPS, &par(&rt)));
    });
    g.bench_function("f32_vns16", |b| {
        let mut j = Jacobi2dVns::<f32, 16>::new(NX, NY, 0.0, init32);
        b.iter(|| j.run(STEPS, &par(&rt)));
    });
    g.finish();
    rt.shutdown();
}

fn bench_tiling(c: &mut Criterion) {
    // The explicit cache-blocked traversal vs the plain row sweep (the
    // paper: large cache lines grant A64FX/TX2 this blocking for free).
    use parallex_stencil::grid::ScalarGrid;
    use parallex_stencil::jacobi2d::jacobi_step_scalar_tiled;
    let rt = Runtime::builder().worker_threads(4).build();
    let lups = (NX * NY * STEPS) as u64;
    let mut g = c.benchmark_group("jacobi2d_tiled");
    g.throughput(Throughput::Elements(lups));
    for tile_rows in [4usize, 16, 64] {
        g.bench_function(format!("tile_{tile_rows}"), |b| {
            let mut cur = ScalarGrid::from_fn(NX, NY, init);
            let mut next = ScalarGrid::zeros(NX, NY);
            b.iter(|| {
                for _ in 0..STEPS {
                    jacobi_step_scalar_tiled(&cur, &mut next, &par(&rt), tile_rows);
                    std::mem::swap(&mut cur, &mut next);
                }
            });
        });
    }
    g.finish();
    rt.shutdown();
}

fn bench_stream_native(c: &mut Criterion) {
    let rt = Runtime::builder().worker_threads(4).build();
    let elems = 1 << 22;
    let mut g = c.benchmark_group("stream_native");
    g.throughput(Throughput::Bytes(elems as u64 * 16));
    g.bench_function("copy_4M_doubles", |b| {
        b.iter(|| parallex_stencil::stream::stream_copy_host(&rt, elems, 1));
    });
    g.finish();
    rt.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_layouts, bench_tiling, bench_stream_native
}
criterion_main!(benches);
