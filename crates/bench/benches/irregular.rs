//! Irregular-workload benchmarks: where work stealing earns its keep.
//!
//! The paper's stencils are *regular*; its Section I motivates AMT
//! runtimes with dynamic, low-uniformity algorithms. These benches measure
//! the scheduler on exactly that: an unbalanced tree search under the
//! stealing vs. static policies, fork-join recursion across grain sizes,
//! and adaptive quadrature with a localized hot spot.

use criterion::{criterion_group, criterion_main, Criterion};
use parallex::prelude::*;
use parallex::sched::SchedulerPolicy;
use parallex_workloads::quadrature::integrate_adaptive;
use parallex_workloads::uts::{uts_count, uts_count_sequential, UtsParams};
use parallex_workloads::{fib::fib_reference, parallel_fib};

fn bench_uts_policies(c: &mut Criterion) {
    let params = UtsParams::small(42);
    let want = uts_count_sequential(params);
    let mut g = c.benchmark_group("irregular/uts");
    for (name, policy) in [
        ("steal", SchedulerPolicy::LocalPriority),
        ("static", SchedulerPolicy::Static),
    ] {
        g.bench_function(name, |b| {
            let rt = Runtime::builder().worker_threads(4).scheduler(policy).build();
            b.iter(|| assert_eq!(uts_count(&rt, params), want));
            rt.shutdown();
        });
    }
    g.bench_function("sequential", |b| {
        b.iter(|| assert_eq!(uts_count_sequential(params), want));
    });
    g.finish();
}

fn bench_fib_grain(c: &mut Criterion) {
    let want = fib_reference(27);
    let rt = Runtime::builder().worker_threads(4).build();
    let mut g = c.benchmark_group("irregular/fib27");
    for threshold in [10u64, 16, 22] {
        g.bench_function(format!("threshold_{threshold}"), |b| {
            b.iter(|| assert_eq!(parallel_fib(&rt, 27, threshold), want));
        });
    }
    g.finish();
    rt.shutdown();
}

fn bench_quadrature(c: &mut Criterion) {
    let rt = Runtime::builder().worker_threads(4).build();
    c.bench_function("irregular/adaptive_quadrature_spike", |b| {
        b.iter(|| {
            let v = integrate_adaptive(&rt, |x| 1.0 / (1e-4 + x * x), -1.0, 1.0, 1e-8);
            assert!(v > 300.0);
        });
    });
    rt.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_uts_policies, bench_fib_grain, bench_quadrature
}
criterion_main!(benches);
