//! Criterion benchmarks of the parallel algorithms: scaling of `for_each`
//! with worker count and chunking policy (the machinery under Listings 1
//! and 2), plus reduce and scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parallex::algorithms::{par, seq};
use parallex::runtime::Runtime;

const N: usize = 1 << 20;

fn bench_for_each_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithms/for_each_mut_1M");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("seq", |b| {
        let mut data = vec![0.0f64; N];
        b.iter(|| {
            seq().for_each_mut(&mut data, |i, x| *x = (i as f64).sqrt());
        });
    });
    for workers in [1usize, 2, 4] {
        let rt = Runtime::builder().worker_threads(workers).build();
        g.bench_with_input(BenchmarkId::new("par", workers), &workers, |b, _| {
            let mut data = vec![0.0f64; N];
            b.iter(|| {
                par(&rt).for_each_mut(&mut data, |i, x| *x = (i as f64).sqrt());
            });
        });
        rt.shutdown();
    }
    g.finish();
}

fn bench_chunk_policies(c: &mut Criterion) {
    let rt = Runtime::builder().worker_threads(4).build();
    let mut g = c.benchmark_group("algorithms/chunking_1M");
    g.throughput(Throughput::Elements(N as u64));
    let mut data = vec![1.0f64; N];
    g.bench_function("auto", |b| {
        b.iter(|| par(&rt).for_each_mut(&mut data, |_, x| *x += 1.0));
    });
    g.bench_function("per_worker_block", |b| {
        b.iter(|| {
            par(&rt)
                .per_worker()
                .block()
                .for_each_mut(&mut data, |_, x| *x += 1.0)
        });
    });
    g.bench_function("chunks_256", |b| {
        b.iter(|| par(&rt).with_chunks(256).for_each_mut(&mut data, |_, x| *x += 1.0));
    });
    g.finish();
    rt.shutdown();
}

fn bench_reduce_and_scan(c: &mut Criterion) {
    let rt = Runtime::builder().worker_threads(4).build();
    c.bench_function("algorithms/reduce_1M", |b| {
        b.iter(|| {
            let s = par(&rt).reduce(0..N, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(s, (N as u64 - 1) * N as u64 / 2);
        });
    });
    let input: Vec<u64> = (0..1 << 16).collect();
    c.bench_function("algorithms/inclusive_scan_64k", |b| {
        b.iter(|| {
            let out = par(&rt).inclusive_scan(&input, |a, b| a + b);
            assert_eq!(out.len(), input.len());
        });
    });
    rt.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_for_each_scaling, bench_chunk_policies, bench_reduce_and_scan
}
criterion_main!(benches);
