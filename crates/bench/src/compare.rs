//! Paper-vs-model comparison.
//!
//! The paper's prose and tables pin down a set of quantitative anchors
//! (wall-clock times, scaling factors, vectorization gains, counter
//! values). This module holds them as data, evaluates the corresponding
//! model quantities, and renders the side-by-side report that
//! EXPERIMENTS.md embeds (`repro compare`). Counter values match by
//! construction (the model is calibrated on them); timing and ratio
//! anchors are genuine predictions of the composed models.

use crate::report::Table;
use parallex_machine::spec::ProcessorId;
use parallex_perfsim::exec::{glups_at, wall_time_s, Stencil2dConfig};
use parallex_perfsim::heat1d::{speedup, time_seconds, Heat1dConfig};
use parallex_perfsim::kernel::Vectorization;

/// One quantitative anchor from the paper.
#[derive(Clone, Debug)]
pub struct Anchor {
    /// Where in the paper the value comes from.
    pub source: &'static str,
    /// What is being compared.
    pub quantity: &'static str,
    /// The paper's value.
    pub paper: f64,
    /// Our model's value.
    pub model: f64,
    /// Acceptable relative deviation for the reproduction to count as
    /// matching the paper's *shape* (ratios tighter than raw times).
    pub tolerance: f64,
}

impl Anchor {
    /// Relative deviation |model - paper| / |paper|.
    pub fn deviation(&self) -> f64 {
        (self.model - self.paper).abs() / self.paper.abs()
    }

    /// Whether the model lands within tolerance.
    pub fn ok(&self) -> bool {
        self.deviation() <= self.tolerance
    }
}

fn gain(proc: ProcessorId, bytes: usize, best_over_cores: bool) -> f64 {
    let auto = Stencil2dConfig::paper(proc, bytes, Vectorization::Auto);
    let expl = Stencil2dConfig::paper(proc, bytes, Vectorization::Explicit);
    let sweep = proc.spec().core_sweep();
    if best_over_cores {
        sweep
            .into_iter()
            .map(|c| glups_at(&expl, c).expect("4/8 elem bytes are calibrated") / glups_at(&auto, c).expect("4/8 elem bytes are calibrated"))
            .fold(0.0, f64::max)
    } else {
        let c = proc.spec().total_cores();
        glups_at(&expl, c).expect("4/8 elem bytes are calibrated") / glups_at(&auto, c).expect("4/8 elem bytes are calibrated")
    }
}

/// All anchors: the paper's explicitly stated numbers vs. the models.
pub fn anchors() -> Vec<Anchor> {
    use ProcessorId::*;
    let xeon_strong = Heat1dConfig::paper_strong(XeonE5_2660v3);
    let a64_strong = Heat1dConfig::paper_strong(A64FX);
    let xeon_weak = Heat1dConfig::paper_weak(XeonE5_2660v3);
    let a64_weak = Heat1dConfig::paper_weak(A64FX);
    vec![
        Anchor {
            source: "§VII-A",
            quantity: "1D strong, Xeon, 1 node (s)",
            paper: 28.0,
            model: time_seconds(&xeon_strong, 1),
            tolerance: 0.10,
        },
        Anchor {
            source: "§VII-A",
            quantity: "1D strong, Xeon, 8 nodes (s)",
            paper: 3.8,
            model: time_seconds(&xeon_strong, 8),
            tolerance: 0.10,
        },
        Anchor {
            source: "§VII-A",
            quantity: "1D strong speedup, Xeon, 8 nodes",
            paper: 7.36,
            model: speedup(&xeon_strong, 8),
            tolerance: 0.05,
        },
        Anchor {
            source: "§VII-A",
            quantity: "1D strong, A64FX, 1 node (s)",
            paper: 18.0,
            model: time_seconds(&a64_strong, 1),
            tolerance: 0.10,
        },
        Anchor {
            source: "§VII-A",
            quantity: "1D strong, A64FX, 8 nodes (s)",
            paper: 2.5,
            model: time_seconds(&a64_strong, 8),
            tolerance: 0.10,
        },
        Anchor {
            source: "§VII-A",
            quantity: "1D strong speedup, A64FX, 8 nodes",
            paper: 7.2,
            model: speedup(&a64_strong, 8),
            tolerance: 0.05,
        },
        Anchor {
            source: "§VII-A",
            quantity: "1D weak, Xeon (s, any node count)",
            paper: 12.0,
            model: time_seconds(&xeon_weak, 4),
            tolerance: 0.10,
        },
        Anchor {
            source: "§VII-A",
            quantity: "1D weak, A64FX (s, any node count)",
            paper: 7.5,
            model: time_seconds(&a64_weak, 4),
            tolerance: 0.10,
        },
        Anchor {
            source: "§VII-B",
            quantity: "2D Xeon best f32 explicit-vec gain (x)",
            paper: 1.5,
            model: gain(XeonE5_2660v3, 4, true),
            tolerance: 0.12,
        },
        Anchor {
            source: "§VII-B",
            quantity: "2D Xeon best f64 explicit-vec gain (x)",
            paper: 1.10,
            model: gain(XeonE5_2660v3, 8, true),
            tolerance: 0.08,
        },
        Anchor {
            source: "§VII-B",
            quantity: "2D Kunpeng full-node f32 gain (x)",
            paper: 1.8,
            model: gain(Kunpeng916, 4, false),
            tolerance: 0.10,
        },
        Anchor {
            source: "§VII-B",
            quantity: "2D TX2 full-node f32 gain (x)",
            paper: 1.55,
            model: gain(ThunderX2, 4, false),
            tolerance: 0.08,
        },
        Anchor {
            source: "§VII-B",
            quantity: "2D TX2 full-node f64 gain (x)",
            paper: 1.4,
            model: gain(ThunderX2, 8, false),
            tolerance: 0.10,
        },
        Anchor {
            source: "§VII-B",
            quantity: "2D A64FX best explicit-vec gain (x)",
            paper: 1.10,
            model: gain(A64FX, 4, true),
            tolerance: 0.08,
        },
        Anchor {
            source: "§VII-B",
            quantity: "2D A64FX f32 wall, 48 cores (s, paper: <2)",
            paper: 1.9,
            model: wall_time_s(&Stencil2dConfig::paper(A64FX, 4, Vectorization::Explicit), 48)
                .expect("4/8 elem bytes are calibrated"),
            tolerance: 0.15,
        },
        Anchor {
            source: "§VII-B",
            quantity: "2D A64FX f64 wall, 48 cores (s)",
            paper: 3.5,
            model: wall_time_s(&Stencil2dConfig::paper(A64FX, 8, Vectorization::Explicit), 48)
                .expect("4/8 elem bytes are calibrated"),
            tolerance: 0.10,
        },
        Anchor {
            source: "§VII-B",
            quantity: "A64FX cache-blocking boost (x, paper: 49%)",
            paper: 1.49,
            model: 3.0 / 2.0, // three- vs two-transfer roofline ratio
            tolerance: 0.02,
        },
    ]
}

/// Render the comparison table.
pub fn compare_table() -> Table {
    let mut t = Table::new(
        "Paper vs. model (anchors from the paper's text; see EXPERIMENTS.md)",
        &["Source", "Quantity", "Paper", "Model", "Dev %", "OK"],
    );
    for a in anchors() {
        t.push_row(vec![
            a.source.to_string(),
            a.quantity.to_string(),
            format!("{:.2}", a.paper),
            format!("{:.2}", a.model),
            format!("{:.1}", a.deviation() * 100.0),
            if a.ok() { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_anchor_is_within_tolerance() {
        for a in anchors() {
            assert!(
                a.ok(),
                "{} — {}: paper {} vs model {} ({:.1}% > {:.1}%)",
                a.source,
                a.quantity,
                a.paper,
                a.model,
                a.deviation() * 100.0,
                a.tolerance * 100.0
            );
        }
    }

    #[test]
    fn anchor_set_covers_both_benchmarks_and_all_machines() {
        let all = anchors();
        assert!(all.len() >= 15);
        for needle in ["Xeon", "A64FX", "Kunpeng", "TX2"] {
            assert!(
                all.iter().any(|a| a.quantity.contains(needle)),
                "no anchor mentions {needle}"
            );
        }
        assert!(all.iter().any(|a| a.quantity.contains("1D")));
        assert!(all.iter().any(|a| a.quantity.contains("2D")));
    }

    #[test]
    fn table_renders_all_anchors() {
        let t = compare_table();
        assert_eq!(t.rows.len(), anchors().len());
    }
}
