//! Generators for every figure of the paper's evaluation.
//!
//! Each function returns the labelled series of one figure, produced
//! entirely by the calibrated models (no hard-coded outputs); the `repro`
//! binary renders them, EXPERIMENTS.md records how they compare to the
//! paper, and `tests/model_consistency.rs` asserts the qualitative claims.

use crate::report::Series;
use parallex_machine::spec::ProcessorId;
use parallex_perfsim::exec::{self, Stencil2dConfig};
use parallex_perfsim::heat1d::{self, Heat1dConfig};
use parallex_perfsim::kernel::Vectorization;
use parallex_perfsim::stream;
use parallex_roofline::expected_peak_glups;

/// Fig. 2: STREAM COPY bandwidth vs. cores for all four machines.
pub fn fig2_stream() -> Vec<Series> {
    ProcessorId::ALL
        .iter()
        .map(|&id| Series::from_usize(id.name(), stream::stream_series(id)))
        .collect()
}

/// Fig. 3: 1D stencil strong + weak scaling, seconds vs. nodes.
pub fn fig3_heat1d() -> Vec<Series> {
    let mut out = Vec::new();
    for &id in &ProcessorId::ALL {
        let strong = Heat1dConfig::paper_strong(id);
        out.push(Series::from_usize(
            format!("{} (strong, 1.2G pts)", id.name()),
            heat1d::series(&strong),
        ));
        let weak = Heat1dConfig::paper_weak(id);
        out.push(Series::from_usize(
            format!("{} (weak, 480M pts/node)", id.name()),
            heat1d::series(&weak),
        ));
    }
    out
}

/// The four measured lines of a 2D-stencil figure for one machine.
fn stencil_lines(proc: ProcessorId, large_grid: bool) -> Vec<Series> {
    let mut out = Vec::new();
    for (bytes, vec) in [
        (4, Vectorization::Auto),
        (4, Vectorization::Explicit),
        (8, Vectorization::Auto),
        (8, Vectorization::Explicit),
    ] {
        let cfg = if large_grid {
            Stencil2dConfig::paper_large(proc, bytes, vec)
        } else {
            Stencil2dConfig::paper(proc, bytes, vec)
        };
        let label = vec.label(bytes).expect("4/8 elem bytes are calibrated");
        out.push(Series::from_usize(label, exec::series(&cfg).expect("4/8 elem bytes are calibrated")));
    }
    out
}

/// The expected-peak (roofline) lines of a 2D-stencil figure.
///
/// `transfer_counts` follows the paper: Xeon/Kunpeng figures draw one
/// expected peak (3 transfers); A64FX/TX2 figures draw "Expected Peak Max"
/// (2 transfers) and "Expected Peak Min" (3 transfers).
fn peak_lines(proc: ProcessorId, transfer_counts: &[(f64, &str)]) -> Vec<Series> {
    let spec = proc.spec();
    let mut out = Vec::new();
    for &(transfers, suffix) in transfer_counts {
        for bytes in [4usize, 8] {
            let label = format!(
                "Expected Peak{} ({})",
                suffix,
                if bytes == 4 { "float" } else { "double" }
            );
            let pts: Vec<(usize, f64)> = spec
                .core_sweep()
                .into_iter()
                .map(|c| (c, expected_peak_glups(&spec, bytes, c, transfers)))
                .collect();
            out.push(Series::from_usize(label, pts));
        }
    }
    out
}

/// A complete 2D-stencil figure: measured + expected-peak lines.
pub fn stencil_figure(proc: ProcessorId, large_grid: bool) -> Vec<Series> {
    let peaks: &[(f64, &str)] = match proc {
        ProcessorId::XeonE5_2660v3 | ProcessorId::Kunpeng916 => &[(3.0, "")],
        ProcessorId::ThunderX2 | ProcessorId::A64FX => &[(2.0, " Max"), (3.0, " Min")],
    };
    let mut out = stencil_lines(proc, large_grid);
    out.extend(peak_lines(proc, peaks));
    out
}

/// Fig. 4: Intel Xeon E5-2660 v3, 8192×131072.
pub fn fig4_xeon() -> Vec<Series> {
    stencil_figure(ProcessorId::XeonE5_2660v3, false)
}

/// Fig. 5: HiSilicon Kunpeng 916 (Hi1616), 8192×131072.
pub fn fig5_kunpeng() -> Vec<Series> {
    stencil_figure(ProcessorId::Kunpeng916, false)
}

/// Fig. 6: Fujitsu A64FX, 8192×131072.
pub fn fig6_a64fx() -> Vec<Series> {
    stencil_figure(ProcessorId::A64FX, false)
}

/// Fig. 7: Fujitsu A64FX, 8192×196608 (grid-size ablation).
pub fn fig7_a64fx_large() -> Vec<Series> {
    stencil_figure(ProcessorId::A64FX, true)
}

/// Fig. 8: Marvell ThunderX2, 8192×131072.
pub fn fig8_tx2() -> Vec<Series> {
    stencil_figure(ProcessorId::ThunderX2, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_has_four_machines() {
        let s = fig2_stream();
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|s| !s.points.is_empty()));
    }

    #[test]
    fn fig3_has_strong_and_weak_lines_per_machine() {
        let s = fig3_heat1d();
        assert_eq!(s.len(), 8);
        assert!(s.iter().any(|s| s.label.contains("strong")));
        assert!(s.iter().any(|s| s.label.contains("weak")));
    }

    #[test]
    fn stencil_figures_have_four_measured_lines() {
        for f in [fig4_xeon(), fig5_kunpeng(), fig6_a64fx(), fig7_a64fx_large(), fig8_tx2()] {
            let measured = f
                .iter()
                .filter(|s| !s.label.starts_with("Expected"))
                .count();
            assert_eq!(measured, 4);
        }
    }

    #[test]
    fn a64fx_figure_has_min_and_max_peaks() {
        let f = fig6_a64fx();
        assert!(f.iter().any(|s| s.label.contains("Peak Max")));
        assert!(f.iter().any(|s| s.label.contains("Peak Min")));
        // Xeon figure carries a single expected peak per dtype.
        let x = fig4_xeon();
        assert!(!x.iter().any(|s| s.label.contains("Peak Max")));
        assert_eq!(x.iter().filter(|s| s.label.starts_with("Expected")).count(), 2);
    }

    #[test]
    fn every_series_is_positive_and_finite() {
        for figs in [
            fig2_stream(),
            fig3_heat1d(),
            fig4_xeon(),
            fig5_kunpeng(),
            fig6_a64fx(),
            fig7_a64fx_large(),
            fig8_tx2(),
        ] {
            for s in figs {
                for (x, y) in s.points {
                    assert!(y.is_finite() && y > 0.0, "{} at {x}: {y}", s.label);
                }
            }
        }
    }
}
