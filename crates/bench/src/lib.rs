//! # parallex-bench
//!
//! The reproduction harness. The `repro` binary regenerates every table
//! and figure of the paper's evaluation from the models in
//! `parallex-perfsim` / `parallex-machine` / `parallex-roofline`
//! (`cargo run -p parallex-bench --bin repro -- all`); the Criterion
//! benches measure the *real* `parallex` runtime and kernels on the host.
//! This library holds the shared report-formatting helpers plus the
//! figure/table generators the binary and the tests both call.

pub mod compare;
pub mod figures;
pub mod netrun;
pub mod report;
pub mod tables;

pub use report::{Series, Table};
