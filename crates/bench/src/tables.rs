//! Generators for the paper's tables.
//!
//! Table I comes straight from the machine specs; Tables III–VI are the
//! counter-model measurements at the paper's reference workload
//! (8192×16384, 100 iterations, one core). Columns mirror the paper: the
//! machines whose stall counters the paper could not read (Xeon, Kunpeng)
//! print instruction + cache-miss columns only.

use crate::report::{sci, Table};
use parallex_machine::spec::ProcessorId;
use parallex_perfsim::counters::measure_reference;
use parallex_perfsim::kernel::Vectorization;

const VARIANTS: [(usize, Vectorization); 4] = [
    (4, Vectorization::Auto),
    (4, Vectorization::Explicit),
    (8, Vectorization::Auto),
    (8, Vectorization::Explicit),
];

/// Table I: processor specifications.
pub fn table1_specs() -> Table {
    let mut t = Table::new(
        "Table I: Specification of the Arm and x86 nodes",
        &[
            "",
            "Intel Xeon E5-2660 v3",
            "HiSilicon Kunpeng 916",
            "Marvell ThunderX2",
            "Fujitsu (FX1000) A64FX",
        ],
    );
    let specs: Vec<_> = ProcessorId::ALL.iter().map(|id| id.spec()).collect();
    let row = |label: &str, f: &dyn Fn(&parallex_machine::spec::Processor) -> String| {
        let mut cells = vec![label.to_string()];
        cells.extend(specs.iter().map(f));
        cells
    };
    t.push_row(row("Processor Clock Speed", &|s| format!("{}GHz", s.clock_ghz)));
    t.push_row(row("Cores per processor", &|s| s.cores_per_socket.to_string()));
    t.push_row(row("Processors per node", &|s| s.sockets.to_string()));
    t.push_row(row("Threads per core", &|s| s.threads_per_core.to_string()));
    t.push_row(row("Vectorization", &|s| {
        format!(
            "{} {} ({}-bit)",
            if s.vector.pipes == 2 { "Double" } else { "Single" },
            s.vector.isa_name,
            s.vector.width_bits
        )
    }));
    t.push_row(row("DP FLOPS per cycle", &|s| {
        s.vector.dp_flops_per_cycle().to_string()
    }));
    t.push_row(row("Peak Performance (GFLOP/s)", &|s| {
        format!("{:.0}", s.peak_dp_gflops())
    }));
    t
}

fn counter_table(
    title: &str,
    proc: ProcessorId,
    columns: &[&str],
    extract: impl Fn(&parallex_perfsim::counters::HwCounters) -> Vec<f64>,
) -> Table {
    let mut header = vec!["Data Type"];
    header.extend_from_slice(columns);
    let mut t = Table::new(title, &header);
    for (bytes, vec) in VARIANTS {
        let m = measure_reference(proc, bytes, vec).expect("4/8 elem bytes are calibrated");
        let mut cells = vec![vec.label(bytes).expect("4/8 elem bytes are calibrated").to_string()];
        cells.extend(extract(&m).into_iter().map(sci));
        t.push_row(cells);
    }
    t
}

/// Table III: Xeon E5-2660 v3 counters.
pub fn table3_xeon() -> Table {
    counter_table(
        "Table III: Hardware Counters for Intel Xeon E5-2660v3",
        ProcessorId::XeonE5_2660v3,
        &["Instruction", "Cache Misses"],
        |m| vec![m.instructions, m.cache_misses],
    )
}

/// Table IV: Kunpeng 916 / Hi1616 counters.
pub fn table4_kunpeng() -> Table {
    counter_table(
        "Table IV: Hardware Counters for HiSilicon Hi1616",
        ProcessorId::Kunpeng916,
        &["Instruction", "Cache Misses"],
        |m| vec![m.instructions, m.cache_misses],
    )
}

/// Table V: A64FX counters.
pub fn table5_a64fx() -> Table {
    counter_table(
        "Table V: Hardware Counters for Fujitsu FX1000 A64FX",
        ProcessorId::A64FX,
        &["Instruction", "Frontend Stalls", "Backend Stalls"],
        |m| vec![m.instructions, m.fe_stalls, m.be_stalls],
    )
}

/// Table VI: ThunderX2 counters.
pub fn table6_tx2() -> Table {
    counter_table(
        "Table VI: Hardware Counters for Marvell ThunderX2",
        ProcessorId::ThunderX2,
        &["Instruction", "L2 Cache Misses", "Backend Stalls"],
        |m| vec![m.instructions, m.l2_misses, m.be_stalls],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_headline_numbers() {
        let t = table1_specs().render();
        for needle in ["2.6GHz", "2.2GHz", "832", "614", "1229", "3379"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn table3_matches_paper_values() {
        let t = table3_xeon().render();
        for needle in ["3.153e10", "1.783e10", "6.010e10", "3.507e10", "2.121e8", "8.751e8"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn table4_matches_paper_values() {
        let t = table4_kunpeng().render();
        for needle in ["4.300e10", "4.144e10", "3.148e9", "4.953e9"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn table5_matches_paper_values() {
        let t = table5_a64fx().render();
        for needle in ["1.284e10", "2.956e10", "3.801e8", "1.443e10"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn table6_matches_paper_values() {
        let t = table6_tx2().render();
        for needle in ["4.039e10", "8.756e10", "1.811e9", "2.826e10", "6.437e9"] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn all_counter_tables_have_four_rows() {
        for t in [table3_xeon(), table4_kunpeng(), table5_a64fx(), table6_tx2()] {
            assert_eq!(t.rows.len(), 4);
            assert_eq!(t.rows[0][0], "Float");
            assert_eq!(t.rows[3][0], "Vector Double");
        }
    }
}
