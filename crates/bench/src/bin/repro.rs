//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p parallex-bench --bin repro -- all
//! cargo run --release -p parallex-bench --bin repro -- fig6
//! cargo run --release -p parallex-bench --bin repro -- fig2 --csv
//! ```
//!
//! Subcommands: `table1`, `fig2`, `fig3`, `fig4`, `fig5`, `fig6`, `fig7`,
//! `fig8`, `table3`, `table4`, `table5`, `table6`, `all`. Add `--csv` to
//! emit figures as CSV instead of aligned text.
//!
//! `repro trace` is separate from `all`: it runs a 2-locality heat1d
//! solve over a simulated fabric with tracing on and writes a
//! Perfetto-loadable `trace.json` (plus `trace_sim.json` from the
//! discrete-event scheduler simulator over the same stencil plan, and a
//! counter dump rendering both through the shared path schema).
//!
//! `repro explain` feeds the same traced solve through the latency
//! attribution engine: per-worker time attribution with the conservation
//! identity, the critical path, the effect of compute grain on exposed
//! halo wait, and a native-vs-DES diff (the DES critical path is exact,
//! validating the analyzer's heuristic chain walk).
//!
//! `repro serve` stands up the Prometheus exposition endpoint on an
//! ephemeral port, scrapes it once over TCP and validates the format.

use parallex_bench::figures;
use parallex_bench::report::{render_csv, render_figure, Series};
use parallex_bench::tables;
use std::path::PathBuf;

struct Sink {
    csv: bool,
    out_dir: Option<PathBuf>,
}

impl Sink {
    fn emit_ext(&self, name: &str, ext: &str, text: String) {
        match &self.out_dir {
            Some(dir) => {
                let path = dir.join(format!("{name}.{ext}"));
                std::fs::write(&path, text).expect("write result file");
                eprintln!("wrote {}", path.display());
            }
            None => println!("{text}"),
        }
    }

    /// Figures honour `--csv`; tables are always aligned text.
    fn emit(&self, name: &str, text: String) {
        self.emit_ext(name, if self.csv { "csv" } else { "txt" }, text);
    }

    fn emit_table(&self, name: &str, text: String) {
        self.emit_ext(name, "txt", text);
    }
}

fn figure_text(title: &str, x: &str, y: &str, series: &[Series], csv: bool) -> String {
    if csv {
        render_csv(x, series)
    } else {
        render_figure(title, x, y, series)
    }
}

fn run(cmd: &str, sink: &Sink, chaos: Option<&str>) -> bool {
    let csv = sink.csv;
    let print_figure = |name: &str, title: &str, x: &str, y: &str, series: Vec<Series>| {
        sink.emit(name, figure_text(title, x, y, &series, csv));
    };
    match cmd {
        "table1" => sink.emit_table("table1", tables::table1_specs().render()),
        "fig2" => print_figure(
            "fig2",
            "Fig. 2: Memory Bandwidth, STREAM COPY (128M elements)",
            "cores",
            "GB/s",
            figures::fig2_stream(),
        ),
        "fig3" => print_figure(
            "fig3",
            "Fig. 3: 1D stencil distributed strong/weak scaling (100 steps)",
            "nodes",
            "seconds",
            figures::fig3_heat1d(),
        ),
        "fig4" => print_figure(
            "fig4",
            "Fig. 4: 2D stencil, Intel Xeon E5-2660 v3, 8192x131072, 100 steps",
            "cores",
            "GLUP/s",
            figures::fig4_xeon(),
        ),
        "fig5" => print_figure(
            "fig5",
            "Fig. 5: 2D stencil, HiSilicon Kunpeng 916 (Hi1616), 8192x131072, 100 steps",
            "cores",
            "GLUP/s",
            figures::fig5_kunpeng(),
        ),
        "fig6" => print_figure(
            "fig6",
            "Fig. 6: 2D stencil, Fujitsu A64FX, 8192x131072, 100 steps",
            "cores",
            "GLUP/s",
            figures::fig6_a64fx(),
        ),
        "fig7" => print_figure(
            "fig7",
            "Fig. 7: 2D stencil, Fujitsu A64FX, 8192x196608 (grid-size ablation)",
            "cores",
            "GLUP/s",
            figures::fig7_a64fx_large(),
        ),
        "fig8" => print_figure(
            "fig8",
            "Fig. 8: 2D stencil, Marvell ThunderX2, 8192x131072, 100 steps",
            "cores",
            "GLUP/s",
            figures::fig8_tx2(),
        ),
        "table3" => sink.emit_table("table3", tables::table3_xeon().render()),
        "table4" => sink.emit_table("table4", tables::table4_kunpeng().render()),
        "table5" => sink.emit_table("table5", tables::table5_a64fx().render()),
        "table6" => sink.emit_table("table6", tables::table6_tx2().render()),
        "compare" => sink.emit_table("compare", parallex_bench::compare::compare_table().render()),
        "sensitivity" => {
            use parallex_perfsim::sensitivity::{survival_margin, Feature};
            let mut t = parallex_bench::report::Table::new(
                "Robustness of the qualitative features to machine-constant error",
                &["Feature", "Survives +/-"],
            );
            for f in Feature::ALL {
                t.push_row(vec![
                    f.name().to_string(),
                    format!(">= {:.0}%", survival_margin(f) * 100.0),
                ]);
            }
            sink.emit_table("sensitivity", t.render());
        }
        "trace" => trace_experiment(sink),
        "explain" => explain_experiment(sink),
        "serve" => serve_experiment(sink),
        "heat1d-net" => {
            let report = parallex_bench::netrun::heat1d_net(chaos);
            sink.emit_table("heat1d_net", report.summary);
            sink.emit_ext("BENCH_net", "json", report.bench_json);
            if let Some(resilience) = report.resilience_json {
                sink.emit_ext("BENCH_resilience", "json", resilience);
            }
        }
        "all" => {
            for c in [
                "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table3",
                "table4", "table5", "table6", "compare", "sensitivity",
            ] {
                run(c, sink, chaos);
            }
        }
        _ => return false,
    }
    true
}

/// The observability demo: trace a distributed heat1d solve and the DES
/// model of the same plan, emitting Chrome-trace JSON and counter dumps
/// through the shared introspection schema.
fn trace_experiment(sink: &Sink) {
    use parallex::introspect::{
        chrome_trace_json, render_counters, CounterPath, CounterSampler, Instance,
    };
    use parallex::locality::Cluster;
    use parallex_machine::cluster::ClusterSpec;
    use parallex_machine::spec::ProcessorId;
    use parallex_netsim::parcel_delay_fn;
    use parallex_perfsim::des::{simulate_traced, DesConfig, SimTask};
    use parallex_stencil::heat1d::{install, Heat1dParams, Heat1dSolver};
    use parallex_stencil::plan::StencilPlan;
    use std::time::Duration;

    // ---- native: 2-locality heat1d over a modeled fabric ---------------
    let localities = 2;
    let workers = 2;
    let n = 1 << 16; // 32 Ki points per locality: interior takes the parallel path
    let steps = 60;

    let cluster = Cluster::new(localities, workers);
    install(&cluster);
    let net = ClusterSpec::for_processor(ProcessorId::XeonE5_2660v3).network;
    cluster.set_network_delay(parcel_delay_fn(net, 0.01));

    let params = Heat1dParams::new(n, steps, 0.25);
    let solver = Heat1dSolver::new(&cluster, params);

    let registry = cluster.locality(0).runtime().counter_registry().clone();
    let sampler = CounterSampler::start(registry, Duration::from_millis(1));
    let before = cluster.counter_snapshot();
    cluster.start_trace();
    let _ = solver.run(move |i| if i < n / 2 { 100.0 } else { 0.0 });
    let traces = cluster.stop_trace();
    let after = cluster.counter_snapshot();
    let series = sampler.stop();
    sink.emit_ext("trace", "json", chrome_trace_json(&traces));

    let mut text = String::from("== native: 2-locality heat1d, cluster-wide delta ==\n");
    text.push_str(&render_counters(&after.delta(&before)));
    let cumulative = CounterPath::new("threads", 0, Instance::Total, "count/cumulative");
    let rates = series.rates(&cumulative);
    text.push_str(&format!(
        "\nsampler on locality#0: {} snapshots; {cumulative} peaked at {:.0} tasks/s\n",
        series.len(),
        rates.iter().map(|&(_, r)| r).fold(0.0, f64::max),
    ));
    cluster.shutdown();

    // ---- simulated: the DES over the same stencil plan -----------------
    // 1D row of cells modeled as ny rows of width 1 (plan chunks along ny).
    let plan = StencilPlan::new(1, n / localities, 4 * workers);
    let ns_per_lup = 2.0;
    let tasks: Vec<SimTask> = (0..plan.chunks())
        .map(|i| SimTask { duration_ns: plan.chunk_lups(i) as f64 * ns_per_lup, pinned: None })
        .collect();
    let cfg = DesConfig { cores: workers, ..Default::default() };
    let (result, sim_trace) = simulate_traced(&cfg, &tasks);
    sink.emit_ext("trace_sim", "json", chrome_trace_json(&[(0, sim_trace)]));
    text.push_str(&format!(
        "\n== simulated: DES, one step of the same plan on one locality ==\n{}",
        render_counters(&result.as_snapshot(0)),
    ));
    sink.emit_table("trace_counters", text);
    eprintln!("load trace.json / trace_sim.json at https://ui.perfetto.dev");
}

/// The attribution demo: run the traced 2-locality heat1d at two compute
/// grains, attribute every worker's wall clock, walk the critical path,
/// and diff the native schedule against the DES model of the same plan
/// (whose critical path is exact, validating the analyzer's heuristic).
fn explain_experiment(sink: &Sink) {
    use parallex::introspect::{analyze, diff_report, render_report, Analysis};
    use parallex::locality::Cluster;
    use parallex_perfsim::des::{simulate_traced, DesConfig, SimTask};
    use parallex_stencil::heat1d::{install, Heat1dParams, Heat1dSolver};
    use parallex_stencil::plan::StencilPlan;
    use std::sync::Arc;
    use std::time::Duration;

    let localities = 2;
    let workers = 2;
    let steps = 8;

    // Fixed halo latency so the grain comparison is about compute grain,
    // not the bandwidth term of the modeled fabric.
    let run_traced = |n: usize| -> Analysis {
        let cluster = Cluster::new(localities, workers);
        install(&cluster);
        cluster.set_network_delay(Arc::new(|_| Duration::from_micros(400)));
        let solver = Heat1dSolver::new(&cluster, Heat1dParams::new(n, steps, 0.25));
        cluster.start_trace();
        let _ = solver.run(move |i| if i < n / 2 { 100.0 } else { 0.0 });
        let traces = cluster.stop_trace();
        cluster.shutdown();
        analyze(&traces)
    };

    let fine_n = 1 << 12;
    let coarse_n = 1 << 19;
    let fine = run_traced(fine_n);
    let coarse = run_traced(coarse_n);

    let mut text = format!(
        "== native attribution: {localities}-locality heat1d, coarse grain (n = {coarse_n}) ==\n\n"
    );
    text.push_str(&render_report(&coarse));

    // A worker's wall clock is the analysis window, so the exposed share
    // is exposed-wait over (wall x worker lanes).
    let share = |a: &Analysis| {
        let lanes = a.worker_lanes().count().max(1) as f64;
        100.0 * a.exposed_wait_us() / (a.wall_us * lanes).max(1e-9)
    };
    text.push_str(&format!(
        "\n== grain effect: exposed halo wait vs compute grain ==\n\
         fine   (n = {fine_n:>7}): exposed wait {:>10.0} us  ({:>5.1}% of worker wall)\n\
         coarse (n = {coarse_n:>7}): exposed wait {:>10.0} us  ({:>5.1}% of worker wall)\n\
         larger compute grain amortizes the fixed 400 us halo latency.\n",
        fine.exposed_wait_us(),
        share(&fine),
        coarse.exposed_wait_us(),
        share(&coarse),
    ));

    // ---- DES ground truth ----------------------------------------------
    // One bulk-synchronous step of the coarse plan. The DES cores run
    // gap-free, so its critical path is exactly the makespan; the
    // analyzer's chain walk over the DES trace must reproduce it.
    let plan = StencilPlan::new(1, coarse_n / localities, 4 * workers);
    let ns_per_lup = 2.0;
    let tasks: Vec<SimTask> = (0..plan.chunks())
        .map(|i| SimTask { duration_ns: plan.chunk_lups(i) as f64 * ns_per_lup, pinned: None })
        .collect();
    let cfg = DesConfig { cores: workers, ..Default::default() };
    let (result, sim_trace) = simulate_traced(&cfg, &tasks);
    let des = analyze(&[(0, sim_trace)]);
    let truth_us = result.critical_path_ns / 1_000.0;
    let walked_us = des.critical_path.covered_us;
    let err_pct = 100.0 * (walked_us - truth_us).abs() / truth_us.max(1e-9);
    text.push_str(&format!(
        "\n== critical-path validation against the DES ==\n\
         DES ground truth: {truth_us:.1} us ({} tasks on the last-finishing core)\n\
         analyzer's walk:  {walked_us:.1} us covered ({err_pct:.2}% off truth)\n",
        result.critical_chain_len,
    ));

    text.push_str(&format!(
        "\n== native vs DES (one step of the same plan) ==\n{}",
        diff_report("native", &coarse, "DES", &des),
    ));
    sink.emit_table("explain", text);
}

/// Stand up the Prometheus endpoint on an ephemeral port, scrape it over
/// plain TCP and validate the exposition format end to end.
fn serve_experiment(sink: &Sink) {
    use parallex::introspect::validate_prometheus_text;
    use parallex::locality::Cluster;
    use parallex_stencil::heat1d::{install, Heat1dParams, Heat1dSolver};
    use std::io::{Read, Write};

    let cluster = Cluster::new(2, 2);
    install(&cluster);
    let n = 1 << 14;
    let solver = Heat1dSolver::new(&cluster, Heat1dParams::new(n, 10, 0.25));
    let _ = solver.run(move |i| if i < n / 2 { 100.0 } else { 0.0 });

    let server = cluster.serve_metrics("127.0.0.1:0").expect("bind metrics endpoint");
    let addr = server.local_addr();
    let mut conn = std::net::TcpStream::connect(addr).expect("connect to endpoint");
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: repro\r\nConnection: close\r\n\r\n")
        .expect("send scrape");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read scrape");
    let body = response.split("\r\n\r\n").nth(1).expect("http body");
    validate_prometheus_text(body).expect("exposition format must validate");

    let mut text = format!(
        "scraped http://{addr}/metrics: {} bytes, {} samples, format valid\n\nsample lines:\n",
        body.len(),
        body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count(),
    );
    for line in body
        .lines()
        .filter(|l| l.starts_with("parallex_up") || l.contains("latency"))
        .take(12)
    {
        text.push_str("  ");
        text.push_str(line);
        text.push('\n');
    }
    drop(server);
    cluster.shutdown();
    sink.emit_table("serve", text);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden re-invocation used by `heat1d-net` to spawn its worker
    // processes; never part of the user-facing subcommand set.
    if args.first().map(String::as_str) == Some("heat1d-net-worker") {
        parallex_bench::netrun::run_worker(&args[1..]);
        return;
    }
    let csv = args.iter().any(|a| a == "--csv");
    let out_dir = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create output directory");
    }
    // `--chaos` takes an optional `key=value,...` spec (empty = the
    // pinned CI spec); a following bare token is a spec only if it
    // contains `=`, otherwise it is the next subcommand.
    let mut chaos: Option<String> = None;
    let mut cmds: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--out" {
            i += 2;
            continue;
        }
        if a == "--chaos" {
            chaos = Some(String::new());
            if let Some(v) = args.get(i + 1) {
                if !v.starts_with("--") && v.contains('=') {
                    chaos = Some(v.clone());
                    i += 1;
                }
            }
            i += 1;
            continue;
        }
        if let Some(v) = a.strip_prefix("--chaos=") {
            chaos = Some(v.to_string());
            i += 1;
            continue;
        }
        if !a.starts_with("--") {
            cmds.push(a);
        }
        i += 1;
    }
    if cmds.is_empty() {
        eprintln!(
            "usage: repro [--csv] [--out DIR] [--chaos [SPEC]] <table1|fig2..fig8|table3..table6|compare|sensitivity|trace|explain|serve|heat1d-net|all> [more…]"
        );
        std::process::exit(2);
    }
    let sink = Sink { csv, out_dir };
    for c in cmds {
        if !run(c, &sink, chaos.as_deref()) {
            eprintln!("unknown experiment: {c}");
            eprintln!(
                "known: table1 fig2..fig8 table3..table6 compare sensitivity trace explain serve heat1d-net all"
            );
            std::process::exit(2);
        }
    }
}
