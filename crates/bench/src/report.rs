//! Plain-text/CSV rendering for figure series and tables.

use std::fmt::Write as _;

/// One labelled line of a figure: `(x, y)` points.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build from integer x-values.
    pub fn from_usize(label: impl Into<String>, pts: impl IntoIterator<Item = (usize, f64)>) -> Series {
        Series {
            label: label.into(),
            points: pts.into_iter().map(|(x, y)| (x as f64, y)).collect(),
        }
    }
}

/// A figure: several series over a common x-axis meaning.
pub fn render_figure(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}");
    let _ = writeln!(out, "# x = {x_label}, y = {y_label}");
    for s in series {
        let _ = writeln!(out, "## {}", s.label);
        for (x, y) in &s.points {
            let _ = writeln!(out, "{x:>10.0}  {y:>12.4}");
        }
    }
    out
}

/// Render several series as one CSV with a shared x column (series must
/// share x-values; missing cells become empty).
pub fn render_csv(x_label: &str, series: &[Series]) -> String {
    let mut xs: Vec<f64> = series.iter().flat_map(|s| s.points.iter().map(|p| p.0)).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs.dedup();
    let mut out = String::new();
    let _ = write!(out, "{x_label}");
    for s in series {
        let _ = write!(out, ",{}", s.label);
    }
    let _ = writeln!(out);
    for x in xs {
        let _ = write!(out, "{x}");
        for s in series {
            match s.points.iter().find(|p| p.0 == x) {
                Some((_, y)) => {
                    let _ = write!(out, ",{y:.6}");
                }
                None => {
                    let _ = write!(out, ",");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// A simple table: header row + string cells.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Build with a title and header.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    /// Render as aligned text.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<w$} ", cell, w = widths[c]);
            }
            let _ = writeln!(out, "|");
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 3).sum::<usize>() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Format a count in the paper's `a.bcd x 10^e` style.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let e = v.abs().log10().floor() as i32;
    let m = v / 10f64.powi(e);
    format!("{m:.3}e{e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_from_usize() {
        let s = Series::from_usize("a", [(1usize, 2.0), (4, 8.0)]);
        assert_eq!(s.points, vec![(1.0, 2.0), (4.0, 8.0)]);
    }

    #[test]
    fn figure_contains_all_series() {
        let s = vec![
            Series::from_usize("one", [(1usize, 1.0)]),
            Series::from_usize("two", [(2usize, 4.0)]),
        ];
        let txt = render_figure("Fig", "cores", "GB/s", &s);
        assert!(txt.contains("## one"));
        assert!(txt.contains("## two"));
        assert!(txt.contains("# Fig"));
    }

    #[test]
    fn csv_merges_x_values() {
        let s = vec![
            Series::from_usize("a", [(1usize, 1.0), (2, 2.0)]),
            Series::from_usize("b", [(2usize, 20.0)]),
        ];
        let csv = render_csv("x", &s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert!(lines[1].starts_with("1,1.0"));
        assert!(lines[1].ends_with(','), "missing cell is empty");
        assert!(lines[2].contains("20.0"));
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", &["Data Type", "Instruction"]);
        t.push_row(vec!["Float".into(), sci(3.153e10)]);
        let txt = t.render();
        assert!(txt.contains("Float"));
        assert!(txt.contains("3.153e10"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn wrong_arity_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn sci_formats_like_the_paper() {
        assert_eq!(sci(3.153e10), "3.153e10");
        assert_eq!(sci(7.867e7), "7.867e7");
        assert_eq!(sci(0.0), "0");
    }
}
