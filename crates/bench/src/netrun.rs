//! Multi-process distributed heat1d over real TCP parcelports
//! (`repro heat1d-net`).
//!
//! The parent binds a rendezvous listener, spawns one worker *process*
//! per rank (re-invoking the `repro` binary with the hidden
//! `heat1d-net-worker` argv), and plays address book: each worker binds
//! its own [`TcpParcelport`], reports `HELLO <rank> <addr>`, and receives
//! the full `PEERS` list back. Workers then connect to their stencil
//! neighbours and run the block-partitioned 1D heat equation, every halo
//! crossing a real loopback socket as a framed parcel. The parent
//! reassembles the field, checks it against the in-process [`Cluster`]
//! solver on the same parameters, and appends a loopback coalescing
//! benchmark (same parcel stream with coalescing on vs off) for
//! `BENCH_net.json`.

use parallex::agas::Gid;
use parallex::locality::Cluster;
use parallex::parcel::tcp::{TcpConfig, TcpParcelport};
use parallex::parcel::{serialize, Parcel, Parcelport, PortEvent, PortSink};
use parallex_stencil::heat1d::{install, Heat1dParams, Heat1dSolver, Side, HALO_PUSH};
use parallex_stencil::verify::max_abs_diff;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Experiment parameters shared by the parent and the in-process
/// reference run.
const RANKS: u32 = 3;
const POINTS: usize = 96;
const STEPS: u64 = 40;
const R: f64 = 0.25;

/// Initial temperature field; both the workers and the reference solver
/// must call this exact function.
fn net_init(i: usize) -> f64 {
    if (20..30).contains(&i) {
        1.0
    } else {
        0.0
    }
}

/// What `heat1d_net` hands back to the `repro` sink.
pub struct NetRunReport {
    /// Human-readable experiment summary.
    pub summary: String,
    /// Machine-readable `BENCH_net.json` body.
    pub bench_json: String,
}

// ---------------------------------------------------------------------------
// worker side
// ---------------------------------------------------------------------------

/// Entry point of a worker process (hidden `heat1d-net-worker` argv of
/// the `repro` binary). `args` is `[rank, ranks, points, steps, r, addr]`.
///
/// # Panics
/// Panics on malformed arguments or any rendezvous/transport failure —
/// the parent surfaces the non-zero exit status.
pub fn run_worker(args: &[String]) {
    assert_eq!(args.len(), 6, "worker args: rank ranks points steps r rendezvous_addr");
    let rank: u32 = args[0].parse().expect("rank");
    let ranks: u32 = args[1].parse().expect("ranks");
    let points: usize = args[2].parse().expect("points");
    let steps: u64 = args[3].parse().expect("steps");
    let r: f64 = args[4].parse().expect("r");
    let rendezvous: SocketAddr = args[5].parse().expect("rendezvous addr");

    let mut ctrl = TcpStream::connect(rendezvous).expect("connect to rendezvous");
    let (tx, rx) = mpsc::channel::<PortEvent>();
    let sink: PortSink = Arc::new(move |ev| {
        let _ = tx.send(ev);
    });
    let port = TcpParcelport::bind(
        rank,
        "127.0.0.1:0".parse().expect("loopback"),
        sink,
        TcpConfig::default(),
    )
    .expect("bind worker parcelport");

    writeln!(ctrl, "HELLO {rank} {}", port.local_addr()).expect("send hello");
    let mut lines = BufReader::new(ctrl.try_clone().expect("clone rendezvous stream"));
    let mut line = String::new();
    lines.read_line(&mut line).expect("read peer list");
    let mut toks = line.split_whitespace();
    assert_eq!(toks.next(), Some("PEERS"), "unexpected rendezvous reply: {line:?}");
    let addrs: Vec<SocketAddr> =
        toks.map(|t| t.parse().expect("peer addr")).collect();
    assert_eq!(addrs.len(), ranks as usize, "peer list covers every rank");

    // Stencil neighbours are the only peers this rank ever talks to.
    if rank > 0 {
        port.connect_peer(rank - 1, addrs[rank as usize - 1]).expect("connect left");
    }
    if rank + 1 < ranks {
        port.connect_peer(rank + 1, addrs[rank as usize + 1]).expect("connect right");
    }

    let range = parallex::topology::block_ranges(points, ranks as usize)[rank as usize].clone();
    let field = step_partition(&port, &rx, rank, ranks, range, steps, r);

    // RESULT header, then the block as raw little-endian f64s.
    writeln!(
        ctrl,
        "RESULT {rank} {} {} {} {}",
        field.len(),
        port.parcels_sent(),
        port.writes(),
        port.bytes_sent(),
    )
    .expect("send result header");
    let mut raw = Vec::with_capacity(field.len() * 8);
    for v in &field {
        raw.extend_from_slice(&v.to_le_bytes());
    }
    ctrl.write_all(&raw).expect("send result payload");
    ctrl.flush().expect("flush result");
    port.shutdown();
}

/// The worker's serial time-stepping loop: identical arithmetic, in
/// identical order, to the serial path of the in-process solver — so the
/// assembled field must match it bitwise. Halos go out through `port`
/// and come back through `rx`.
fn step_partition(
    port: &TcpParcelport,
    rx: &mpsc::Receiver<PortEvent>,
    rank: u32,
    ranks: u32,
    range: std::ops::Range<usize>,
    steps: u64,
    r: f64,
) -> Vec<f64> {
    let n = range.len();
    if n == 0 {
        return Vec::new();
    }
    let send_halo = |dest: u32, side: Side, step: u64, value: f64| {
        let payload = serialize::to_bytes(&(side, step, value)).expect("serialize halo");
        port.send(Parcel {
            source: rank,
            dest_locality: dest,
            dest: Gid { origin: dest, lid: 0 },
            action: HALO_PUSH,
            payload: bytes::Bytes::from(payload),
            response_token: None,
        })
        .unwrap_or_else(|e| panic!("rank {rank}: halo to {dest} failed: {e}"));
    };

    // u[1..=n] are this block's cells; u[0] / u[n+1] are halo slots.
    let mut u: Vec<f64> = std::iter::once(0.0)
        .chain(range.map(net_init))
        .chain(std::iter::once(0.0))
        .collect();
    let mut next = vec![0.0f64; n + 2];
    let mut inbox: HashMap<(Side, u64), f64> = HashMap::new();

    for t in 0..steps {
        // (1) Ship boundary cells; they travel while we do the interior.
        if rank > 0 {
            send_halo(rank - 1, Side::Right, t, u[1]);
        }
        if rank + 1 < ranks {
            send_halo(rank + 1, Side::Left, t, u[n]);
        }
        // (2) Interior cells need no halo.
        for x in 2..n {
            next[x] = u[x] + r * (u[x - 1] - 2.0 * u[x] + u[x + 1]);
        }
        // (3) Resolve halos (fixed 0.0 boundary outside the domain ends)
        // and finish the edge cells.
        u[0] = if rank > 0 { recv_halo(rx, &mut inbox, rank, Side::Left, t) } else { 0.0 };
        u[n + 1] =
            if rank + 1 < ranks { recv_halo(rx, &mut inbox, rank, Side::Right, t) } else { 0.0 };
        next[1] = u[1] + r * (u[0] - 2.0 * u[1] + u[2]);
        if n > 1 {
            next[n] = u[n] + r * (u[n - 1] - 2.0 * u[n] + u[n + 1]);
        }
        std::mem::swap(&mut u, &mut next);
    }
    u[1..=n].to_vec()
}

/// Block until the halo for `(side, step)` is in hand, buffering any
/// halos that arrive early (a fast neighbour can run a step ahead).
fn recv_halo(
    rx: &mpsc::Receiver<PortEvent>,
    inbox: &mut HashMap<(Side, u64), f64>,
    rank: u32,
    side: Side,
    step: u64,
) -> f64 {
    loop {
        if let Some(v) = inbox.remove(&(side, step)) {
            return v;
        }
        match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(PortEvent::Deliver(p)) => {
                assert_eq!(p.action, HALO_PUSH, "only halos cross the wire here");
                let (got_side, got_step, v): (Side, u64, f64) =
                    serialize::from_bytes(&p.payload).expect("decode halo payload");
                inbox.insert((got_side, got_step), v);
            }
            Ok(PortEvent::PeerLost(peer)) => {
                panic!("rank {rank}: lost peer {peer} while waiting for {side:?} step {step}")
            }
            Err(e) => panic!("rank {rank}: no halo for {side:?} step {step}: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// parent side
// ---------------------------------------------------------------------------

/// Run the multi-process experiment: spawn the workers, reassemble the
/// field, validate against the in-process cluster, then benchmark
/// coalescing on a loopback port pair.
///
/// # Panics
/// Panics if a worker fails, the rendezvous protocol is violated, or the
/// distributed field diverges from the in-process solver.
pub fn heat1d_net() -> NetRunReport {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind rendezvous listener");
    let rendezvous = listener.local_addr().expect("rendezvous addr");
    let exe = std::env::current_exe().expect("own binary path");

    let mut children: Vec<std::process::Child> = (0..RANKS)
        .map(|rank| {
            std::process::Command::new(&exe)
                .arg("heat1d-net-worker")
                .arg(rank.to_string())
                .arg(RANKS.to_string())
                .arg(POINTS.to_string())
                .arg(STEPS.to_string())
                .arg(R.to_string())
                .arg(rendezvous.to_string())
                .spawn()
                .expect("spawn worker process")
        })
        .collect();

    // Collect HELLOs (workers connect in arbitrary order).
    let mut conns: Vec<Option<(BufReader<TcpStream>, TcpStream)>> =
        (0..RANKS).map(|_| None).collect();
    let mut addrs: Vec<String> = vec![String::new(); RANKS as usize];
    for _ in 0..RANKS {
        let (stream, _) = listener.accept().expect("worker connects to rendezvous");
        let mut rd = BufReader::new(stream.try_clone().expect("clone worker stream"));
        let mut line = String::new();
        rd.read_line(&mut line).expect("read hello");
        let mut toks = line.split_whitespace();
        assert_eq!(toks.next(), Some("HELLO"), "unexpected worker greeting: {line:?}");
        let rank: usize = toks.next().expect("hello rank").parse().expect("hello rank");
        addrs[rank] = toks.next().expect("hello addr").to_string();
        assert!(conns[rank].is_none(), "rank {rank} said hello twice");
        conns[rank] = Some((rd, stream));
    }

    // Broadcast the address book; workers connect to neighbours and run.
    let peers_line = format!("PEERS {}\n", addrs.join(" "));
    for conn in conns.iter_mut().flatten() {
        conn.1.write_all(peers_line.as_bytes()).expect("send peer list");
    }

    // Gather per-rank results.
    let mut field = Vec::with_capacity(POINTS);
    let (mut wire_parcels, mut wire_writes, mut wire_bytes) = (0u64, 0u64, 0u64);
    for (rank, conn) in conns.iter_mut().enumerate() {
        let (rd, _) = conn.as_mut().expect("every rank connected");
        let mut line = String::new();
        rd.read_line(&mut line).expect("read result header");
        let mut toks = line.split_whitespace();
        assert_eq!(toks.next(), Some("RESULT"), "unexpected worker result: {line:?}");
        let got_rank: usize = toks.next().expect("rank").parse().expect("rank");
        assert_eq!(got_rank, rank);
        let len: usize = toks.next().expect("len").parse().expect("len");
        wire_parcels += toks.next().expect("parcels").parse::<u64>().expect("parcels");
        wire_writes += toks.next().expect("writes").parse::<u64>().expect("writes");
        wire_bytes += toks.next().expect("bytes").parse::<u64>().expect("bytes");
        let mut raw = vec![0u8; len * 8];
        rd.read_exact(&mut raw).expect("read result payload");
        for chunk in raw.chunks_exact(8) {
            field.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
    }
    for (rank, child) in children.iter_mut().enumerate() {
        let status = child.wait().expect("wait for worker");
        assert!(status.success(), "worker rank {rank} exited with {status}");
    }
    assert_eq!(field.len(), POINTS, "reassembled field covers the domain");

    // In-process reference: the same solve on a shared-memory Cluster.
    let cluster = Cluster::new(RANKS as usize, 2);
    install(&cluster);
    let solver = Heat1dSolver::new(&cluster, Heat1dParams::new(POINTS, STEPS as usize, R));
    let want = solver.run(net_init);
    cluster.shutdown();
    let diff = max_abs_diff(&field, &want);
    assert!(
        diff < 1e-12,
        "multi-process field diverged from in-process cluster: max abs diff {diff:e}"
    );

    let coalesced = coalescing_run(TcpConfig::default());
    let uncoalesced = coalescing_run(TcpConfig::uncoalesced());

    let summary = format!(
        "== heat1d-net: {RANKS} OS processes over TCP loopback ==\n\
         domain {POINTS} points, {STEPS} steps, r = {R}\n\
         max abs diff vs in-process Cluster: {diff:e}\n\
         wire: {wire_parcels} parcels in {wire_writes} writes ({wire_bytes} bytes)\n\
         \n\
         == parcel coalescing on a loopback port pair ==\n\
         {} parcels of {} payload bytes each\n\
         coalesced:   {:>6} writes ({:.3} writes/parcel), {:>9.0} parcels/s\n\
         uncoalesced: {:>6} writes ({:.3} writes/parcel), {:>9.0} parcels/s\n",
        COALESCE_PARCELS,
        COALESCE_PAYLOAD,
        coalesced.writes,
        coalesced.writes_per_parcel(),
        coalesced.parcels_per_sec(),
        uncoalesced.writes,
        uncoalesced.writes_per_parcel(),
        uncoalesced.parcels_per_sec(),
    );
    let bench_json = format!(
        "{{\n  \"experiment\": \"heat1d-net\",\n  \"ranks\": {RANKS},\n  \"points\": {POINTS},\n  \
         \"steps\": {STEPS},\n  \"max_abs_diff\": {diff:e},\n  \
         \"wire\": {{ \"parcels\": {wire_parcels}, \"writes\": {wire_writes}, \"bytes\": {wire_bytes} }},\n  \
         \"coalescing\": {{\n    \"parcels\": {COALESCE_PARCELS},\n    \"payload_bytes\": {COALESCE_PAYLOAD},\n    \
         \"coalesced\": {},\n    \"uncoalesced\": {}\n  }}\n}}\n",
        coalesced.json(),
        uncoalesced.json(),
    );
    NetRunReport { summary, bench_json }
}

// ---------------------------------------------------------------------------
// coalescing benchmark
// ---------------------------------------------------------------------------

const COALESCE_PARCELS: u64 = 4000;
const COALESCE_PAYLOAD: usize = 32;

struct CoalesceStats {
    writes: u64,
    bytes: u64,
    elapsed: Duration,
}

impl CoalesceStats {
    fn writes_per_parcel(&self) -> f64 {
        self.writes as f64 / COALESCE_PARCELS as f64
    }

    fn parcels_per_sec(&self) -> f64 {
        COALESCE_PARCELS as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            "{{ \"writes\": {}, \"bytes\": {}, \"elapsed_us\": {}, \
             \"writes_per_parcel\": {:.4}, \"parcels_per_sec\": {:.0} }}",
            self.writes,
            self.bytes,
            self.elapsed.as_micros(),
            self.writes_per_parcel(),
            self.parcels_per_sec(),
        )
    }
}

/// Push a stream of small parcels through a loopback port pair under
/// `cfg` and count the physical writes it took.
fn coalescing_run(cfg: TcpConfig) -> CoalesceStats {
    let received = Arc::new(AtomicU64::new(0));
    let received2 = received.clone();
    let sink_b: PortSink = Arc::new(move |ev| {
        if matches!(ev, PortEvent::Deliver(_)) {
            received2.fetch_add(1, Ordering::Relaxed);
        }
    });
    let sink_a: PortSink = Arc::new(|_| {});
    let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
    let a = TcpParcelport::bind(0, loopback, sink_a, cfg.clone()).expect("bind sender port");
    let b = TcpParcelport::bind(1, loopback, sink_b, cfg).expect("bind receiver port");
    a.connect_peer(1, b.local_addr()).expect("connect loopback pair");

    let payload = bytes::Bytes::from(vec![0x5a_u8; COALESCE_PAYLOAD]);
    let t0 = Instant::now();
    for _ in 0..COALESCE_PARCELS {
        a.send(Parcel {
            source: 0,
            dest_locality: 1,
            dest: Gid { origin: 1, lid: 0 },
            action: 7,
            payload: payload.clone(),
            response_token: None,
        })
        .expect("bench send");
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while received.load(Ordering::Relaxed) < COALESCE_PARCELS {
        assert!(Instant::now() < deadline, "bench parcels did not all arrive");
        std::thread::sleep(Duration::from_millis(1));
    }
    let elapsed = t0.elapsed();
    let stats = CoalesceStats { writes: a.writes(), bytes: a.bytes_sent(), elapsed };
    a.shutdown();
    b.shutdown();
    stats
}
