//! Multi-process distributed heat1d over real TCP parcelports
//! (`repro heat1d-net`), with an optional chaos mode
//! (`repro heat1d-net --chaos [spec]`).
//!
//! The parent binds a rendezvous listener, spawns one worker *process*
//! per rank (re-invoking the `repro` binary with the hidden
//! `heat1d-net-worker` argv), and plays address book: each worker binds
//! its own [`TcpParcelport`], reports `HELLO <rank> <addr>`, and receives
//! the full `PEERS` list back. Workers then connect to their stencil
//! neighbours and run the block-partitioned 1D heat equation, every halo
//! crossing a real loopback socket as a framed parcel. The parent
//! reassembles the field, checks it against the in-process [`Cluster`]
//! solver on the same parameters, and appends a loopback coalescing
//! benchmark (same parcel stream with coalescing on vs off) for
//! `BENCH_net.json`.
//!
//! In chaos mode each worker stacks the resilience chain on the raw
//! transport — TCP at the bottom, a seeded [`FaultyParcelport`] in the
//! middle, [`ReliableParcelport`] on top — and wraps each step's compute
//! in [`replay_sync`] with [`FaultPlan::panic_steps`]-scheduled task
//! panics. Despite injected drops, duplicates, delays, bit-corruption
//! and panics, the reassembled field must be **bitwise identical** to
//! the fault-free in-process solve; `BENCH_resilience.json` additionally
//! records the fault-free overhead of the reliable layer on the
//! coalescing benchmark.

use parallex::agas::Gid;
use parallex::locality::Cluster;
use parallex::parcel::tcp::{TcpConfig, TcpParcelport};
use parallex::parcel::{serialize, Parcel, Parcelport, PortEvent, PortSink};
use parallex::resilience::{
    replay_sync, ChaosSpec, FaultPlan, FaultyParcelport, ReliableConfig, ReliableParcelport,
};
use parallex_stencil::heat1d::{install, Heat1dParams, Heat1dSolver, Side, HALO_PUSH};
use parallex_stencil::verify::max_abs_diff;
use std::collections::{BTreeSet, HashMap};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Experiment parameters shared by the parent and the in-process
/// reference run.
const RANKS: u32 = 3;
const POINTS: usize = 96;
const STEPS: u64 = 40;
const R: f64 = 0.25;

/// Initial temperature field; both the workers and the reference solver
/// must call this exact function.
fn net_init(i: usize) -> f64 {
    if (20..30).contains(&i) {
        1.0
    } else {
        0.0
    }
}

/// What `heat1d_net` hands back to the `repro` sink.
pub struct NetRunReport {
    /// Human-readable experiment summary.
    pub summary: String,
    /// Machine-readable `BENCH_net.json` body.
    pub bench_json: String,
    /// Machine-readable `BENCH_resilience.json` body (chaos mode only).
    pub resilience_json: Option<String>,
}

// ---------------------------------------------------------------------------
// worker side
// ---------------------------------------------------------------------------

/// Per-rank wire and fault statistics a worker reports in its `RESULT`
/// header (all zero on the raw transport).
#[derive(Clone, Copy, Default)]
struct WorkerStats {
    parcels: u64,
    writes: u64,
    bytes: u64,
    retransmits: u64,
    dup_drops: u64,
    corrupt_drops: u64,
    inj_drops: u64,
    inj_dups: u64,
    inj_delays: u64,
    inj_corrupts: u64,
    task_panics: u64,
}

impl WorkerStats {
    fn add(&mut self, o: &WorkerStats) {
        self.parcels += o.parcels;
        self.writes += o.writes;
        self.bytes += o.bytes;
        self.retransmits += o.retransmits;
        self.dup_drops += o.dup_drops;
        self.corrupt_drops += o.corrupt_drops;
        self.inj_drops += o.inj_drops;
        self.inj_dups += o.inj_dups;
        self.inj_delays += o.inj_delays;
        self.inj_corrupts += o.inj_corrupts;
        self.task_panics += o.task_panics;
    }
}

/// Entry point of a worker process (hidden `heat1d-net-worker` argv of
/// the `repro` binary). `args` is
/// `[rank, ranks, points, steps, r, addr, chaos]` where `chaos` is a
/// [`ChaosSpec`] string or `-` for the raw transport (and may be omitted
/// entirely for backwards compatibility).
///
/// # Panics
/// Panics on malformed arguments or any rendezvous/transport failure —
/// the parent surfaces the non-zero exit status.
pub fn run_worker(args: &[String]) {
    assert!(
        args.len() == 6 || args.len() == 7,
        "worker args: rank ranks points steps r rendezvous_addr [chaos]"
    );
    let rank: u32 = args[0].parse().expect("rank");
    let ranks: u32 = args[1].parse().expect("ranks");
    let points: usize = args[2].parse().expect("points");
    let steps: u64 = args[3].parse().expect("steps");
    let r: f64 = args[4].parse().expect("r");
    let rendezvous: SocketAddr = args[5].parse().expect("rendezvous addr");
    let chaos: Option<ChaosSpec> = match args.get(6).map(String::as_str) {
        None | Some("-") => None,
        Some(s) => Some(ChaosSpec::parse(s).expect("chaos spec")),
    };

    let mut ctrl = TcpStream::connect(rendezvous).expect("connect to rendezvous");
    let (tx, rx) = mpsc::channel::<PortEvent>();
    let sink: PortSink = Arc::new(move |ev| {
        let _ = tx.send(ev);
    });

    // Transport: raw TCP, or — in chaos mode — the resilience chain
    // TCP → FaultyParcelport → ReliableParcelport (the same stack
    // `Cluster::attach_tcp_resilient` wires in-process).
    let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
    type WorkerPorts = (
        Arc<dyn Parcelport>,
        Arc<TcpParcelport>,
        Option<Arc<ReliableParcelport>>,
        Option<Arc<FaultyParcelport>>,
    );
    let (send_port, tcp, rel, faulty): WorkerPorts = match &chaos {
        None => {
            let tcp = TcpParcelport::bind(rank, loopback, sink, TcpConfig::default())
                .expect("bind worker parcelport");
            (tcp.clone(), tcp, None, None)
        }
        Some(spec) => {
            let rel = ReliableParcelport::new(rank, ReliableConfig::default(), sink);
            let tcp =
                TcpParcelport::bind(rank, loopback, rel.inbound_sink(), TcpConfig::default())
                    .expect("bind worker parcelport");
            let plan = Arc::new(FaultPlan::for_stream(spec.clone(), rank as u64));
            let faulty = FaultyParcelport::new(tcp.clone(), plan, Some(rel.inbound_sink()));
            rel.attach_inner(faulty.clone());
            (rel.clone(), tcp, Some(rel), Some(faulty))
        }
    };
    // Injected task panics: deterministic step indices from the seed.
    let panic_steps: BTreeSet<u64> = chaos
        .as_ref()
        .map(|spec| FaultPlan::for_stream(spec.clone(), rank as u64).panic_steps(steps))
        .unwrap_or_default();

    writeln!(ctrl, "HELLO {rank} {}", tcp.local_addr()).expect("send hello");
    let mut lines = BufReader::new(ctrl.try_clone().expect("clone rendezvous stream"));
    let mut line = String::new();
    lines.read_line(&mut line).expect("read peer list");
    let mut toks = line.split_whitespace();
    assert_eq!(toks.next(), Some("PEERS"), "unexpected rendezvous reply: {line:?}");
    let addrs: Vec<SocketAddr> =
        toks.map(|t| t.parse().expect("peer addr")).collect();
    assert_eq!(addrs.len(), ranks as usize, "peer list covers every rank");

    // Stencil neighbours are the only peers this rank ever talks to.
    if rank > 0 {
        tcp.connect_peer(rank - 1, addrs[rank as usize - 1]).expect("connect left");
    }
    if rank + 1 < ranks {
        tcp.connect_peer(rank + 1, addrs[rank as usize + 1]).expect("connect right");
    }

    let range = parallex::topology::block_ranges(points, ranks as usize)[rank as usize].clone();
    let t0 = Instant::now();
    let (field, task_panics) =
        step_partition(&*send_port, &rx, rank, ranks, range, steps, r, &panic_steps);
    let elapsed_us = t0.elapsed().as_micros() as u64;

    // Under chaos, the final halos shipped to the neighbours may still be
    // unacknowledged (or dropped, awaiting retransmit). Drain before
    // reporting: a neighbour that has not yet received them is still
    // stepping and therefore still alive to ack them.
    if let Some(rel) = &rel {
        let deadline = Instant::now() + Duration::from_secs(30);
        while rel.unacked() > 0 || send_port.pending() > 0 {
            assert!(Instant::now() < deadline, "rank {rank}: unacked halos failed to drain");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let stats = WorkerStats {
        parcels: tcp.parcels_sent(),
        writes: tcp.writes(),
        bytes: tcp.bytes_sent(),
        retransmits: rel.as_ref().map_or(0, |p| p.retransmits()),
        dup_drops: rel.as_ref().map_or(0, |p| p.dup_drops()),
        corrupt_drops: rel.as_ref().map_or(0, |p| p.corrupt_drops()),
        inj_drops: faulty.as_ref().map_or(0, |p| p.injected_drops()),
        inj_dups: faulty.as_ref().map_or(0, |p| p.injected_dups()),
        inj_delays: faulty.as_ref().map_or(0, |p| p.injected_delays()),
        inj_corrupts: faulty.as_ref().map_or(0, |p| p.injected_corrupts()),
        task_panics,
    };
    // RESULT header, then the block as raw little-endian f64s.
    writeln!(
        ctrl,
        "RESULT {rank} {} {elapsed_us} {} {} {} {} {} {} {} {} {} {} {}",
        field.len(),
        stats.parcels,
        stats.writes,
        stats.bytes,
        stats.retransmits,
        stats.dup_drops,
        stats.corrupt_drops,
        stats.inj_drops,
        stats.inj_dups,
        stats.inj_delays,
        stats.inj_corrupts,
        stats.task_panics,
    )
    .expect("send result header");
    let mut raw = Vec::with_capacity(field.len() * 8);
    for v in &field {
        raw.extend_from_slice(&v.to_le_bytes());
    }
    ctrl.write_all(&raw).expect("send result payload");
    ctrl.flush().expect("flush result");

    // Hold the transport open until every rank has reported: a peer may
    // still need our acks (or retransmits) for its own drain.
    line.clear();
    lines.read_line(&mut line).expect("read shutdown barrier");
    assert_eq!(line.trim(), "BYE", "unexpected shutdown barrier: {line:?}");
    send_port.shutdown();
}

/// The worker's serial time-stepping loop: identical arithmetic, in
/// identical order, to the serial path of the in-process solver — so the
/// assembled field must match it bitwise. Halos go out through `port`
/// and come back through `rx`. Steps listed in `panic_steps` panic on
/// their first compute attempt and are healed by [`replay_sync`];
/// returns `(field, panics_injected)`.
#[allow(clippy::too_many_arguments)]
fn step_partition(
    port: &dyn Parcelport,
    rx: &mpsc::Receiver<PortEvent>,
    rank: u32,
    ranks: u32,
    range: std::ops::Range<usize>,
    steps: u64,
    r: f64,
    panic_steps: &BTreeSet<u64>,
) -> (Vec<f64>, u64) {
    let n = range.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    let send_halo = |dest: u32, side: Side, step: u64, value: f64| {
        let payload = serialize::to_bytes(&(side, step, value)).expect("serialize halo");
        port.send(Parcel {
            source: rank,
            dest_locality: dest,
            dest: Gid { origin: dest, lid: 0 },
            action: HALO_PUSH,
            payload: bytes::Bytes::from(payload),
            response_token: None,
        })
        .unwrap_or_else(|e| panic!("rank {rank}: halo to {dest} failed: {e}"));
    };

    // u[1..=n] are this block's cells; u[0] / u[n+1] are halo slots.
    let mut u: Vec<f64> = std::iter::once(0.0)
        .chain(range.map(net_init))
        .chain(std::iter::once(0.0))
        .collect();
    let mut next = vec![0.0f64; n + 2];
    let mut inbox: HashMap<(Side, u64), f64> = HashMap::new();
    let mut panics_injected = 0u64;

    for t in 0..steps {
        // (1) Ship boundary cells; they travel while we do the interior.
        if rank > 0 {
            send_halo(rank - 1, Side::Right, t, u[1]);
        }
        if rank + 1 < ranks {
            send_halo(rank + 1, Side::Left, t, u[n]);
        }
        // (2) Interior cells need no halo. The compute is pure in `u`,
        // so an injected panic mid-write leaves `next` repairable and a
        // replay recomputes the identical values.
        let mut attempt = 0u32;
        replay_sync(3, || {
            attempt += 1;
            if attempt == 1 && panic_steps.contains(&t) {
                panics_injected += 1;
                panic!("injected chaos panic at step {t}");
            }
            for x in 2..n {
                next[x] = u[x] + r * (u[x - 1] - 2.0 * u[x] + u[x + 1]);
            }
        })
        .unwrap_or_else(|e| panic!("rank {rank}: step {t} compute failed replay: {e}"));
        // (3) Resolve halos (fixed 0.0 boundary outside the domain ends)
        // and finish the edge cells.
        u[0] = if rank > 0 { recv_halo(rx, &mut inbox, rank, Side::Left, t) } else { 0.0 };
        u[n + 1] =
            if rank + 1 < ranks { recv_halo(rx, &mut inbox, rank, Side::Right, t) } else { 0.0 };
        next[1] = u[1] + r * (u[0] - 2.0 * u[1] + u[2]);
        if n > 1 {
            next[n] = u[n] + r * (u[n - 1] - 2.0 * u[n] + u[n + 1]);
        }
        std::mem::swap(&mut u, &mut next);
    }
    (u[1..=n].to_vec(), panics_injected)
}

/// Block until the halo for `(side, step)` is in hand, buffering any
/// halos that arrive early (a fast neighbour can run a step ahead).
fn recv_halo(
    rx: &mpsc::Receiver<PortEvent>,
    inbox: &mut HashMap<(Side, u64), f64>,
    rank: u32,
    side: Side,
    step: u64,
) -> f64 {
    loop {
        if let Some(v) = inbox.remove(&(side, step)) {
            return v;
        }
        match rx.recv_timeout(Duration::from_secs(30)) {
            Ok(PortEvent::Deliver(p)) => {
                assert_eq!(p.action, HALO_PUSH, "only halos cross the wire here");
                let (got_side, got_step, v): (Side, u64, f64) =
                    serialize::from_bytes(&p.payload).expect("decode halo payload");
                inbox.insert((got_side, got_step), v);
            }
            Ok(PortEvent::PeerLost(peer)) => {
                panic!("rank {rank}: lost peer {peer} while waiting for {side:?} step {step}")
            }
            Err(e) => panic!("rank {rank}: no halo for {side:?} step {step}: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// parent side
// ---------------------------------------------------------------------------

/// One completed distributed run: the reassembled field, cluster-wide
/// wire/fault totals, and the slowest rank's step-loop time.
struct DistRun {
    field: Vec<f64>,
    totals: WorkerStats,
    makespan_us: u64,
}

/// Spawn one worker process per rank with the given chaos argv (`-` =
/// raw transport), play rendezvous, and gather the results.
fn run_distributed(chaos_arg: &str) -> DistRun {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind rendezvous listener");
    let rendezvous = listener.local_addr().expect("rendezvous addr");
    let exe = std::env::current_exe().expect("own binary path");

    let mut children: Vec<std::process::Child> = (0..RANKS)
        .map(|rank| {
            std::process::Command::new(&exe)
                .arg("heat1d-net-worker")
                .arg(rank.to_string())
                .arg(RANKS.to_string())
                .arg(POINTS.to_string())
                .arg(STEPS.to_string())
                .arg(R.to_string())
                .arg(rendezvous.to_string())
                .arg(chaos_arg)
                .spawn()
                .expect("spawn worker process")
        })
        .collect();

    // Collect HELLOs (workers connect in arbitrary order).
    let mut conns: Vec<Option<(BufReader<TcpStream>, TcpStream)>> =
        (0..RANKS).map(|_| None).collect();
    let mut addrs: Vec<String> = vec![String::new(); RANKS as usize];
    for _ in 0..RANKS {
        let (stream, _) = listener.accept().expect("worker connects to rendezvous");
        let mut rd = BufReader::new(stream.try_clone().expect("clone worker stream"));
        let mut line = String::new();
        rd.read_line(&mut line).expect("read hello");
        let mut toks = line.split_whitespace();
        assert_eq!(toks.next(), Some("HELLO"), "unexpected worker greeting: {line:?}");
        let rank: usize = toks.next().expect("hello rank").parse().expect("hello rank");
        addrs[rank] = toks.next().expect("hello addr").to_string();
        assert!(conns[rank].is_none(), "rank {rank} said hello twice");
        conns[rank] = Some((rd, stream));
    }

    // Broadcast the address book; workers connect to neighbours and run.
    let peers_line = format!("PEERS {}\n", addrs.join(" "));
    for conn in conns.iter_mut().flatten() {
        conn.1.write_all(peers_line.as_bytes()).expect("send peer list");
    }

    // Gather per-rank results.
    let mut field = Vec::with_capacity(POINTS);
    let mut totals = WorkerStats::default();
    let mut makespan_us = 0u64;
    for (rank, conn) in conns.iter_mut().enumerate() {
        let (rd, _) = conn.as_mut().expect("every rank connected");
        let mut line = String::new();
        rd.read_line(&mut line).expect("read result header");
        let mut toks = line.split_whitespace();
        assert_eq!(toks.next(), Some("RESULT"), "unexpected worker result: {line:?}");
        let got_rank: usize = toks.next().expect("rank").parse().expect("rank");
        assert_eq!(got_rank, rank);
        let len: usize = toks.next().expect("len").parse().expect("len");
        let mut stat = || -> u64 { toks.next().expect("stat").parse().expect("stat") };
        makespan_us = makespan_us.max(stat());
        totals.add(&WorkerStats {
            parcels: stat(),
            writes: stat(),
            bytes: stat(),
            retransmits: stat(),
            dup_drops: stat(),
            corrupt_drops: stat(),
            inj_drops: stat(),
            inj_dups: stat(),
            inj_delays: stat(),
            inj_corrupts: stat(),
            task_panics: stat(),
        });
        let mut raw = vec![0u8; len * 8];
        rd.read_exact(&mut raw).expect("read result payload");
        for chunk in raw.chunks_exact(8) {
            field.push(f64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
    }
    // Shutdown barrier: only once every rank has drained and reported is
    // it safe for any of them to tear down its transport.
    for conn in conns.iter_mut().flatten() {
        conn.1.write_all(b"BYE\n").expect("send shutdown barrier");
    }
    for (rank, child) in children.iter_mut().enumerate() {
        let status = child.wait().expect("wait for worker");
        assert!(status.success(), "worker rank {rank} exited with {status}");
    }
    assert_eq!(field.len(), POINTS, "reassembled field covers the domain");
    DistRun { field, totals, makespan_us }
}

/// Run the multi-process experiment: spawn the workers, reassemble the
/// field, validate against the in-process cluster, then benchmark
/// coalescing on a loopback port pair. `chaos` is a [`ChaosSpec`] string
/// (`Some("")` selects [`ChaosSpec::pinned`]); in chaos mode the field
/// must be **bitwise identical** to the fault-free reference and the
/// report additionally carries `BENCH_resilience.json` with the
/// fault-free overhead of the reliable layer (solve makespan with the
/// resilient stack, zero fault probabilities, vs the raw transport).
///
/// # Panics
/// Panics if a worker fails, the rendezvous protocol is violated, or the
/// distributed field diverges from the in-process solver.
pub fn heat1d_net(chaos: Option<&str>) -> NetRunReport {
    let chaos_spec: Option<ChaosSpec> = chaos.map(|s| {
        if s.trim().is_empty() {
            ChaosSpec::pinned()
        } else {
            ChaosSpec::parse(s).expect("chaos spec")
        }
    });
    let chaos_arg = chaos_spec.as_ref().map_or_else(|| "-".to_string(), ChaosSpec::render);
    let DistRun { field, totals, makespan_us } = run_distributed(&chaos_arg);

    // In-process reference: the same solve on a shared-memory Cluster.
    let cluster = Cluster::new(RANKS as usize, 2);
    install(&cluster);
    let solver = Heat1dSolver::new(&cluster, Heat1dParams::new(POINTS, STEPS as usize, R));
    let want = solver.run(net_init);
    cluster.shutdown();
    let diff = max_abs_diff(&field, &want);
    assert!(
        diff < 1e-12,
        "multi-process field diverged from in-process cluster: max abs diff {diff:e}"
    );
    let bitwise = field.len() == want.len()
        && field.iter().zip(&want).all(|(a, b)| a.to_bits() == b.to_bits());
    if chaos_spec.is_some() {
        assert!(bitwise, "chaos run must be bitwise identical to the fault-free reference");
    }

    let coalesced = coalescing_run(TcpConfig::default());
    let uncoalesced = coalescing_run(TcpConfig::uncoalesced());

    let mut summary = format!(
        "== heat1d-net: {RANKS} OS processes over TCP loopback ==\n\
         domain {POINTS} points, {STEPS} steps, r = {R}\n\
         max abs diff vs in-process Cluster: {diff:e}\n\
         wire: {} parcels in {} writes ({} bytes)\n",
        totals.parcels, totals.writes, totals.bytes,
    );
    let mut resilience_json = None;
    if let Some(spec) = &chaos_spec {
        // Fault-free overhead of the reliable layer: the same
        // distributed solve through the resilient stack with every fault
        // probability zeroed, vs the raw transport. Best-of-3 makespans
        // damp process-scheduling noise; the cost left over is pure
        // sequence/ack/checksum machinery.
        let quiet = ChaosSpec { seed: spec.seed, ..ChaosSpec::default() };
        let quiet_arg = quiet.render();
        let raw_us =
            (0..3).map(|_| run_distributed("-").makespan_us).min().expect("3 raw runs");
        let quiet_us = (0..3)
            .map(|_| run_distributed(&quiet_arg).makespan_us)
            .min()
            .expect("3 quiet runs");
        let overhead_pct = 100.0 * (quiet_us as f64 - raw_us as f64) / (raw_us as f64).max(1.0);
        // Supplementary: the worst case for the layer — tiny parcels at
        // maximum rate through the coalescing stream.
        let reliable_stream = reliable_coalescing_run(TcpConfig::default());
        summary.push_str(&format!(
            "\n== chaos: {} ==\n\
             injected: {} drops, {} dups, {} delays, {} corrupts, {} task panics\n\
             recovered: {} retransmits, {} duplicate drops, {} corrupt drops\n\
             field bitwise identical to fault-free reference: {bitwise}\n\
             chaos solve makespan: {makespan_us} us\n\
             reliable layer fault-free overhead: {overhead_pct:.1}% \
             (solve makespan {quiet_us} us resilient vs {raw_us} us raw, best of 3)\n",
            spec.render(),
            totals.inj_drops,
            totals.inj_dups,
            totals.inj_delays,
            totals.inj_corrupts,
            totals.task_panics,
            totals.retransmits,
            totals.dup_drops,
            totals.corrupt_drops,
        ));
        resilience_json = Some(format!(
            "{{\n  \"experiment\": \"heat1d-net-chaos\",\n  \
             \"chaos\": \"{}\",\n  \"ranks\": {RANKS},\n  \"points\": {POINTS},\n  \
             \"steps\": {STEPS},\n  \"bitwise_identical\": {bitwise},\n  \
             \"faults_injected\": {{ \"drops\": {}, \"dups\": {}, \"delays\": {}, \
             \"corrupts\": {}, \"task_panics\": {} }},\n  \
             \"recovery\": {{ \"retransmits\": {}, \"dup_drops\": {}, \"corrupt_drops\": {} }},\n  \
             \"solve_makespan_us\": {{ \"chaos\": {makespan_us}, \"resilient_fault_free\": {quiet_us}, \
             \"raw\": {raw_us} }},\n  \
             \"fault_free_overhead_pct\": {overhead_pct:.2},\n  \
             \"reliable_coalescing_stream\": {{\n    \"raw\": {},\n    \"reliable\": {}\n  }}\n}}\n",
            spec.render(),
            totals.inj_drops,
            totals.inj_dups,
            totals.inj_delays,
            totals.inj_corrupts,
            totals.task_panics,
            totals.retransmits,
            totals.dup_drops,
            totals.corrupt_drops,
            coalesced.json(),
            reliable_stream.json(),
        ));
    }
    summary.push_str(&format!(
        "\n== parcel coalescing on a loopback port pair ==\n\
         {} parcels of {} payload bytes each\n\
         coalesced:   {:>6} writes ({:.3} writes/parcel), {:>9.0} parcels/s\n\
         uncoalesced: {:>6} writes ({:.3} writes/parcel), {:>9.0} parcels/s\n",
        COALESCE_PARCELS,
        COALESCE_PAYLOAD,
        coalesced.writes,
        coalesced.writes_per_parcel(),
        coalesced.parcels_per_sec(),
        uncoalesced.writes,
        uncoalesced.writes_per_parcel(),
        uncoalesced.parcels_per_sec(),
    ));
    let bench_json = format!(
        "{{\n  \"experiment\": \"heat1d-net\",\n  \"ranks\": {RANKS},\n  \"points\": {POINTS},\n  \
         \"steps\": {STEPS},\n  \"max_abs_diff\": {diff:e},\n  \
         \"wire\": {{ \"parcels\": {}, \"writes\": {}, \"bytes\": {} }},\n  \
         \"coalescing\": {{\n    \"parcels\": {COALESCE_PARCELS},\n    \"payload_bytes\": {COALESCE_PAYLOAD},\n    \
         \"coalesced\": {},\n    \"uncoalesced\": {}\n  }}\n}}\n",
        totals.parcels,
        totals.writes,
        totals.bytes,
        coalesced.json(),
        uncoalesced.json(),
    );
    NetRunReport { summary, bench_json, resilience_json }
}

// ---------------------------------------------------------------------------
// coalescing benchmark
// ---------------------------------------------------------------------------

const COALESCE_PARCELS: u64 = 4000;
const COALESCE_PAYLOAD: usize = 32;

struct CoalesceStats {
    writes: u64,
    bytes: u64,
    elapsed: Duration,
}

impl CoalesceStats {
    fn writes_per_parcel(&self) -> f64 {
        self.writes as f64 / COALESCE_PARCELS as f64
    }

    fn parcels_per_sec(&self) -> f64 {
        COALESCE_PARCELS as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn json(&self) -> String {
        format!(
            "{{ \"writes\": {}, \"bytes\": {}, \"elapsed_us\": {}, \
             \"writes_per_parcel\": {:.4}, \"parcels_per_sec\": {:.0} }}",
            self.writes,
            self.bytes,
            self.elapsed.as_micros(),
            self.writes_per_parcel(),
            self.parcels_per_sec(),
        )
    }
}

fn bench_parcel(payload: &bytes::Bytes) -> Parcel {
    Parcel {
        source: 0,
        dest_locality: 1,
        dest: Gid { origin: 1, lid: 0 },
        action: 7,
        payload: payload.clone(),
        response_token: None,
    }
}

fn await_count(received: &AtomicU64, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while received.load(Ordering::Relaxed) < want {
        assert!(Instant::now() < deadline, "bench parcels did not all arrive");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Push a stream of small parcels through a loopback port pair under
/// `cfg` and count the physical writes it took.
fn coalescing_run(cfg: TcpConfig) -> CoalesceStats {
    let received = Arc::new(AtomicU64::new(0));
    let received2 = received.clone();
    let sink_b: PortSink = Arc::new(move |ev| {
        if matches!(ev, PortEvent::Deliver(_)) {
            received2.fetch_add(1, Ordering::Relaxed);
        }
    });
    let sink_a: PortSink = Arc::new(|_| {});
    let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
    let a = TcpParcelport::bind(0, loopback, sink_a, cfg.clone()).expect("bind sender port");
    let b = TcpParcelport::bind(1, loopback, sink_b, cfg).expect("bind receiver port");
    a.connect_peer(1, b.local_addr()).expect("connect loopback pair");

    let payload = bytes::Bytes::from(vec![0x5a_u8; COALESCE_PAYLOAD]);
    let t0 = Instant::now();
    for _ in 0..COALESCE_PARCELS {
        a.send(bench_parcel(&payload)).expect("bench send");
    }
    await_count(&received, COALESCE_PARCELS);
    let elapsed = t0.elapsed();
    let stats = CoalesceStats { writes: a.writes(), bytes: a.bytes_sent(), elapsed };
    a.shutdown();
    b.shutdown();
    stats
}

/// The same stream through the reliable layer (no chaos): what sequence
/// numbers, acks and the retransmit timer cost when nothing goes wrong.
fn reliable_coalescing_run(cfg: TcpConfig) -> CoalesceStats {
    let received = Arc::new(AtomicU64::new(0));
    let received2 = received.clone();
    let sink_b: PortSink = Arc::new(move |ev| {
        if matches!(ev, PortEvent::Deliver(_)) {
            received2.fetch_add(1, Ordering::Relaxed);
        }
    });
    let sink_a: PortSink = Arc::new(|_| {});
    let rel_a = ReliableParcelport::new(0, ReliableConfig::default(), sink_a);
    let rel_b = ReliableParcelport::new(1, ReliableConfig::default(), sink_b);
    let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
    let a = TcpParcelport::bind(0, loopback, rel_a.inbound_sink(), cfg.clone())
        .expect("bind sender port");
    let b =
        TcpParcelport::bind(1, loopback, rel_b.inbound_sink(), cfg).expect("bind receiver port");
    a.connect_peer(1, b.local_addr()).expect("connect data path");
    b.connect_peer(0, a.local_addr()).expect("connect ack path");
    rel_a.attach_inner(a.clone());
    rel_b.attach_inner(b.clone());

    let payload = bytes::Bytes::from(vec![0x5a_u8; COALESCE_PAYLOAD]);
    let t0 = Instant::now();
    for _ in 0..COALESCE_PARCELS {
        rel_a.send(bench_parcel(&payload)).expect("bench send");
    }
    await_count(&received, COALESCE_PARCELS);
    let elapsed = t0.elapsed();
    let stats = CoalesceStats { writes: a.writes(), bytes: a.bytes_sent(), elapsed };
    rel_a.shutdown();
    rel_b.shutdown();
    stats
}
