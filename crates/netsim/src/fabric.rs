//! Flow-level link contention.
//!
//! A minimal fluid model: a link of bandwidth `B` shared by `k`
//! simultaneous flows gives each flow `B/k`. Used by the DES when several
//! localities exchange halos through one switch at the same instant, and
//! by ablation benches exploring how all-to-all patterns would behave.

use parallex_machine::cluster::NetworkSpec;

/// Tracks concurrent flows over one (logical) link.
#[derive(Clone, Debug)]
pub struct Fabric {
    net: NetworkSpec,
    active_flows: usize,
}

impl Fabric {
    /// A fabric with no active flows.
    pub fn new(net: NetworkSpec) -> Fabric {
        Fabric { net, active_flows: 0 }
    }

    /// The underlying spec.
    pub fn network(&self) -> &NetworkSpec {
        &self.net
    }

    /// Currently active flows.
    pub fn active_flows(&self) -> usize {
        self.active_flows
    }

    /// Open a flow (a transfer in progress).
    pub fn open_flow(&mut self) {
        self.active_flows += 1;
    }

    /// Close a flow.
    ///
    /// # Panics
    /// Panics if no flow is open.
    pub fn close_flow(&mut self) {
        assert!(self.active_flows > 0, "no open flows");
        self.active_flows -= 1;
    }

    /// Transfer time of `bytes` with the *current* contention level,
    /// microseconds (the caller's own flow counts, so 0 active flows and 1
    /// active flow are equivalent).
    pub fn transfer_time_us(&self, bytes: usize) -> f64 {
        let share = self.active_flows.max(1) as f64;
        self.net.latency_us + bytes as f64 * share / (self.net.bandwidth_gbs * 1e3)
    }

    /// Aggregate time for `flows` equal transfers of `bytes` starting
    /// together (they finish together under fair sharing).
    pub fn concurrent_transfer_us(&self, bytes: usize, flows: usize) -> f64 {
        assert!(flows > 0);
        self.net.latency_us + (bytes * flows) as f64 / (self.net.bandwidth_gbs * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallex_machine::cluster::ClusterSpec;
    use parallex_machine::spec::ProcessorId;

    fn fabric() -> Fabric {
        Fabric::new(ClusterSpec::for_processor(ProcessorId::XeonE5_2660v3).network)
    }

    #[test]
    fn contention_slows_transfers() {
        let mut f = fabric();
        f.open_flow();
        let alone = f.transfer_time_us(1 << 20);
        f.open_flow();
        f.open_flow();
        let contended = f.transfer_time_us(1 << 20);
        assert!(contended > 2.0 * alone - f.network().latency_us * 2.0);
        f.close_flow();
        f.close_flow();
        f.close_flow();
    }

    #[test]
    #[should_panic(expected = "no open flows")]
    fn close_without_open_panics() {
        fabric().close_flow();
    }

    #[test]
    fn concurrent_equals_serialized_payload_time() {
        let f = fabric();
        let t4 = f.concurrent_transfer_us(1 << 18, 4);
        let t1 = f.concurrent_transfer_us(1 << 20, 1);
        assert!((t4 - t1).abs() < 1e-9, "same total bytes, same time");
    }

    #[test]
    fn open_close_cycle_returns_to_baseline() {
        let mut f = fabric();
        let before = f.transfer_time_us(1 << 16);
        f.open_flow();
        f.open_flow();
        f.close_flow();
        f.close_flow();
        assert_eq!(f.active_flows(), 0);
        assert_eq!(f.transfer_time_us(1 << 16), before);
    }

    #[test]
    fn latency_floor_once_per_transfer() {
        let f = fabric();
        assert!(f.transfer_time_us(0) >= f.network().latency_us);
    }
}
