//! Halo-exchange cost and latency-hiding analysis.
//!
//! The paper's distributed 1D stencil is "implemented such that network
//! latencies can be hidden under compute" (Section VII-A): each node sends
//! its two boundary cells, computes the interior, and only then needs the
//! neighbours' halos. The *exposed* per-step communication cost is
//! therefore `max(0, wire_time - interior_compute_time)` — zero on any
//! sane fabric. On the Hi1616 partition overlap is ineffective, so the
//! full (congested) wire time lands on the critical path and grows with
//! node count, which is exactly the weak-scaling blow-up of Fig. 3.

use parallex_machine::cluster::NetworkSpec;

/// Wire time of one halo message of `halo_bytes`, at `nodes` participating
/// nodes (congestion included), microseconds.
pub fn halo_transfer_us(net: &NetworkSpec, halo_bytes: usize, nodes: usize) -> f64 {
    net.congested_transfer_time_us(halo_bytes, nodes)
}

/// Exposed (non-overlappable) communication cost per time step,
/// microseconds. `interior_compute_us` is the time the node spends
/// computing cells that do not depend on the incoming halo.
pub fn exposed_step_overhead_us(
    net: &NetworkSpec,
    halo_bytes: usize,
    nodes: usize,
    interior_compute_us: f64,
) -> f64 {
    if nodes <= 1 {
        return 0.0;
    }
    let wire = halo_transfer_us(net, halo_bytes, nodes);
    if net.latency_hiding {
        (wire - interior_compute_us).max(0.0)
    } else {
        wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallex_machine::cluster::ClusterSpec;
    use parallex_machine::spec::ProcessorId;

    const HALO_BYTES: usize = 16; // two f64 boundary cells

    #[test]
    fn single_node_has_no_overhead() {
        let net = ClusterSpec::for_processor(ProcessorId::Kunpeng916).network;
        assert_eq!(exposed_step_overhead_us(&net, HALO_BYTES, 1, 0.0), 0.0);
    }

    #[test]
    fn good_fabric_hides_latency_under_compute() {
        for id in [ProcessorId::XeonE5_2660v3, ProcessorId::ThunderX2, ProcessorId::A64FX] {
            let net = ClusterSpec::for_processor(id).network;
            // Interior compute of a 150M-point block is tens of ms; wire
            // time is a few µs.
            let exposed = exposed_step_overhead_us(&net, HALO_BYTES, 8, 30_000.0);
            assert_eq!(exposed, 0.0, "{id:?}");
        }
    }

    #[test]
    fn good_fabric_exposes_only_residual_when_compute_is_tiny() {
        let net = ClusterSpec::for_processor(ProcessorId::XeonE5_2660v3).network;
        let exposed = exposed_step_overhead_us(&net, HALO_BYTES, 8, 0.5);
        assert!(exposed > 0.0 && exposed < net.latency_us * 2.0);
    }

    #[test]
    fn kunpeng_fabric_never_hides() {
        let net = ClusterSpec::for_processor(ProcessorId::Kunpeng916).network;
        let exposed = exposed_step_overhead_us(&net, HALO_BYTES, 2, 1e9);
        assert!(exposed >= net.latency_us, "fully exposed despite huge compute");
    }

    #[test]
    fn kunpeng_overhead_grows_with_nodes() {
        let net = ClusterSpec::for_processor(ProcessorId::Kunpeng916).network;
        let at = |n| exposed_step_overhead_us(&net, HALO_BYTES, n, 10_000.0);
        assert!(at(4) > at(2));
        assert!(at(8) > 2.0 * at(2), "super-linear blow-up: {} vs {}", at(8), at(2));
    }
}
