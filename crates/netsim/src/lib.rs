//! # parallex-netsim
//!
//! Interconnect simulation for the distributed experiments (the paper's
//! Fig. 3). Two consumers:
//!
//! * **Real execution**: [`delay::parcel_delay_fn`] turns a
//!   [`parallex_machine::cluster::NetworkSpec`] into a
//!   [`parallex::parcel::DelayFn`], so a [`parallex::locality::Cluster`]
//!   physically delays its parcels by the modeled wire time — the
//!   distributed 1D stencil then *experiences* the network it is being
//!   evaluated against.
//! * **Analytic/DES timing**: [`halo`] computes the per-time-step exposed
//!   communication cost of a nearest-neighbour halo exchange, including
//!   the latency-hiding analysis that separates the Xeon/TX2/A64FX fabrics
//!   (overlapped, near-zero exposure) from the Hi1616 fabric (exposed,
//!   growing with node count).
//! * [`fabric`] adds simple flow-level contention for many simultaneous
//!   transfers over one link.

pub mod delay;
pub mod fabric;
pub mod halo;

pub use delay::parcel_delay_fn;
pub use fabric::Fabric;
pub use halo::{exposed_step_overhead_us, halo_transfer_us};
