//! Bridge from machine-level network specs to runtime parcel delays.

use parallex::parcel::DelayFn;
use parallex_machine::cluster::NetworkSpec;
use std::sync::Arc;
use std::time::Duration;

/// Build a [`DelayFn`] that delays every parcel by the spec's
/// latency + size/bandwidth wire time (scaled by `time_scale`, so tests
/// can run a "1000× faster" network while keeping ratios intact).
pub fn parcel_delay_fn(net: NetworkSpec, time_scale: f64) -> DelayFn {
    assert!(time_scale > 0.0);
    Arc::new(move |parcel| {
        let us = net.transfer_time_us(parcel.wire_bytes()) * time_scale;
        Duration::from_nanos((us * 1000.0) as u64)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use parallex::agas::Gid;
    use parallex::parcel::Parcel;
    use parallex_machine::cluster::ClusterSpec;
    use parallex_machine::spec::ProcessorId;

    fn parcel(payload_len: usize) -> Parcel {
        Parcel {
            source: 0,
            dest_locality: 1,
            dest: Gid { origin: 0, lid: 0 },
            action: 1,
            payload: Bytes::from(vec![0u8; payload_len]),
            response_token: None,
        }
    }

    #[test]
    fn delay_scales_with_size() {
        let net = ClusterSpec::for_processor(ProcessorId::XeonE5_2660v3).network;
        let f = parcel_delay_fn(net, 1.0);
        let small = f(&parcel(16));
        let large = f(&parcel(1 << 20));
        assert!(large > small * 10);
    }

    #[test]
    fn time_scale_compresses_delays() {
        let net = ClusterSpec::for_processor(ProcessorId::Kunpeng916).network;
        let full = parcel_delay_fn(net, 1.0)(&parcel(1024));
        let fast = parcel_delay_fn(net, 0.001)(&parcel(1024));
        let ratio = full.as_nanos() as f64 / fast.as_nanos().max(1) as f64;
        assert!((900.0..1100.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn kunpeng_fabric_is_much_slower_than_xeon_fabric() {
        let xeon = ClusterSpec::for_processor(ProcessorId::XeonE5_2660v3).network;
        let kp = ClusterSpec::for_processor(ProcessorId::Kunpeng916).network;
        let p = parcel(4096);
        assert!(parcel_delay_fn(kp, 1.0)(&p) > 50 * parcel_delay_fn(xeon, 1.0)(&p));
    }
}
