//! Localities and clusters: the distributed-memory layer.
//!
//! An HPX *locality* is one node of the cluster: its own thread pool,
//! component storage and parcelport, sharing a global AGAS view. A
//! [`Cluster`] instantiates several localities inside one process — the
//! substrate on which the paper's distributed 1D stencil (Fig. 3) runs —
//! and routes [`crate::parcel::Parcel`]s between them, optionally through
//! a [`crate::parcel::DelayFn`] modeling the interconnect.

use crate::agas::{AgasService, ComponentStore, Gid, MigrationRegistry};
use crate::error::{Error, Result};
use crate::introspect::{
    prometheus_text, CounterPath, CounterSnapshot, EventKind, Instance, LatencyChannel,
    MetricsServer, Trace,
};
use crate::lcos::future::{Future, Promise};
use crate::parcel::{
    serialize, tcp, ActionFn, ActionId, ActionRegistry, DelayFn, InProcessParcelport, Parcel,
    Parcelport, PortEvent, PortSink, TimerToken, TimerWheel, RESPONSE_ACTION,
};
use crate::resilience::{
    ChaosSpec, FaultPlan, FaultyParcelport, HeartbeatConfig, PeerHealth, PeerState,
    ReliableConfig, ReliableParcelport, HEARTBEAT_ACTION,
};
use crate::runtime::Runtime;
use crate::sched::SchedulerPolicy;
use crate::task::{Priority, Task};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// An outstanding request: its promise, send time (completing the
/// parcel-RTT latency histogram on response), destination locality (so a
/// peer loss can fail exactly the requests aimed at the dead node), and
/// the response-timeout timer, if one is armed.
struct PendingRequest {
    promise: Promise<Vec<u8>>,
    sent_at: std::time::Instant,
    dest: u32,
    timeout: Option<TimerToken>,
}

/// One simulated node: runtime + component store + parcel endpoints.
pub struct Locality {
    id: u32,
    runtime: Runtime,
    components: ComponentStore,
    cluster: RwLock<Weak<ClusterShared>>,
    /// Outstanding request promises by token, with their send time so
    /// the response completes the parcel-RTT latency histogram.
    pending: Mutex<HashMap<u64, PendingRequest>>,
    next_token: AtomicU64,
    /// Peer liveness as observed from this locality, fed by heartbeat
    /// arrivals once [`Cluster::start_heartbeat`] is running.
    health: PeerHealth,
}

/// Record a parcel event on the calling thread's lane of `rt`'s tracer
/// (a no-op unless tracing is on).
fn trace_parcel(rt: &Runtime, kind: EventKind, action: ActionId) {
    let tracer = rt.tracer();
    if tracer.is_enabled() {
        let lane = rt.current_worker().unwrap_or_else(|| tracer.external_lane());
        tracer.instant(lane, kind, action as u64);
    }
}

impl Locality {
    /// This locality's rank.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The locality's task runtime.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Local component storage.
    pub fn components(&self) -> &ComponentStore {
        &self.components
    }

    /// This locality's view of its peers' liveness (populated by the
    /// heartbeat protocol; empty until [`Cluster::start_heartbeat`]).
    pub fn health(&self) -> &PeerHealth {
        &self.health
    }

    fn shared(&self) -> Result<Arc<ClusterShared>> {
        self.cluster
            .read()
            .upgrade()
            .ok_or(Error::RuntimeShutDown)
    }

    /// Fire-and-forget remote action (HPX `hpx::apply`): ships `arg` to the
    /// locality owning `gid` and runs the action there.
    pub fn apply<A: Serialize>(&self, gid: Gid, action: ActionId, arg: &A) -> Result<()> {
        let shared = self.shared()?;
        let dest_locality = shared.agas.resolve(gid)?;
        let parcel = Parcel {
            source: self.id,
            dest_locality,
            dest: gid,
            action,
            payload: Bytes::from(serialize::to_bytes(arg)?),
            response_token: None,
        };
        self.runtime.counters().parcels_sent.fetch_add(1, Ordering::Relaxed);
        trace_parcel(&self.runtime, EventKind::ParcelSend, action);
        ClusterShared::send(&shared, parcel);
        Ok(())
    }

    /// Remote action returning the handler's raw response bytes
    /// (HPX `hpx::async` on an action).
    pub fn async_action_raw<A: Serialize>(
        &self,
        gid: Gid,
        action: ActionId,
        arg: &A,
    ) -> Result<Future<Vec<u8>>> {
        let shared = self.shared()?;
        let dest_locality = shared.agas.resolve(gid)?;
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let mut promise = self.runtime.make_promise();
        let future = promise.future();
        self.pending.lock().insert(
            token,
            PendingRequest {
                promise,
                sent_at: std::time::Instant::now(),
                dest: dest_locality,
                timeout: None,
            },
        );
        if let Some(d) = *shared.response_timeout.read() {
            let weak = Arc::downgrade(&shared.localities[self.id as usize]);
            let timer = shared.timer.schedule_cancelable(d, move || {
                if let Some(loc) = weak.upgrade() {
                    loc.fail_token(token, Error::ResponseTimeout);
                }
            });
            let mut pend = self.pending.lock();
            match pend.get_mut(&token) {
                Some(req) => req.timeout = Some(timer),
                // The response won the race; the timer must not linger.
                None => {
                    drop(pend);
                    shared.timer.cancel(&timer);
                }
            }
        }
        let parcel = Parcel {
            source: self.id,
            dest_locality,
            dest: gid,
            action,
            payload: Bytes::from(serialize::to_bytes(arg)?),
            response_token: Some(token),
        };
        self.runtime.counters().parcels_sent.fetch_add(1, Ordering::Relaxed);
        trace_parcel(&self.runtime, EventKind::ParcelSend, action);
        ClusterShared::send(&shared, parcel);
        Ok(future)
    }

    /// Typed remote call: serializes `arg`, runs the action remotely,
    /// deserializes its response as `R`.
    pub fn call<A: Serialize, R: DeserializeOwned + Send + 'static>(
        &self,
        gid: Gid,
        action: ActionId,
        arg: &A,
    ) -> Result<Future<R>> {
        Ok(self.async_action_raw(gid, action, arg)?.then(|bytes| {
            serialize::from_bytes::<R>(&bytes).expect("response payload decodes as R")
        }))
    }

    fn complete_response(&self, token: u64, result: std::result::Result<Vec<u8>, String>) {
        let req = self.pending.lock().remove(&token);
        if let Some(req) = req {
            self.disarm_timeout(&req);
            // Request → response round-trip as observed by the caller's
            // locality, recorded on the completing thread's lane.
            let lane = self
                .runtime
                .current_worker()
                .unwrap_or_else(|| self.runtime.workers());
            self.runtime.latency_histograms().record(
                LatencyChannel::ParcelRtt,
                lane,
                req.sent_at.elapsed().as_nanos() as u64,
            );
            match result {
                Ok(bytes) => req.promise.set_value(bytes),
                Err(msg) => req.promise.set_error(Error::RemoteError(msg)),
            }
        }
    }

    fn disarm_timeout(&self, req: &PendingRequest) {
        if let Some(t) = &req.timeout {
            if let Ok(shared) = self.shared() {
                shared.timer.cancel(t);
            }
        }
    }

    /// Fail one outstanding request with `err` (response timeout, or a
    /// transport send error observed synchronously).
    fn fail_token(&self, token: u64, err: Error) {
        let req = self.pending.lock().remove(&token);
        if let Some(req) = req {
            self.disarm_timeout(&req);
            req.promise.set_error(err);
        }
    }

    /// The peer `peer` is gone: fail every outstanding request addressed
    /// to it with [`Error::PeerLost`] so blocked callers resume instead
    /// of hanging (and `Cluster::wait_idle` stops spinning on orphaned
    /// tokens).
    pub(crate) fn fail_pending_to(&self, peer: u32) {
        let drained: Vec<PendingRequest> = {
            let mut pend = self.pending.lock();
            let tokens: Vec<u64> = pend
                .iter()
                .filter(|(_, r)| r.dest == peer)
                .map(|(t, _)| *t)
                .collect();
            tokens.into_iter().filter_map(|t| pend.remove(&t)).collect()
        };
        for req in drained {
            self.disarm_timeout(&req);
            req.promise.set_error(Error::PeerLost(peer));
        }
    }
}

pub(crate) struct ClusterShared {
    localities: Vec<Arc<Locality>>,
    agas: AgasService,
    actions: ActionRegistry,
    migration: MigrationRegistry,
    timer: TimerWheel,
    delay: RwLock<Option<DelayFn>>,
    /// The parcelport per locality (in-process handoff by default,
    /// TCP after [`Cluster::attach_tcp`]).
    transport: RwLock<Transport>,
    /// If set, remote calls fail with [`Error::ResponseTimeout`] when no
    /// response arrives in time.
    response_timeout: RwLock<Option<Duration>>,
    /// One "system" component per locality: the target GID for
    /// locality-wide (collective) actions.
    system_gids: Vec<Gid>,
}

/// Which [`Parcelport`] implementation carries inter-locality parcels.
enum Transport {
    /// Shared-memory handoff inside one process.
    InProcess(Vec<Arc<InProcessParcelport>>),
    /// Real sockets with framing and coalescing.
    Tcp(Vec<Arc<tcp::TcpParcelport>>),
    /// TCP wrapped in the resilience stack: sends enter the reliable
    /// layer (seq/ack/retransmit/dedup), pass the optional chaos
    /// decorator, and exit on the socket; inbound frames climb back up
    /// the same chain.
    Resilient {
        rel: Vec<Arc<ReliableParcelport>>,
        /// Present only when chaos injection was requested.
        faulty: Vec<Arc<FaultyParcelport>>,
        tcp: Vec<Arc<tcp::TcpParcelport>>,
    },
}

impl Transport {
    fn port(&self, i: usize) -> Option<Arc<dyn Parcelport>> {
        match self {
            Transport::InProcess(v) => v.get(i).cloned().map(|p| p as Arc<dyn Parcelport>),
            Transport::Tcp(v) => v.get(i).cloned().map(|p| p as Arc<dyn Parcelport>),
            Transport::Resilient { rel, .. } => {
                rel.get(i).cloned().map(|p| p as Arc<dyn Parcelport>)
            }
        }
    }

    fn pending(&self) -> usize {
        match self {
            Transport::InProcess(v) => v.iter().map(|p| p.pending()).sum(),
            Transport::Tcp(v) => v.iter().map(|p| p.pending()).sum(),
            // The reliable port's `pending` delegates down the chain, so
            // it already covers chaos-delayed parcels and socket queues.
            Transport::Resilient { rel, .. } => rel.iter().map(|p| p.pending()).sum(),
        }
    }

    fn shutdown_ports(&self) {
        match self {
            Transport::InProcess(v) => v.iter().for_each(|p| p.shutdown()),
            Transport::Tcp(v) => v.iter().for_each(|p| p.shutdown()),
            // Shutting the reliable layer joins its retransmit thread
            // and cascades down through faulty → tcp.
            Transport::Resilient { rel, .. } => rel.iter().for_each(|p| p.shutdown()),
        }
    }

    /// Parcels written to the wire but not yet decoded by a receiver.
    /// The in-process port hands parcels over synchronously, so only TCP
    /// can have bytes genuinely in flight. After a peer loss the
    /// sent/received ledger can never balance (frames toward the dead
    /// peer are gone), so the check is disabled rather than spun on.
    fn in_flight(&self) -> u64 {
        match self {
            Transport::InProcess(_) => 0,
            Transport::Tcp(v) => {
                if v.iter().any(|p| p.any_peer_lost()) {
                    return 0;
                }
                let sent: u64 = v.iter().map(|p| p.parcels_sent()).sum();
                let received: u64 = v.iter().map(|p| p.parcels_received()).sum();
                sent.saturating_sub(received)
            }
            // Under chaos the wire-level ledger never balances (drops,
            // dups, retransmits), so idle detection uses the reliable
            // layer's *logical* ledger: unique data parcels accepted
            // from senders vs unique parcels handed to receivers after
            // dedup. Delivered is read before sent so a concurrent
            // delivery can only make the result conservatively high,
            // never a false zero.
            Transport::Resilient { rel, tcp, .. } => {
                if rel.iter().any(|p| p.any_peer_lost()) || tcp.iter().any(|p| p.any_peer_lost()) {
                    return 0;
                }
                let delivered: u64 = rel.iter().map(|p| p.data_delivered()).sum();
                let sent: u64 = rel.iter().map(|p| p.data_sent()).sum();
                sent.saturating_sub(delivered)
            }
        }
    }
}

/// Marker component representing "the locality itself" — the target of
/// collective actions like [`Cluster::broadcast`].
pub struct SystemComponent;

impl ClusterShared {
    fn send(self: &Arc<Self>, parcel: Parcel) {
        let delay = self.delay.read().as_ref().map(|d| d(&parcel));
        match delay {
            Some(d) if d > Duration::ZERO => {
                let weak = Arc::downgrade(self);
                self.timer.schedule(d, move || {
                    if let Some(shared) = weak.upgrade() {
                        ClusterShared::transmit(&shared, parcel);
                    }
                });
            }
            _ => ClusterShared::transmit(self, parcel),
        }
    }

    /// Hand the parcel to the source locality's parcelport (self-sends
    /// skip the transport — no loopback socket hop even under TCP). A
    /// synchronous transport failure fails the caller's pending request
    /// with the typed error instead of letting it hang.
    fn transmit(self: &Arc<Self>, parcel: Parcel) {
        let port = if parcel.source == parcel.dest_locality {
            None
        } else {
            self.transport.read().port(parcel.source as usize)
        };
        let Some(port) = port else {
            ClusterShared::deliver(self, parcel);
            return;
        };
        let source = parcel.source;
        let action = parcel.action;
        let token = parcel.response_token;
        if let Err(e) = port.send(parcel) {
            match (action, token) {
                // A request with a response token: fail it so the caller
                // gets the typed error immediately.
                (a, Some(tok)) if a != RESPONSE_ACTION => {
                    if let Some(loc) = self.localities.get(source as usize) {
                        loc.fail_token(tok, e);
                    }
                }
                // Fire-and-forget or an undeliverable response: the
                // requester's own peer-loss handling covers the latter.
                _ => eprintln!("parallex: dropping parcel (action {action}): {e}"),
            }
        }
    }

    fn deliver(self: &Arc<Self>, parcel: Parcel) {
        let Some(dest) = self.localities.get(parcel.dest_locality as usize).cloned() else {
            eprintln!("parallex: dropping parcel to unknown locality {}", parcel.dest_locality);
            return;
        };
        let shared = self.clone();
        let dest2 = dest.clone();
        let task = Task::new(move || {
            shared.handle(dest2.clone(), parcel);
        })
        .with_priority(Priority::High);
        dest.runtime.spawn_task(task);
    }

    fn handle(self: &Arc<Self>, dest: Arc<Locality>, parcel: Parcel) {
        dest.runtime
            .counters()
            .parcels_received
            .fetch_add(1, Ordering::Relaxed);
        let tracer = dest.runtime.tracer();
        let recv_start = tracer.is_enabled().then(std::time::Instant::now);
        let action = parcel.action;
        if parcel.action == RESPONSE_ACTION {
            let token = parcel.response_token.expect("response parcels carry a token");
            let result: std::result::Result<Vec<u8>, String> =
                serialize::from_bytes(&parcel.payload).unwrap_or_else(|e| Err(e.to_string()));
            dest.complete_response(token, result);
        } else {
            let outcome: std::result::Result<Vec<u8>, String> =
                match self.actions.get(parcel.action) {
                    Ok(handler) => run_handler(&handler, &dest, parcel.dest, &parcel.payload),
                    Err(e) => Err(e.to_string()),
                };
            if let Some(token) = parcel.response_token {
                let payload =
                    serialize::to_bytes(&outcome).expect("Result<Vec<u8>,String> serializes");
                let response = Parcel {
                    source: parcel.dest_locality,
                    dest_locality: parcel.source,
                    dest: parcel.dest,
                    action: RESPONSE_ACTION,
                    payload: Bytes::from(payload),
                    response_token: Some(token),
                };
                // Responses are parcels too: count them as sent so
                // Σsent == Σreceived holds across the cluster.
                dest.runtime
                    .counters()
                    .parcels_sent
                    .fetch_add(1, Ordering::Relaxed);
                trace_parcel(&dest.runtime, EventKind::ParcelSend, RESPONSE_ACTION);
                ClusterShared::send(self, response);
            }
        }
        if let Some(t0) = recv_start {
            let lane = dest
                .runtime
                .current_worker()
                .unwrap_or_else(|| tracer.external_lane());
            tracer.span(
                lane,
                EventKind::ParcelRecv,
                t0,
                std::time::Instant::now(),
                action as u64,
            );
        }
    }
}

fn run_handler(
    handler: &ActionFn,
    dest: &Arc<Locality>,
    gid: Gid,
    payload: &[u8],
) -> std::result::Result<Vec<u8>, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(dest, gid, payload))) {
        Ok(Ok(bytes)) => Ok(bytes),
        Ok(Err(e)) => Err(e.to_string()),
        Err(p) => Err(format!("action panicked: {}", crate::util::panic_message(&*p))),
    }
}

/// A set of localities sharing an AGAS and exchanging parcels — one
/// in-process "cluster".
#[derive(Clone)]
pub struct Cluster {
    shared: Arc<ClusterShared>,
}

impl Cluster {
    /// Build a cluster of `localities` nodes with `threads_each` workers
    /// per locality.
    pub fn new(localities: usize, threads_each: usize) -> Cluster {
        Cluster::with_scheduler(localities, threads_each, SchedulerPolicy::LocalPriority)
    }

    /// [`Cluster::new`] with an explicit scheduling policy per locality.
    pub fn with_scheduler(
        localities: usize,
        threads_each: usize,
        policy: SchedulerPolicy,
    ) -> Cluster {
        assert!(localities > 0, "need at least one locality");
        let locs: Vec<Arc<Locality>> = (0..localities as u32)
            .map(|id| {
                Arc::new(Locality {
                    id,
                    runtime: Runtime::builder()
                        .worker_threads(threads_each)
                        .scheduler(policy)
                        .thread_name(format!("loc{id}"))
                        .locality_id(id)
                        .build(),
                    components: ComponentStore::new(),
                    cluster: RwLock::new(Weak::new()),
                    pending: Mutex::new(HashMap::new()),
                    next_token: AtomicU64::new(1),
                    health: PeerHealth::new(),
                })
            })
            .collect();
        let agas = AgasService::new();
        let system_gids: Vec<Gid> = (0..locs.len())
            .map(|i| {
                let gid = agas.allocate(i as u32);
                locs[i].components.insert(gid, SystemComponent);
                gid
            })
            .collect();
        let shared = Arc::new(ClusterShared {
            localities: locs,
            agas,
            actions: ActionRegistry::new(),
            migration: MigrationRegistry::new(),
            timer: TimerWheel::new(),
            delay: RwLock::new(None),
            transport: RwLock::new(Transport::InProcess(Vec::new())),
            response_timeout: RwLock::new(None),
            system_gids,
        });
        for loc in &shared.localities {
            *loc.cluster.write() = Arc::downgrade(&shared);
        }
        // Default transport: the in-process parcelport, one per locality,
        // delivering straight back into the cluster.
        let inproc: Vec<Arc<InProcessParcelport>> = (0..shared.localities.len())
            .map(|_| Arc::new(InProcessParcelport::new(Self::delivery_sink(&shared, None))))
            .collect();
        *shared.transport.write() = Transport::InProcess(inproc);
        Cluster { shared }
    }

    /// The sink a parcelport drives: inbound parcels enter the delivery
    /// path; a lost peer fails the owning locality's pending requests.
    fn delivery_sink(shared: &Arc<ClusterShared>, owner: Option<usize>) -> PortSink {
        let weak = Arc::downgrade(shared);
        Arc::new(move |ev| {
            let Some(shared) = weak.upgrade() else { return };
            match ev {
                PortEvent::Deliver(p) => ClusterShared::deliver(&shared, p),
                PortEvent::PeerLost(peer) => {
                    if let Some(loc) = owner.and_then(|i| shared.localities.get(i)) {
                        loc.fail_pending_to(peer);
                    }
                }
            }
        })
    }

    /// Switch the cluster's transport to real TCP parcelports on
    /// loopback: one listener per locality, a full mesh of per-direction
    /// connections, parcel coalescing per [`tcp::TcpConfig`]. The
    /// network-delay model still composes on top (delays are applied
    /// before the parcel is handed to the port). Wire-level counters
    /// (`/parcels/.../bytes/sent`, `count/writes`) register on each
    /// locality's counter registry.
    pub fn attach_tcp(&self, cfg: tcp::TcpConfig) -> Result<()> {
        let shared = &self.shared;
        let n = self.len();
        let mut ports = Vec::with_capacity(n);
        for i in 0..n {
            let sink = Self::delivery_sink(shared, Some(i));
            let addr = "127.0.0.1:0".parse().expect("loopback addr");
            let port = tcp::TcpParcelport::bind(i as u32, addr, sink, cfg.clone())
                .map_err(|e| Error::Io(e.to_string()))?;
            ports.push(port);
        }
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    ports[i].connect_peer(j as u32, ports[j].local_addr())?;
                }
            }
        }
        Self::register_wire_counters(shared, &ports);
        *shared.transport.write() = Transport::Tcp(ports);
        Ok(())
    }

    /// Register the wire-level TCP counters (`/parcels{...}/bytes/sent`
    /// etc.) on each locality's registry.
    fn register_wire_counters(shared: &Arc<ClusterShared>, ports: &[Arc<tcp::TcpParcelport>]) {
        for (i, port) in ports.iter().enumerate() {
            let reg = shared.localities[i].runtime.counter_registry().clone();
            let p = port.clone();
            reg.register(
                CounterPath::new("parcels", i as u32, Instance::Total, "bytes/sent"),
                move || p.bytes_sent(),
            );
            let p = port.clone();
            reg.register(
                CounterPath::new("parcels", i as u32, Instance::Total, "bytes/received"),
                move || p.bytes_received(),
            );
            let p = port.clone();
            reg.register(
                CounterPath::new("parcels", i as u32, Instance::Total, "count/writes"),
                move || p.writes(),
            );
        }
    }

    /// Switch the transport to TCP wrapped in the resilience stack:
    /// every inter-locality parcel is sequenced, acked and retransmitted
    /// by a [`ReliableParcelport`]; with `chaos` set, a
    /// [`FaultyParcelport`] between the reliable layer and the socket
    /// injects the seeded fault schedule (drop / duplicate /
    /// delay-reorder / bit-corruption), one decorrelated
    /// [`FaultPlan`] stream per locality.
    ///
    /// Outbound path: reliable → faulty (optional) → TCP; inbound events
    /// climb back up the same chain. Resilience counters
    /// (`/resilience{locality#L/total}/count/retransmits`, `dup-drops`,
    /// `corrupt-drops`, `acks-sent`, `data/sent`, `data/delivered`) and
    /// — under chaos — `/chaos{...}/count/injected-*` register on each
    /// locality; they exist only on this transport, so counter-exact
    /// tests of the plain runtime registry are unaffected.
    pub fn attach_tcp_resilient(
        &self,
        tcp_cfg: tcp::TcpConfig,
        rel_cfg: ReliableConfig,
        chaos: Option<ChaosSpec>,
    ) -> Result<()> {
        let shared = &self.shared;
        let n = self.len();
        let mut rels: Vec<Arc<ReliableParcelport>> = Vec::with_capacity(n);
        let mut tcps: Vec<Arc<tcp::TcpParcelport>> = Vec::with_capacity(n);
        let mut faults: Vec<Arc<FaultyParcelport>> = Vec::new();
        for i in 0..n {
            let owner = Self::delivery_sink(shared, Some(i));
            let rel = ReliableParcelport::new(i as u32, rel_cfg.clone(), owner);
            let addr = "127.0.0.1:0".parse().expect("loopback addr");
            let port =
                tcp::TcpParcelport::bind(i as u32, addr, rel.inbound_sink(), tcp_cfg.clone())
                    .map_err(|e| Error::Io(e.to_string()))?;
            let inner: Arc<dyn Parcelport> = match &chaos {
                Some(spec) => {
                    let plan = Arc::new(FaultPlan::for_stream(spec.clone(), i as u64));
                    // Crash-gate PeerLost events go through the reliable
                    // layer's sink so its retransmit state is purged too.
                    let f = FaultyParcelport::new(port.clone(), plan, Some(rel.inbound_sink()));
                    faults.push(f.clone());
                    f
                }
                None => port.clone(),
            };
            rel.attach_inner(inner);
            tcps.push(port);
            rels.push(rel);
        }
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    tcps[i].connect_peer(j as u32, tcps[j].local_addr())?;
                }
            }
        }
        Self::register_wire_counters(shared, &tcps);
        for (i, rel) in rels.iter().enumerate() {
            let reg = shared.localities[i].runtime.counter_registry().clone();
            let path = |name: &str| CounterPath::new("resilience", i as u32, Instance::Total, name);
            let p = rel.clone();
            reg.register(path("count/retransmits"), move || p.retransmits());
            let p = rel.clone();
            reg.register(path("count/dup-drops"), move || p.dup_drops());
            let p = rel.clone();
            reg.register(path("count/corrupt-drops"), move || p.corrupt_drops());
            let p = rel.clone();
            reg.register(path("count/acks-sent"), move || p.acks_sent());
            let p = rel.clone();
            reg.register(path("data/sent"), move || p.data_sent());
            let p = rel.clone();
            reg.register(path("data/delivered"), move || p.data_delivered());
        }
        for (i, f) in faults.iter().enumerate() {
            let reg = shared.localities[i].runtime.counter_registry().clone();
            let path = |name: &str| CounterPath::new("chaos", i as u32, Instance::Total, name);
            let p = f.clone();
            reg.register(path("count/injected-drops"), move || p.injected_drops());
            let p = f.clone();
            reg.register(path("count/injected-dups"), move || p.injected_dups());
            let p = f.clone();
            reg.register(path("count/injected-delays"), move || p.injected_delays());
            let p = f.clone();
            reg.register(path("count/injected-corrupts"), move || p.injected_corrupts());
        }
        *shared.transport.write() = Transport::Resilient { rel: rels, faulty: faults, tcp: tcps };
        Ok(())
    }

    /// [`Cluster::new`] + [`Cluster::attach_tcp_resilient`] with default
    /// tuning — the chaos-run entry point used by `repro --chaos`.
    ///
    /// # Panics
    /// Panics if loopback listeners cannot be bound.
    pub fn new_resilient(
        localities: usize,
        threads_each: usize,
        chaos: Option<ChaosSpec>,
    ) -> Cluster {
        let c = Cluster::new(localities, threads_each);
        c.attach_tcp_resilient(tcp::TcpConfig::default(), ReliableConfig::default(), chaos)
            .expect("resilient TCP parcelport on loopback");
        c
    }

    /// [`Cluster::new`] + [`Cluster::attach_tcp`] with default tuning:
    /// every inter-locality parcel really crosses a loopback socket.
    ///
    /// # Panics
    /// Panics if loopback listeners cannot be bound.
    pub fn new_tcp(localities: usize, threads_each: usize) -> Cluster {
        let c = Cluster::new(localities, threads_each);
        c.attach_tcp(tcp::TcpConfig::default())
            .expect("TCP parcelport on loopback");
        c
    }

    /// The TCP parcelports, in locality order (empty for the in-process
    /// transport) — for wire-level stats and fault injection.
    pub fn tcp_ports(&self) -> Vec<Arc<tcp::TcpParcelport>> {
        match &*self.shared.transport.read() {
            Transport::Tcp(p) => p.clone(),
            Transport::Resilient { tcp, .. } => tcp.clone(),
            Transport::InProcess(_) => Vec::new(),
        }
    }

    /// The reliable-delivery layers, in locality order (empty unless
    /// [`Cluster::attach_tcp_resilient`] is active) — for retransmit and
    /// dedup statistics.
    pub fn reliable_ports(&self) -> Vec<Arc<ReliableParcelport>> {
        match &*self.shared.transport.read() {
            Transport::Resilient { rel, .. } => rel.clone(),
            _ => Vec::new(),
        }
    }

    /// The chaos injectors, in locality order (empty unless
    /// [`Cluster::attach_tcp_resilient`] was given a [`ChaosSpec`]) —
    /// for injected-fault statistics and manual crash/hang gates.
    pub fn faulty_ports(&self) -> Vec<Arc<FaultyParcelport>> {
        match &*self.shared.transport.read() {
            Transport::Resilient { faulty, .. } => faulty.clone(),
            _ => Vec::new(),
        }
    }

    /// Fail remote calls whose response does not arrive within `d`
    /// (typed [`Error::ResponseTimeout`]); the timer is disarmed when
    /// the response wins the race.
    pub fn set_response_timeout(&self, d: Duration) {
        *self.shared.response_timeout.write() = Some(d);
    }

    /// Remove the response timeout.
    pub fn clear_response_timeout(&self) {
        *self.shared.response_timeout.write() = None;
    }

    /// Fault injection: sever locality `i` from the cluster as if its
    /// node died — its listener and all of its connections close, and
    /// every peer's outstanding requests toward it fail with
    /// [`Error::PeerLost`]. Only meaningful on the TCP transport.
    pub fn disconnect_locality(&self, i: usize) {
        let port = match &*self.shared.transport.read() {
            Transport::Tcp(p) => p.get(i).cloned(),
            Transport::Resilient { tcp, .. } => tcp.get(i).cloned(),
            Transport::InProcess(_) => None,
        };
        if let Some(p) = port {
            p.shutdown();
        }
    }

    /// Number of localities.
    pub fn len(&self) -> usize {
        self.shared.localities.len()
    }

    /// Whether the cluster has no localities (never true; see
    /// [`Cluster::new`]).
    pub fn is_empty(&self) -> bool {
        self.shared.localities.is_empty()
    }

    /// Get locality `i`.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn locality(&self, i: usize) -> Arc<Locality> {
        self.shared.localities[i].clone()
    }

    /// All localities.
    pub fn localities(&self) -> &[Arc<Locality>] {
        &self.shared.localities
    }

    /// The shared AGAS directory.
    pub fn agas(&self) -> &AgasService {
        &self.shared.agas
    }

    /// Register an action handler cluster-wide.
    pub fn register_action(
        &self,
        id: ActionId,
        name: &'static str,
        f: impl Fn(&Arc<Locality>, Gid, &[u8]) -> Result<Vec<u8>> + Send + Sync + 'static,
    ) {
        self.shared.actions.register(id, name, f);
    }

    /// Install a per-parcel network delay model (None of delay ⇒ immediate
    /// shared-memory delivery).
    pub fn set_network_delay(&self, f: DelayFn) {
        *self.shared.delay.write() = Some(f);
    }

    /// Remove the network delay model.
    pub fn clear_network_delay(&self) {
        *self.shared.delay.write() = None;
    }

    /// Register `T` as migratable (required before [`Cluster::migrate`]).
    pub fn register_migratable<T>(&self)
    where
        T: Serialize + DeserializeOwned + Send + Sync + 'static,
    {
        self.shared.migration.register::<T>();
    }

    /// Create a component on `locality` and register it in AGAS.
    pub fn new_component<T: Send + Sync + 'static>(&self, locality: usize, obj: T) -> Gid {
        let gid = self.shared.agas.allocate(locality as u32);
        self.shared.localities[locality].components.insert(gid, obj);
        gid
    }

    /// Read a component wherever it lives (shared-memory shortcut; remote
    /// reads in a real cluster would be an action).
    pub fn get_component<T: Send + Sync + 'static>(&self, gid: Gid) -> Result<Arc<T>> {
        let loc = self.shared.agas.resolve(gid)?;
        self.shared.localities[loc as usize].components.get(gid)
    }

    /// Move a component to another locality, keeping its GID valid — the
    /// AGAS migration the paper's Section III-B describes.
    pub fn migrate(&self, gid: Gid, dest: usize) -> Result<()> {
        if dest >= self.len() {
            return Err(Error::UnknownLocality(dest as u32));
        }
        let src = self.shared.agas.resolve(gid)?;
        if src as usize == dest {
            return Ok(());
        }
        let store = &self.shared.localities[src as usize].components;
        let (obj, type_name) = store.take(gid)?;
        let bytes = match self.shared.migration.serialize(type_name, obj.as_ref()) {
            Ok(b) => b,
            Err(e) => {
                // Roll back: the object stays where it was.
                self.shared.localities[src as usize]
                    .components
                    .insert_any(gid, obj, type_name);
                return Err(e);
            }
        };
        let rebuilt = self.shared.migration.deserialize(type_name, &bytes)?;
        self.shared.localities[dest]
            .components
            .insert_any(gid, rebuilt, type_name);
        self.shared.agas.rebind(gid, dest as u32)?;
        Ok(())
    }

    /// The system GID of a locality — the target for locality-wide
    /// actions.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn system_gid(&self, locality: usize) -> Gid {
        self.shared.system_gids[locality]
    }

    /// Collective: run `action` on *every* locality (rooted at locality 0)
    /// and gather the decoded results in locality order — an HPX
    /// `broadcast`/`gather` over parcels.
    pub fn broadcast<A, R>(&self, action: ActionId, arg: &A) -> Result<crate::lcos::future::Future<Vec<R>>>
    where
        A: Serialize,
        R: DeserializeOwned + Send + 'static,
    {
        let root = self.locality(0);
        let futures = (0..self.len())
            .map(|i| root.call::<A, R>(self.system_gid(i), action, arg))
            .collect::<Result<Vec<_>>>()?;
        Ok(crate::lcos::future::when_all(futures))
    }

    /// Collective: [`Cluster::broadcast`] then fold the per-locality
    /// results with `op` — an all-reduce as seen from the caller.
    pub fn reduce_all<A, R>(
        &self,
        action: ActionId,
        arg: &A,
        op: impl Fn(R, R) -> R + Send + 'static,
    ) -> Result<crate::lcos::future::Future<R>>
    where
        A: Serialize,
        R: DeserializeOwned + Send + 'static,
    {
        Ok(self.broadcast::<A, R>(action, arg)?.then(move |vals| {
            vals.into_iter()
                .reduce(&op)
                .expect("clusters have at least one locality")
        }))
    }

    /// Block until every locality's runtime is idle.
    pub fn wait_idle(&self) {
        loop {
            for loc in &self.shared.localities {
                loc.runtime.wait_idle();
            }
            // Parcels in the timer wheel or queued in a parcelport may
            // spawn more work when they land; only stop once nothing is
            // pending anywhere.
            let busy = self.shared.timer.pending() > 0
                || self.shared.transport.read().pending() > 0
                || self.shared.transport.read().in_flight() > 0
                || self
                    .shared
                    .localities
                    .iter()
                    .any(|l| l.runtime.outstanding() > 0);
            if !busy {
                return;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// Shut down all localities' runtimes (quiescing the transport
    /// first, so no late parcels land on stopping runtimes).
    pub fn shutdown(&self) {
        self.shared.transport.read().shutdown_ports();
        for loc in &self.shared.localities {
            loc.runtime.shutdown();
        }
    }

    /// Merge every locality's counter registry into one snapshot (paths
    /// are disjoint because each locality registers under its own
    /// `locality#N` instance).
    pub fn counter_snapshot(&self) -> CounterSnapshot {
        CounterSnapshot::merge(
            self.shared
                .localities
                .iter()
                .map(|l| l.runtime.counter_snapshot()),
        )
    }

    /// Start structured tracing on every locality's runtime.
    pub fn start_trace(&self) {
        for loc in &self.shared.localities {
            loc.runtime.tracer().start();
        }
    }

    /// Stop tracing everywhere and return `(locality id, trace)` pairs,
    /// ready for [`crate::introspect::chrome_trace_json`] (which aligns
    /// the per-runtime epochs onto one timeline) or
    /// [`crate::introspect::analyze`].
    pub fn stop_trace(&self) -> Vec<(u32, Trace)> {
        self.shared
            .localities
            .iter()
            .map(|l| (l.id, l.runtime.tracer().stop()))
            .collect()
    }

    /// Serve the merged cluster-wide counter snapshot (all localities,
    /// including latency quantiles) in Prometheus text format. The
    /// closure captures only the counter registries, so the endpoint
    /// does not keep worker threads alive beyond the cluster itself.
    pub fn serve_metrics<A: std::net::ToSocketAddrs>(
        &self,
        addr: A,
    ) -> std::io::Result<MetricsServer> {
        let registries: Vec<_> = self
            .shared
            .localities
            .iter()
            .map(|l| l.runtime.counter_registry().clone())
            .collect();
        MetricsServer::bind(
            addr,
            Arc::new(move || {
                prometheus_text(&CounterSnapshot::merge(
                    registries.iter().map(|r| r.snapshot()),
                ))
            }),
        )
    }

    /// Start the heartbeat failure-detection protocol: every `interval`
    /// each locality pings every peer with a [`HEARTBEAT_ACTION`] parcel
    /// (sent *around* the reliable layer — a healed liveness probe would
    /// be a lie), and a monitor thread re-scores every [`PeerHealth`]
    /// table, walking silent peers Alive → Suspect → Dead.
    ///
    /// Registers, per locality: `/resilience{locality#L/total}/`
    /// `count/heartbeats-sent`, `count/heartbeat-misses`, and one
    /// `peer#P/state` gauge per peer (0 = alive, 1 = suspect, 2 = dead).
    /// State transitions are traced as [`EventKind::User`]
    /// `"peer-state"` instants (`arg = peer << 8 | state`) and logged to
    /// stderr.
    ///
    /// Call at most once per cluster (action and counter registration
    /// are not idempotent). Returns a handle that stops the monitor when
    /// dropped.
    pub fn start_heartbeat(&self, cfg: HeartbeatConfig) -> HeartbeatHandle {
        let n = self.len();
        self.register_action(HEARTBEAT_ACTION, "heartbeat", |loc, _gid, payload| {
            let src: u32 = serialize::from_bytes(payload)?;
            // Heartbeats bypass the reliable layer's checksum, so a
            // chaos-corrupted sender id can arrive; don't let it invent
            // a phantom peer.
            if (src as usize) >= loc.shared()?.localities.len() {
                return Ok(Vec::new());
            }
            let prev = loc.health.record_heartbeat(src);
            if prev == PeerState::Dead {
                let tracer = loc.runtime.tracer();
                if tracer.is_enabled() {
                    tracer.instant(
                        tracer.external_lane(),
                        EventKind::User("peer-recovered"),
                        src as u64,
                    );
                }
            }
            Ok(Vec::new())
        });
        let beats: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let misses: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        for i in 0..n {
            let reg = self.shared.localities[i].runtime.counter_registry().clone();
            let b = beats.clone();
            reg.register(
                CounterPath::new("resilience", i as u32, Instance::Total, "count/heartbeats-sent"),
                move || b[i].load(Ordering::Relaxed),
            );
            let m = misses.clone();
            reg.register(
                CounterPath::new("resilience", i as u32, Instance::Total, "count/heartbeat-misses"),
                move || m[i].load(Ordering::Relaxed),
            );
            for j in 0..n {
                if i == j {
                    continue;
                }
                let weak = Arc::downgrade(&self.shared.localities[i]);
                reg.register(
                    CounterPath::new(
                        "resilience",
                        i as u32,
                        Instance::Total,
                        format!("peer#{j}/state"),
                    ),
                    move || {
                        weak.upgrade()
                            .and_then(|l| l.health.state(j as u32))
                            .map_or(0, PeerState::as_u64)
                    },
                );
            }
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            let weak = Arc::downgrade(&self.shared);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("parallex-heartbeat".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        let Some(shared) = weak.upgrade() else { return };
                        let cluster = Cluster { shared };
                        for i in 0..cluster.len() {
                            let loc = cluster.locality(i);
                            for j in 0..cluster.len() {
                                if i == j {
                                    continue;
                                }
                                // A send failure (peer gone) is itself a
                                // missed heartbeat; the detector handles it.
                                if loc
                                    .apply(cluster.system_gid(j), HEARTBEAT_ACTION, &(i as u32))
                                    .is_ok()
                                {
                                    beats[i].fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        for i in 0..cluster.len() {
                            let loc = cluster.locality(i);
                            let report = loc.health.evaluate(&cfg);
                            if report.new_misses > 0 {
                                misses[i].fetch_add(report.new_misses, Ordering::Relaxed);
                            }
                            for (peer, old, new) in report.transitions {
                                eprintln!(
                                    "parallex: locality {i} sees peer {peer} go {old:?} -> {new:?}"
                                );
                                let tracer = loc.runtime.tracer();
                                if tracer.is_enabled() {
                                    tracer.instant(
                                        tracer.external_lane(),
                                        EventKind::User("peer-state"),
                                        ((peer as u64) << 8) | new.as_u64(),
                                    );
                                }
                            }
                        }
                        drop(cluster);
                        std::thread::sleep(cfg.interval);
                    }
                })
                .expect("spawn heartbeat monitor thread")
        };
        HeartbeatHandle { stop, thread: Some(thread) }
    }
}

/// Stops the heartbeat monitor started by [`Cluster::start_heartbeat`]
/// when dropped (or explicitly via [`HeartbeatHandle::stop`]).
pub struct HeartbeatHandle {
    stop: Arc<std::sync::atomic::AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatHandle {
    /// Stop the monitor thread and wait for it to exit.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HeartbeatHandle {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ECHO: ActionId = 1;
    const ADD_TO: ActionId = 2;
    const WHERE_AM_I: ActionId = 3;

    fn cluster() -> Cluster {
        with_actions(Cluster::new(3, 2))
    }

    fn tcp_cluster() -> Cluster {
        with_actions(Cluster::new_tcp(3, 2))
    }

    fn with_actions(c: Cluster) -> Cluster {
        c.register_action(ECHO, "echo", |_, _, payload| Ok(payload.to_vec()));
        c.register_action(ADD_TO, "add_to", |loc, gid, payload| {
            let x: i64 = serialize::from_bytes(payload)?;
            let cell = loc.components().get::<Mutex<i64>>(gid)?;
            let mut g = cell.lock();
            *g += x;
            serialize::to_bytes(&*g)
        });
        c.register_action(WHERE_AM_I, "where_am_i", |loc, _, _| {
            serialize::to_bytes(&loc.id())
        });
        c
    }

    #[test]
    fn echo_roundtrip_between_localities() {
        let c = cluster();
        let gid = c.new_component(2, ());
        let f = c
            .locality(0)
            .call::<String, String>(gid, ECHO, &"hello".to_string())
            .unwrap();
        assert_eq!(f.get(), "hello");
        c.shutdown();
    }

    #[test]
    fn action_runs_at_the_data() {
        let c = cluster();
        let gid = c.new_component(1, ());
        let f = c.locality(0).call::<(), u32>(gid, WHERE_AM_I, &()).unwrap();
        assert_eq!(f.get(), 1, "action must execute on the owning locality");
        c.shutdown();
    }

    #[test]
    fn apply_fire_and_forget_mutates_component() {
        let c = cluster();
        let gid = c.new_component(1, Mutex::new(0i64));
        for _ in 0..10 {
            c.locality(0).apply(gid, ADD_TO, &5i64).unwrap();
        }
        c.wait_idle();
        let cell = c.get_component::<Mutex<i64>>(gid).unwrap();
        assert_eq!(*cell.lock(), 50);
        c.shutdown();
    }

    #[test]
    fn unknown_action_surfaces_as_remote_error() {
        let c = cluster();
        let gid = c.new_component(0, ());
        let f = c.locality(1).call::<(), ()>(gid, 99, &()).unwrap();
        assert!(matches!(f.try_get(), Err(Error::RemoteError(_))));
        c.shutdown();
    }

    #[test]
    fn panicking_action_surfaces_as_remote_error() {
        let c = cluster();
        c.register_action(50, "boom", |_, _, _| panic!("kaboom"));
        let gid = c.new_component(0, ());
        let f = c.locality(1).async_action_raw(gid, 50, &()).unwrap();
        match f.try_get() {
            Err(Error::RemoteError(m)) => assert!(m.contains("kaboom")),
            other => panic!("{other:?}"),
        }
        c.shutdown();
    }

    #[test]
    fn migration_preserves_gid_and_state() {
        let c = cluster();
        c.register_migratable::<Vec<f64>>();
        let gid = c.new_component(0, vec![1.0f64, 2.0, 3.0]);
        assert_eq!(c.agas().resolve(gid).unwrap(), 0);
        c.migrate(gid, 2).unwrap();
        assert_eq!(c.agas().resolve(gid).unwrap(), 2);
        let v = c.get_component::<Vec<f64>>(gid).unwrap();
        assert_eq!(*v, vec![1.0, 2.0, 3.0]);
        assert!(c.locality(2).components().contains(gid));
        assert!(!c.locality(0).components().contains(gid));
        c.shutdown();
    }

    #[test]
    fn migrating_unregistered_type_fails_and_rolls_back() {
        let c = cluster();
        let gid = c.new_component(0, Mutex::new(1i64));
        assert!(c.migrate(gid, 1).is_err());
        assert_eq!(c.agas().resolve(gid).unwrap(), 0, "stays at source");
        assert!(c.locality(0).components().contains(gid), "rolled back");
        c.shutdown();
    }

    #[test]
    fn actions_follow_migrated_components() {
        let c = cluster();
        c.register_migratable::<Vec<f64>>();
        let gid = c.new_component(0, ());
        // WHERE_AM_I reports the executing locality, which must track the
        // component's residence.
        c.register_migratable::<()>();
        let f = c.locality(1).call::<(), u32>(gid, WHERE_AM_I, &()).unwrap();
        assert_eq!(f.get(), 0);
        c.migrate(gid, 2).unwrap();
        let f = c.locality(1).call::<(), u32>(gid, WHERE_AM_I, &()).unwrap();
        assert_eq!(f.get(), 2);
        c.shutdown();
    }

    #[test]
    fn delayed_parcels_still_arrive() {
        let c = cluster();
        c.set_network_delay(Arc::new(|_p| Duration::from_millis(2)));
        let gid = c.new_component(1, ());
        let t = crate::util::HighResolutionTimer::new();
        let f = c
            .locality(0)
            .call::<String, String>(gid, ECHO, &"delayed".to_string())
            .unwrap();
        assert_eq!(f.get(), "delayed");
        // Request + response each pay the delay.
        assert!(t.elapsed() >= 0.004, "{}", t.elapsed());
        c.shutdown();
    }

    #[test]
    fn parcel_counters_advance() {
        let c = cluster();
        let gid = c.new_component(1, ());
        let f = c.locality(0).call::<(), u32>(gid, WHERE_AM_I, &()).unwrap();
        f.get();
        let sent = c.locality(0).runtime().counters().parcels_sent.load(Ordering::Relaxed);
        assert!(sent >= 1);
        c.shutdown();
    }

    #[test]
    fn broadcast_reaches_every_locality() {
        let c = cluster();
        let ids: Vec<u32> = c.broadcast::<(), u32>(WHERE_AM_I, &()).unwrap().get();
        assert_eq!(ids, vec![0, 1, 2]);
        c.shutdown();
    }

    #[test]
    fn reduce_all_folds_results() {
        let c = cluster();
        let sum = c
            .reduce_all::<(), u32>(WHERE_AM_I, &(), |a, b| a + b)
            .unwrap()
            .get();
        assert_eq!(sum, 3); // 0 + 1 + 2
        c.shutdown();
    }

    #[test]
    fn system_gids_resolve_to_their_locality() {
        let c = cluster();
        for i in 0..c.len() {
            assert_eq!(c.agas().resolve(c.system_gid(i)).unwrap(), i as u32);
        }
        c.shutdown();
    }

    #[test]
    fn parcel_conservation_on_loopback_cluster() {
        // Every parcel sent anywhere (requests AND responses) must be
        // received somewhere: Σsent == Σreceived once the cluster idles.
        let c = cluster();
        let gid = c.new_component(1, Mutex::new(0i64));
        for _ in 0..20 {
            c.locality(0).apply(gid, ADD_TO, &1i64).unwrap();
        }
        let fs: Vec<_> = (0..10)
            .map(|i| {
                c.locality(i % 3)
                    .call::<(), u32>(c.system_gid((i + 1) % 3), WHERE_AM_I, &())
                    .unwrap()
            })
            .collect();
        for f in fs {
            f.get();
        }
        let _ = c.broadcast::<(), u32>(WHERE_AM_I, &()).unwrap().get();
        c.wait_idle();
        let (mut sent, mut received) = (0usize, 0usize);
        for loc in c.localities() {
            let snap = loc.runtime().perf_snapshot();
            sent += snap.parcels_sent;
            received += snap.parcels_received;
        }
        assert!(sent >= 20 + 2 * 10, "sent {sent}");
        assert_eq!(sent, received, "parcel conservation violated");
        // the same identity through the hierarchical registry schema
        let snap = c.counter_snapshot();
        let sum = |name: &str| -> u64 {
            snap.iter()
                .filter(|(p, _)| p.object == "parcels" && p.name == name)
                .map(|(_, v)| v)
                .sum()
        };
        assert_eq!(sum("count/sent"), sent as u64);
        assert_eq!(sum("count/received"), received as u64);
        c.shutdown();
    }

    #[test]
    fn cluster_trace_spans_localities() {
        let c = cluster();
        c.start_trace();
        let gid = c.new_component(1, Mutex::new(0i64));
        for _ in 0..5 {
            c.locality(0).apply(gid, ADD_TO, &1i64).unwrap();
        }
        c.locality(0)
            .call::<(), u32>(c.system_gid(2), WHERE_AM_I, &())
            .unwrap()
            .get();
        c.wait_idle();
        let traces = c.stop_trace();
        assert_eq!(traces.len(), 3);
        let sends: usize = traces
            .iter()
            .map(|(_, t)| t.of_kind(crate::introspect::EventKind::ParcelSend).count())
            .sum();
        let recvs: usize = traces
            .iter()
            .map(|(_, t)| t.of_kind(crate::introspect::EventKind::ParcelRecv).count())
            .sum();
        assert!(sends >= 6, "sends {sends}");
        assert!(recvs >= 6, "recvs {recvs}");
        // locality 1 saw the applies arrive as ParcelRecv spans
        let loc1 = &traces[1].1;
        assert!(loc1.of_kind(crate::introspect::EventKind::ParcelRecv).count() >= 5);
        for (_, t) in &traces {
            t.check_well_nested().unwrap();
        }
        c.shutdown();
    }

    #[test]
    fn self_send_works() {
        let c = cluster();
        let gid = c.new_component(0, ());
        let f = c.locality(0).call::<(), u32>(gid, WHERE_AM_I, &()).unwrap();
        assert_eq!(f.get(), 0);
        c.shutdown();
    }

    // ---- TCP transport -------------------------------------------------

    #[test]
    fn tcp_echo_roundtrip_crosses_real_sockets() {
        let c = tcp_cluster();
        let gid = c.new_component(2, ());
        let f = c
            .locality(0)
            .call::<String, String>(gid, ECHO, &"over tcp".to_string())
            .unwrap();
        assert_eq!(f.get(), "over tcp");
        // The request and its response really went over the wire.
        let ports = c.tcp_ports();
        assert_eq!(ports.len(), 3);
        let wire_parcels: u64 = ports.iter().map(|p| p.parcels_sent()).sum();
        assert!(wire_parcels >= 2, "request + response on sockets, got {wire_parcels}");
        let wire_bytes: u64 = ports.iter().map(|p| p.bytes_sent()).sum();
        assert!(wire_bytes > 0);
        c.shutdown();
    }

    #[test]
    fn tcp_broadcast_and_collectives_work() {
        let c = tcp_cluster();
        let ids: Vec<u32> = c.broadcast::<(), u32>(WHERE_AM_I, &()).unwrap().get();
        assert_eq!(ids, vec![0, 1, 2]);
        let sum = c
            .reduce_all::<(), u32>(WHERE_AM_I, &(), |a, b| a + b)
            .unwrap()
            .get();
        assert_eq!(sum, 3);
        c.shutdown();
    }

    #[test]
    fn tcp_parcel_conservation_and_wire_counters() {
        let c = tcp_cluster();
        let gid = c.new_component(1, Mutex::new(0i64));
        for _ in 0..20 {
            c.locality(0).apply(gid, ADD_TO, &1i64).unwrap();
        }
        let fs: Vec<_> = (0..10)
            .map(|i| {
                c.locality(i % 3)
                    .call::<(), u32>(c.system_gid((i + 1) % 3), WHERE_AM_I, &())
                    .unwrap()
            })
            .collect();
        for f in fs {
            f.get();
        }
        c.wait_idle();
        let cell = c.get_component::<Mutex<i64>>(gid).unwrap();
        assert_eq!(*cell.lock(), 20);
        // Σ sent == Σ received at the runtime-counter level…
        let (mut sent, mut received) = (0usize, 0usize);
        for loc in c.localities() {
            let snap = loc.runtime().perf_snapshot();
            sent += snap.parcels_sent;
            received += snap.parcels_received;
        }
        assert_eq!(sent, received, "parcel conservation violated over TCP");
        // …and at the wire level (every inter-locality parcel here
        // crosses a socket; none of these targets are self-sends).
        let ports = c.tcp_ports();
        let wire_sent: u64 = ports.iter().map(|p| p.parcels_sent()).sum();
        let wire_received: u64 = ports.iter().map(|p| p.parcels_received()).sum();
        assert_eq!(wire_sent, wire_received, "wire-level conservation violated");
        assert!(wire_sent >= 30, "wire_sent {wire_sent}");
        // Coalescing means fewer physical writes than parcels.
        let writes: u64 = ports.iter().map(|p| p.writes()).sum();
        assert!(writes <= wire_sent, "writes {writes} vs parcels {wire_sent}");
        // The wire counters surface through the introspection registry.
        let snap = c.counter_snapshot();
        let wire_counter: u64 = snap
            .iter()
            .filter(|(p, _)| p.object == "parcels" && p.name == "bytes/sent")
            .map(|(_, v)| v)
            .sum();
        assert!(wire_counter > 0, "/parcels/.../bytes/sent must be registered");
        c.shutdown();
    }

    #[test]
    fn tcp_heat_like_traffic_matches_inprocess_results() {
        // The same action workload on both transports must produce the
        // same component state.
        let run = |c: Cluster| -> i64 {
            let gid = c.new_component(2, Mutex::new(0i64));
            for k in 1..=15 {
                c.locality(k % 3).apply(gid, ADD_TO, &(k as i64)).unwrap();
            }
            c.wait_idle();
            let v = *c.get_component::<Mutex<i64>>(gid).unwrap().lock();
            c.shutdown();
            v
        };
        assert_eq!(run(cluster()), run(tcp_cluster()));
    }

    #[test]
    fn tcp_network_delay_composes_on_top() {
        let c = tcp_cluster();
        c.set_network_delay(Arc::new(|_p| Duration::from_millis(2)));
        let gid = c.new_component(1, ());
        let t = crate::util::HighResolutionTimer::new();
        let f = c
            .locality(0)
            .call::<String, String>(gid, ECHO, &"delayed".to_string())
            .unwrap();
        assert_eq!(f.get(), "delayed");
        assert!(t.elapsed() >= 0.004, "{}", t.elapsed());
        c.shutdown();
    }

    #[test]
    fn killed_peer_fails_pending_calls_with_peer_lost() {
        let c = tcp_cluster();
        c.register_action(60, "slow", |_, _, _| {
            std::thread::sleep(Duration::from_millis(400));
            Ok(vec![])
        });
        let gid = c.new_component(2, ());
        // In flight when the peer dies: must fail, not hang.
        let f = c.locality(0).async_action_raw(gid, 60, &()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        c.disconnect_locality(2);
        assert_eq!(f.try_get(), Err(Error::PeerLost(2)));
        // New calls to the dead locality fail fast too (possibly after
        // the loss propagates through the reader threads).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let f = c.locality(0).async_action_raw(gid, 60, &()).unwrap();
            if f.try_get() == Err(Error::PeerLost(2)) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "PeerLost never surfaced");
            std::thread::sleep(Duration::from_millis(20));
        }
        // wait_idle must not spin on the orphaned tokens.
        c.wait_idle();
        c.shutdown();
    }

    // ---- Resilient transport -------------------------------------------

    fn resilient_cluster(chaos: Option<ChaosSpec>) -> Cluster {
        let c = Cluster::new(3, 2);
        c.attach_tcp_resilient(tcp::TcpConfig::default(), ReliableConfig::default(), chaos)
            .unwrap();
        with_actions(c)
    }

    #[test]
    fn resilient_transport_without_chaos_matches_inprocess_results() {
        let run = |c: Cluster| -> i64 {
            let gid = c.new_component(2, Mutex::new(0i64));
            for k in 1..=15 {
                c.locality(k % 3).apply(gid, ADD_TO, &(k as i64)).unwrap();
            }
            c.wait_idle();
            let v = *c.get_component::<Mutex<i64>>(gid).unwrap().lock();
            c.shutdown();
            v
        };
        assert_eq!(run(cluster()), run(resilient_cluster(None)));
    }

    #[test]
    fn chaos_transport_heals_drops_dups_and_corruption() {
        let spec =
            crate::resilience::ChaosSpec::parse("seed=7,drop=10%,dup=5%,corrupt=3%,delay=1ms")
                .unwrap();
        let c = resilient_cluster(Some(spec));
        let gid = c.new_component(1, Mutex::new(0i64));
        for _ in 0..50 {
            c.locality(0).apply(gid, ADD_TO, &1i64).unwrap();
        }
        let f = c
            .locality(2)
            .call::<String, String>(c.system_gid(0), ECHO, &"through chaos".to_string())
            .unwrap();
        assert_eq!(f.get(), "through chaos");
        c.wait_idle();
        // Effectively-once despite injected drops, dups and corruption.
        assert_eq!(*c.get_component::<Mutex<i64>>(gid).unwrap().lock(), 50);
        let rels = c.reliable_ports();
        let sent: u64 = rels.iter().map(|p| p.data_sent()).sum();
        let delivered: u64 = rels.iter().map(|p| p.data_delivered()).sum();
        assert_eq!(sent, delivered, "logical ledger balances at idle");
        // The schedule above must actually have injected something, and
        // the injected faults surface through the counter registry.
        let faults = c.faulty_ports();
        let injected: u64 = faults
            .iter()
            .map(|f| f.injected_drops() + f.injected_dups() + f.injected_corrupts())
            .sum();
        assert!(injected > 0, "chaos spec injected no faults — seed too tame");
        let snap = c.counter_snapshot();
        let retransmits: u64 = snap
            .iter()
            .filter(|(p, _)| p.object == "resilience" && p.name == "count/retransmits")
            .map(|(_, v)| v)
            .sum();
        assert!(retransmits > 0, "drops must force retransmission");
        c.shutdown();
    }

    #[test]
    fn heartbeat_walks_silent_peer_to_dead_and_registers_counters() {
        let c = resilient_cluster(None);
        let hb = c.start_heartbeat(HeartbeatConfig {
            interval: Duration::from_millis(10),
            suspect_after: 3.0,
            dead_after: 6.0,
        });
        // Let a few rounds land, then kill locality 2's socket.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(c.locality(0).health().state(2), Some(crate::resilience::PeerState::Alive));
        c.disconnect_locality(2);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if c.locality(0).health().state(2) == Some(crate::resilience::PeerState::Dead) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "peer 2 never detected dead");
            std::thread::sleep(Duration::from_millis(10));
        }
        // Locality 1 is still healthy from 0's point of view.
        assert_eq!(c.locality(0).health().state(1), Some(crate::resilience::PeerState::Alive));
        let snap = c.counter_snapshot();
        let beats = snap
            .get(&CounterPath::new("resilience", 0, Instance::Total, "count/heartbeats-sent"))
            .unwrap();
        assert!(beats > 0);
        let state = snap
            .get(&CounterPath::new("resilience", 0, Instance::Total, "peer#2/state"))
            .unwrap();
        assert_eq!(state, 2, "dead peer gauges as 2");
        let misses = snap
            .get(&CounterPath::new("resilience", 0, Instance::Total, "count/heartbeat-misses"))
            .unwrap();
        assert!(misses > 0);
        hb.stop();
        c.shutdown();
    }

    #[test]
    fn response_timeout_fails_stuck_calls() {
        let c = tcp_cluster();
        c.set_response_timeout(Duration::from_millis(80));
        c.register_action(61, "sleepy", |_, _, payload| {
            let ms: u64 = serialize::from_bytes(payload)?;
            std::thread::sleep(Duration::from_millis(ms));
            Ok(vec![])
        });
        let gid = c.new_component(1, ());
        // Slower than the timeout: typed failure.
        let f = c.locality(0).async_action_raw(gid, 61, &300u64).unwrap();
        assert_eq!(f.try_get(), Err(Error::ResponseTimeout));
        // Faster than the timeout: unaffected (timer disarmed).
        let f = c.locality(0).async_action_raw(gid, 61, &1u64).unwrap();
        assert!(f.try_get().is_ok());
        c.wait_idle();
        c.shutdown();
    }
}
