//! Reliable delivery over an unreliable parcelport: per-peer sequence
//! numbers, positive acks with retransmission, receive-side dedup, and
//! an end-to-end payload checksum.
//!
//! The guarantee is **at-least-once transport + exactly-once handoff**:
//! a data parcel is retransmitted until acked, duplicates are dropped by
//! the receiver's sequence window, and a corrupted payload (checksum
//! mismatch) is treated as a drop so the retransmit path heals it. The
//! owner sink therefore sees every accepted parcel exactly once —
//! effectively-once action execution (DESIGN.md §10).
//!
//! Wire mapping: a data parcel is wrapped into a carrier parcel whose
//! action is [`RELIABLE_DATA`] and whose payload prepends
//! `[seq u64][orig action u32][flags u8][token u64][fnv1a32 u32]` to the
//! original payload. Acks are [`RELIABLE_ACK`] parcels carrying a list
//! of acknowledged sequence numbers (batched by a delayed-ack window so
//! the fault-free overhead stays low). Actions listed in
//! [`ReliableConfig::bypass_actions`] (heartbeats) skip the layer
//! entirely: liveness probes must not be healed into lies.

use crate::error::{Error, Result};
use crate::parcel::frame::{fnv1a32, fnv1a32_with};
use crate::parcel::{ActionId, Parcel, Parcelport, PortEvent, PortSink};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Carrier action for sequenced data parcels (reserved; never hits the
/// action registry — the layer unwraps before the delivery sink).
pub const RELIABLE_DATA: ActionId = 0xFFFF_FF00;

/// Carrier action for ack parcels.
pub const RELIABLE_ACK: ActionId = 0xFFFF_FF01;

/// Bytes prepended to a wrapped payload: seq + action + flags + token +
/// checksum.
const WRAP_HEADER: usize = 8 + 4 + 1 + 8 + 4;

const WRAP_FLAG_TOKEN: u8 = 0b0000_0001;

/// Tuning knobs for [`ReliableParcelport`].
#[derive(Clone, Debug)]
pub struct ReliableConfig {
    /// Retransmit an unacked parcel after this long.
    pub retransmit_timeout: Duration,
    /// Give up and declare the peer lost after this many retransmits of
    /// one parcel.
    pub max_retransmits: u32,
    /// Delayed-ack window: acks accumulate for up to this long before a
    /// batch ack parcel is sent.
    pub ack_flush: Duration,
    /// Actions sent around the layer, unsequenced and unacked
    /// (heartbeats — healing liveness probes would defeat them).
    pub bypass_actions: Vec<ActionId>,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            retransmit_timeout: Duration::from_millis(50),
            max_retransmits: 40,
            ack_flush: Duration::from_millis(1),
            bypass_actions: vec![super::heartbeat::HEARTBEAT_ACTION],
        }
    }
}

struct Unacked {
    parcel: Parcel, // the wrapped carrier, ready to resend
    sent_at: Instant,
    attempts: u32,
}

/// Receive-side dedup window for one source peer: everything below
/// `floor` was seen; `above` holds out-of-order seqs past it. Memory is
/// bounded by the sender's unacked window, not by traffic volume.
#[derive(Default)]
struct RecvWindow {
    floor: u64,
    above: BTreeSet<u64>,
}

impl RecvWindow {
    /// Record `seq`; returns false if it was already seen (duplicate).
    fn record(&mut self, seq: u64) -> bool {
        if seq < self.floor || self.above.contains(&seq) {
            return false;
        }
        self.above.insert(seq);
        while self.above.remove(&self.floor) {
            self.floor += 1;
        }
        true
    }
}

#[derive(Default)]
struct RelState {
    next_seq: HashMap<u32, u64>,
    unacked: HashMap<(u32, u64), Unacked>,
    recv: HashMap<u32, RecvWindow>,
    pending_acks: HashMap<u32, Vec<u64>>,
    dead_peers: HashSet<u32>,
}

/// The reliability decorator. Wraps any [`Parcelport`]; hand its
/// [`ReliableParcelport::inbound_sink`] to the inner port and attach the
/// inner port back with [`ReliableParcelport::attach_inner`].
pub struct ReliableParcelport {
    local: u32,
    cfg: ReliableConfig,
    inner: RwLock<Option<Arc<dyn Parcelport>>>,
    owner: PortSink,
    state: Mutex<RelState>,
    wake: Condvar,
    shutdown: AtomicBool,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Unique data parcels accepted from the owner (excludes
    /// retransmits, acks and bypass traffic).
    data_sent: AtomicU64,
    /// Unique data parcels forwarded to the owner (post-dedup). The
    /// cluster-wide invariant Σ`data_sent` == Σ`data_delivered` at idle
    /// is what keeps `wait_idle` exact under retransmission.
    data_delivered: AtomicU64,
    retransmits: AtomicU64,
    dup_drops: AtomicU64,
    corrupt_drops: AtomicU64,
    acks_sent: AtomicU64,
}

impl ReliableParcelport {
    /// Create the layer for locality `local`, delivering accepted
    /// parcels to `owner`.
    pub fn new(local: u32, cfg: ReliableConfig, owner: PortSink) -> Arc<ReliableParcelport> {
        let port = Arc::new(ReliableParcelport {
            local,
            cfg,
            inner: RwLock::new(None),
            owner,
            state: Mutex::new(RelState::default()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            thread: Mutex::new(None),
            data_sent: AtomicU64::new(0),
            data_delivered: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
            dup_drops: AtomicU64::new(0),
            corrupt_drops: AtomicU64::new(0),
            acks_sent: AtomicU64::new(0),
        });
        let weak = Arc::downgrade(&port);
        let handle = std::thread::Builder::new()
            .name(format!("parallex-retx-{local}"))
            .spawn(move || {
                while let Some(port) = weak.upgrade() {
                    if port.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    port.tick();
                    let period = port.cfg.ack_flush.min(port.cfg.retransmit_timeout / 4).max(Duration::from_micros(200));
                    let mut st = port.state.lock();
                    if !port.shutdown.load(Ordering::Acquire) {
                        port.wake.wait_for(&mut st, period);
                    }
                }
            })
            .expect("failed to spawn retransmit thread");
        *port.thread.lock() = Some(handle);
        port
    }

    /// Attach the wrapped transport (two-phase construction: the inner
    /// port needs this layer's sink, this layer needs the inner port).
    pub fn attach_inner(&self, inner: Arc<dyn Parcelport>) {
        *self.inner.write() = Some(inner);
    }

    fn inner(&self) -> Result<Arc<dyn Parcelport>> {
        self.inner.read().clone().ok_or_else(|| {
            Error::InvalidArgument("reliable parcelport has no inner transport attached".into())
        })
    }

    /// The sink to hand to the inner transport.
    pub fn inbound_sink(self: &Arc<Self>) -> PortSink {
        let me = self.clone();
        Arc::new(move |ev| me.on_inbound(ev))
    }

    /// Unique data parcels accepted from the owner.
    pub fn data_sent(&self) -> u64 {
        self.data_sent.load(Ordering::Relaxed)
    }

    /// Unique data parcels delivered to the owner (post-dedup).
    pub fn data_delivered(&self) -> u64 {
        self.data_delivered.load(Ordering::Relaxed)
    }

    /// Retransmissions performed.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.load(Ordering::Relaxed)
    }

    /// Duplicate data parcels dropped by the receive window.
    pub fn dup_drops(&self) -> u64 {
        self.dup_drops.load(Ordering::Relaxed)
    }

    /// Data parcels rejected by the end-to-end checksum (healed by
    /// retransmission).
    pub fn corrupt_drops(&self) -> u64 {
        self.corrupt_drops.load(Ordering::Relaxed)
    }

    /// Ack parcels sent.
    pub fn acks_sent(&self) -> u64 {
        self.acks_sent.load(Ordering::Relaxed)
    }

    /// Data parcels sent but not yet acknowledged.
    pub fn unacked(&self) -> usize {
        self.state.lock().unacked.len()
    }

    /// True once any peer has been declared lost (retransmits exhausted
    /// or the inner transport reported the loss). After that the logical
    /// sent/delivered ledger can never balance, so idle checks should
    /// stop consulting it.
    pub fn any_peer_lost(&self) -> bool {
        !self.state.lock().dead_peers.is_empty()
    }

    fn wrap(&self, parcel: &Parcel, seq: u64) -> Parcel {
        let mut payload = Vec::with_capacity(WRAP_HEADER + parcel.payload.len());
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.extend_from_slice(&parcel.action.to_le_bytes());
        payload.push(if parcel.response_token.is_some() { WRAP_FLAG_TOKEN } else { 0 });
        payload.extend_from_slice(&parcel.response_token.unwrap_or(0).to_le_bytes());
        // The checksum covers the carrier header too (seq/action/flags/
        // token): a bit flipped in the *sequence number* would otherwise
        // pass a payload-only check and ack the wrong parcel — a silent,
        // permanent loss.
        let cksum = fnv1a32_with(fnv1a32(&payload[..WRAP_HEADER - 4]), &parcel.payload);
        payload.extend_from_slice(&cksum.to_le_bytes());
        payload.extend_from_slice(&parcel.payload);
        Parcel {
            source: parcel.source,
            dest_locality: parcel.dest_locality,
            dest: parcel.dest,
            action: RELIABLE_DATA,
            payload: Bytes::from(payload),
            response_token: None,
        }
    }

    /// `(seq, rebuilt parcel)` if the carrier unwraps and passes the
    /// checksum; `Err(true)` means checksum failure, `Err(false)` means
    /// a structurally bad carrier.
    fn unwrap_carrier(carrier: &Parcel) -> std::result::Result<(u64, Parcel), bool> {
        let buf = &carrier.payload[..];
        if buf.len() < WRAP_HEADER {
            return Err(false);
        }
        let seq = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
        let action = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        let flags = buf[12];
        let token = u64::from_le_bytes(buf[13..21].try_into().expect("8 bytes"));
        let cksum = u32::from_le_bytes(buf[21..25].try_into().expect("4 bytes"));
        let payload = &buf[WRAP_HEADER..];
        if fnv1a32_with(fnv1a32(&buf[..WRAP_HEADER - 4]), payload) != cksum {
            return Err(true);
        }
        Ok((
            seq,
            Parcel {
                source: carrier.source,
                dest_locality: carrier.dest_locality,
                dest: carrier.dest,
                action,
                // Zero-copy view into the carrier: the payload is the
                // hot path's dominant allocation otherwise.
                payload: carrier.payload.slice(WRAP_HEADER..),
                response_token: (flags & WRAP_FLAG_TOKEN != 0).then_some(token),
            },
        ))
    }

    fn on_inbound(&self, ev: PortEvent) {
        match ev {
            PortEvent::Deliver(p) if p.action == RELIABLE_ACK => {
                // Acks carry a trailing checksum over the seq list: a
                // bit-flipped ack acknowledging the *wrong* sequence
                // would silently lose a parcel forever. A rejected ack
                // just means another retransmit round.
                let buf = &p.payload[..];
                let ok = buf.len() >= 4 && (buf.len() - 4) % 8 == 0 && {
                    let (seqs, tail) = buf.split_at(buf.len() - 4);
                    fnv1a32(seqs) == u32::from_le_bytes(tail.try_into().expect("4 bytes"))
                };
                if !ok {
                    self.corrupt_drops.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let mut st = self.state.lock();
                for chunk in buf[..buf.len() - 4].chunks_exact(8) {
                    let seq = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                    st.unacked.remove(&(p.source, seq));
                }
            }
            PortEvent::Deliver(p) if p.action == RELIABLE_DATA => {
                match Self::unwrap_carrier(&p) {
                    Ok((seq, parcel)) => {
                        let (fresh, first_ack) = {
                            let mut st = self.state.lock();
                            // Always ack, even duplicates: the dup means
                            // the sender missed (or has yet to see) an
                            // earlier ack.
                            let acks = st.pending_acks.entry(p.source).or_default();
                            let first_ack = acks.is_empty();
                            acks.push(seq);
                            (st.recv.entry(p.source).or_default().record(seq), first_ack)
                        };
                        // Wake the flush thread only when this parcel
                        // *opens* a batch; later arrivals ride the same
                        // flush. A per-parcel notify is a futex wake on
                        // the hot path and throttles small-parcel
                        // streams measurably.
                        if first_ack {
                            self.wake.notify_one();
                        }
                        if fresh {
                            // Forward before counting so an idle check
                            // can't observe "delivered" with the parcel
                            // still outside the delivery path.
                            (self.owner)(PortEvent::Deliver(parcel));
                            self.data_delivered.fetch_add(1, Ordering::Release);
                        } else {
                            self.dup_drops.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(true) => {
                        // Checksum mismatch: treat as a drop; no ack, so
                        // the sender retransmits the intact original.
                        self.corrupt_drops.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(false) => {
                        eprintln!(
                            "parallex: reliable layer dropped malformed carrier from locality {}",
                            p.source
                        );
                    }
                }
            }
            PortEvent::Deliver(p) => (self.owner)(PortEvent::Deliver(p)),
            PortEvent::PeerLost(peer) => {
                self.drop_peer_state(peer);
                (self.owner)(PortEvent::PeerLost(peer));
            }
        }
    }

    fn drop_peer_state(&self, peer: u32) {
        let mut st = self.state.lock();
        st.dead_peers.insert(peer);
        st.unacked.retain(|(p, _), _| *p != peer);
        st.pending_acks.remove(&peer);
    }

    /// One maintenance pass: flush batched acks, retransmit overdue
    /// parcels, declare peers dead after `max_retransmits`.
    fn tick(&self) {
        let Ok(inner) = self.inner() else { return };
        let now = Instant::now();
        let mut acks: Vec<(u32, Vec<u64>)> = Vec::new();
        let mut resend: Vec<Parcel> = Vec::new();
        let mut lost: Vec<u32> = Vec::new();
        {
            let mut st = self.state.lock();
            for (peer, seqs) in st.pending_acks.drain() {
                if !seqs.is_empty() {
                    acks.push((peer, seqs));
                }
            }
            let rto = self.cfg.retransmit_timeout;
            let max = self.cfg.max_retransmits;
            let mut give_up: Vec<u32> = Vec::new();
            for ((peer, _), entry) in st.unacked.iter_mut() {
                if now.duration_since(entry.sent_at) >= rto {
                    if entry.attempts >= max {
                        give_up.push(*peer);
                    } else {
                        entry.attempts += 1;
                        entry.sent_at = now;
                        resend.push(entry.parcel.clone());
                    }
                }
            }
            for peer in give_up {
                if st.dead_peers.insert(peer) {
                    lost.push(peer);
                }
                st.unacked.retain(|(p, _), _| *p != peer);
                st.pending_acks.remove(&peer);
            }
        }
        for (peer, seqs) in acks {
            let mut payload = Vec::with_capacity(seqs.len() * 8 + 4);
            for s in &seqs {
                payload.extend_from_slice(&s.to_le_bytes());
            }
            payload.extend_from_slice(&fnv1a32(&payload).to_le_bytes());
            let ack = Parcel {
                source: self.local,
                dest_locality: peer,
                dest: crate::agas::Gid { origin: peer, lid: 0 },
                action: RELIABLE_ACK,
                payload: Bytes::from(payload),
                response_token: None,
            };
            if inner.send(ack).is_ok() {
                self.acks_sent.fetch_add(1, Ordering::Relaxed);
            }
        }
        for parcel in resend {
            self.retransmits.fetch_add(1, Ordering::Relaxed);
            let _ = inner.send(parcel);
        }
        for peer in lost {
            eprintln!(
                "parallex: locality {} unreachable after {} retransmits; declaring lost",
                peer, self.cfg.max_retransmits
            );
            (self.owner)(PortEvent::PeerLost(peer));
        }
    }
}

impl Parcelport for ReliableParcelport {
    fn name(&self) -> &'static str {
        "reliable"
    }

    fn send(&self, parcel: Parcel) -> Result<()> {
        let inner = self.inner()?;
        if self.cfg.bypass_actions.contains(&parcel.action) {
            return inner.send(parcel);
        }
        let peer = parcel.dest_locality;
        let wrapped = {
            let mut st = self.state.lock();
            if st.dead_peers.contains(&peer) {
                return Err(Error::PeerLost(peer));
            }
            let seq_ref = st.next_seq.entry(peer).or_insert(0);
            let seq = *seq_ref;
            *seq_ref += 1;
            let wrapped = self.wrap(&parcel, seq);
            st.unacked.insert(
                (peer, seq),
                Unacked { parcel: wrapped.clone(), sent_at: Instant::now(), attempts: 0 },
            );
            wrapped
        };
        self.data_sent.fetch_add(1, Ordering::Release);
        match inner.send(wrapped) {
            Ok(()) => Ok(()),
            Err(e) => {
                // The first transmission never left; the retransmit
                // thread would only hammer a dead queue.
                self.drop_peer_state(peer);
                self.data_sent.fetch_sub(1, Ordering::Release);
                Err(e)
            }
        }
    }

    fn pending(&self) -> usize {
        self.inner.read().as_ref().map_or(0, |p| p.pending())
    }

    fn bytes_sent(&self) -> u64 {
        self.inner.read().as_ref().map_or(0, |p| p.bytes_sent())
    }

    fn writes(&self) -> u64 {
        self.inner.read().as_ref().map_or(0, |p| p.writes())
    }

    fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake.notify_all();
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
        if let Some(inner) = self.inner.read().clone() {
            inner.shutdown();
        }
    }
}

impl Drop for ReliableParcelport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake.notify_all();
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agas::Gid;

    fn parcel(src: u32, dst: u32, action: ActionId, payload: &[u8], token: Option<u64>) -> Parcel {
        Parcel {
            source: src,
            dest_locality: dst,
            dest: Gid { origin: dst, lid: 9 },
            action,
            payload: Bytes::from(payload.to_vec()),
            response_token: token,
        }
    }

    /// Loopback inner port: every send lands in the same layer's
    /// inbound sink (peer == self), good enough for wrap/dedup tests.
    struct Loopback {
        sink: Mutex<Option<PortSink>>,
    }

    impl Parcelport for Loopback {
        fn name(&self) -> &'static str {
            "loopback"
        }
        fn send(&self, parcel: Parcel) -> Result<()> {
            let sink = self.sink.lock().clone().unwrap();
            sink(PortEvent::Deliver(parcel));
            Ok(())
        }
        fn pending(&self) -> usize {
            0
        }
        fn bytes_sent(&self) -> u64 {
            0
        }
        fn writes(&self) -> u64 {
            0
        }
        fn shutdown(&self) {}
    }

    fn rig(cfg: ReliableConfig) -> (Arc<ReliableParcelport>, Arc<Mutex<Vec<Parcel>>>) {
        let seen: Arc<Mutex<Vec<Parcel>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let owner: PortSink = Arc::new(move |ev| {
            if let PortEvent::Deliver(p) = ev {
                seen2.lock().push(p);
            }
        });
        let rel = ReliableParcelport::new(0, cfg, owner);
        let loopback = Arc::new(Loopback { sink: Mutex::new(Some(rel.inbound_sink())) });
        rel.attach_inner(loopback);
        (rel, seen)
    }

    #[test]
    fn wrap_unwrap_roundtrips_token_and_payload() {
        let (rel, _) = rig(ReliableConfig::default());
        for token in [None, Some(0u64), Some(77)] {
            let p = parcel(0, 0, 0x42, b"data bytes", token);
            let w = rel.wrap(&p, 5);
            assert_eq!(w.action, RELIABLE_DATA);
            let (seq, back) = ReliableParcelport::unwrap_carrier(&w).unwrap();
            assert_eq!(seq, 5);
            assert_eq!(back.action, p.action);
            assert_eq!(back.payload, p.payload);
            assert_eq!(back.response_token, p.response_token);
        }
        rel.shutdown();
    }

    #[test]
    fn corrupted_wrapped_payload_is_rejected() {
        let (rel, _) = rig(ReliableConfig::default());
        let p = parcel(0, 0, 0x42, b"data bytes", None);
        let w = rel.wrap(&p, 1);
        let mut bytes = w.payload.to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        let mut corrupted = w;
        corrupted.payload = Bytes::from(bytes);
        assert!(matches!(ReliableParcelport::unwrap_carrier(&corrupted), Err(true)));
        rel.shutdown();
    }

    #[test]
    fn duplicates_are_dropped_and_delivery_is_exactly_once() {
        let (rel, seen) = rig(ReliableConfig::default());
        let p = parcel(0, 0, 0x42, b"one", None);
        let w = rel.wrap(&p, 0);
        let sink = rel.inbound_sink();
        sink(PortEvent::Deliver(w.clone()));
        sink(PortEvent::Deliver(w.clone()));
        sink(PortEvent::Deliver(w));
        assert_eq!(seen.lock().len(), 1, "exactly-once handoff");
        assert_eq!(rel.dup_drops(), 2);
        assert_eq!(rel.data_delivered(), 1);
        rel.shutdown();
    }

    #[test]
    fn recv_window_floor_advances_and_stays_bounded() {
        let mut w = RecvWindow::default();
        for seq in [1u64, 0, 2, 4, 3] {
            assert!(w.record(seq));
        }
        assert_eq!(w.floor, 5);
        assert!(w.above.is_empty(), "contiguous prefix collapses into the floor");
        assert!(!w.record(2), "below-floor is a duplicate");
    }

    #[test]
    fn loopback_send_acks_and_clears_unacked() {
        let (rel, seen) = rig(ReliableConfig {
            ack_flush: Duration::from_micros(200),
            ..ReliableConfig::default()
        });
        for i in 0..10u8 {
            rel.send(parcel(0, 0, 0x42, &[i], None)).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while (rel.unacked() > 0 || seen.lock().len() < 10) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(seen.lock().len(), 10);
        assert_eq!(rel.unacked(), 0, "acks cleared the retransmit buffer");
        assert_eq!(rel.data_sent(), 10);
        assert_eq!(rel.data_delivered(), 10);
        assert!(rel.acks_sent() >= 1);
        rel.shutdown();
    }

    #[test]
    fn bypass_actions_skip_sequencing() {
        let (rel, seen) = rig(ReliableConfig {
            bypass_actions: vec![0x99],
            ..ReliableConfig::default()
        });
        rel.send(parcel(0, 0, 0x99, b"hb", None)).unwrap();
        assert_eq!(rel.data_sent(), 0);
        assert_eq!(seen.lock().len(), 1, "bypass traffic is forwarded untouched");
        assert_eq!(seen.lock()[0].action, 0x99);
        rel.shutdown();
    }
}
