//! `parallex::resilience` — surviving faults on commodity clusters.
//!
//! AMT runtimes deployed on cheap Arm nodes (the paper's Kunpeng and
//! ThunderX2 boxes, the follow-up Raspberry Pi clusters) see flaky
//! networks and node loss as a matter of course; HPX ships
//! `hpx::resiliency` for exactly this. This module is our equivalent,
//! spanning three layers:
//!
//! * **Fault injection** ([`fault`]): a seeded, replayable [`FaultPlan`]
//!   drives the [`FaultyParcelport`] decorator (drop / duplicate /
//!   delay-reorder / bit-corrupt / crash / hang) and the runtime-level
//!   [`FaultInjector`] (task panics and stalls). Determinism is the
//!   point: any chaos failure replays from its seed.
//! * **Reliable delivery** ([`reliable`]): per-peer sequence numbers,
//!   ack/retransmit, receive-side dedup and an end-to-end payload
//!   checksum turn an unreliable transport into at-least-once delivery
//!   with exactly-once handoff.
//! * **Failure detection** ([`heartbeat`]) and **recovery combinators**
//!   ([`replay`]): phi-style peer liveness over heartbeat parcels, and
//!   HPX-style `async_replay` / `async_replicate` on futures.

pub mod fault;
pub mod heartbeat;
pub mod reliable;
pub mod replay;

pub use fault::{ChaosSpec, FaultInjector, FaultPlan, FaultyParcelport, SendFate, SplitMix64, TaskFate};
pub use heartbeat::{HeartbeatConfig, PeerHealth, PeerState, HEARTBEAT_ACTION};
pub use reliable::{ReliableConfig, ReliableParcelport, RELIABLE_ACK, RELIABLE_DATA};
pub use replay::{async_replay, async_replicate, async_replicate_vote, replay_sync, retry};
