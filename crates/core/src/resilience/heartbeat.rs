//! Heartbeat-based failure detection: per-peer liveness state driven by
//! periodic heartbeat parcels and a phi-style suspicion score.
//!
//! Each locality records the arrival times of its peers' heartbeats in a
//! [`PeerHealth`] table. The monitor (see `Cluster::start_heartbeat`)
//! periodically computes a suspicion score per peer —
//! `elapsed / max(observed mean interval, configured interval)` — and
//! walks the peer through [`PeerState::Alive`] → `Suspect` → `Dead` as
//! the score crosses the configured thresholds. A late heartbeat
//! resurrects the peer (network partitions heal).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Action id carrying heartbeats (registered by
/// `Cluster::start_heartbeat`; listed in
/// [`super::reliable::ReliableConfig::bypass_actions`] so the
/// reliability layer never "heals" a liveness probe).
pub const HEARTBEAT_ACTION: crate::parcel::ActionId = 0xFFFF_4842;

/// Liveness verdict for one peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerState {
    /// Heartbeats arriving on schedule.
    Alive,
    /// Overdue past the suspect threshold.
    Suspect,
    /// Overdue past the dead threshold.
    Dead,
}

impl PeerState {
    /// Counter encoding (0/1/2) for `/resilience{...}/peer#P/state`.
    pub fn as_u64(self) -> u64 {
        match self {
            PeerState::Alive => 0,
            PeerState::Suspect => 1,
            PeerState::Dead => 2,
        }
    }
}

/// Heartbeat protocol tuning.
#[derive(Clone, Debug)]
pub struct HeartbeatConfig {
    /// How often each locality pings every peer.
    pub interval: Duration,
    /// Suspicion score (missed-interval multiples) at which a peer turns
    /// [`PeerState::Suspect`].
    pub suspect_after: f64,
    /// Suspicion score at which a peer turns [`PeerState::Dead`].
    pub dead_after: f64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig { interval: Duration::from_millis(50), suspect_after: 4.0, dead_after: 10.0 }
    }
}

struct PeerStat {
    last: Instant,
    /// EWMA of observed inter-arrival times, in microseconds (the "phi"
    /// denominator adapts to real jitter instead of trusting the config).
    mean_us: f64,
    beats: u64,
    state: PeerState,
    /// Expected-beat slots already counted as missed (so each miss is
    /// counted once, not once per evaluation).
    missed_counted: u64,
}

/// Result of one [`PeerHealth::evaluate`] pass.
#[derive(Debug, Default)]
pub struct EvalReport {
    /// `(peer, old state, new state)` for every transition this pass.
    pub transitions: Vec<(u32, PeerState, PeerState)>,
    /// Newly detected missed heartbeats (for the miss counter).
    pub new_misses: u64,
}

/// Per-locality table of peer liveness, fed by heartbeat arrivals.
#[derive(Default)]
pub struct PeerHealth {
    peers: Mutex<HashMap<u32, PeerStat>>,
}

impl PeerHealth {
    /// Empty table.
    pub fn new() -> PeerHealth {
        PeerHealth::default()
    }

    /// Record a heartbeat arrival from `peer`. Returns the peer's state
    /// before the arrival (so callers can count recoveries).
    pub fn record_heartbeat(&self, peer: u32) -> PeerState {
        let now = Instant::now();
        let mut peers = self.peers.lock();
        let stat = peers.entry(peer).or_insert(PeerStat {
            last: now,
            mean_us: 0.0,
            beats: 0,
            state: PeerState::Alive,
            missed_counted: 0,
        });
        let prev = stat.state;
        if stat.beats > 0 {
            let d = now.duration_since(stat.last).as_micros() as f64;
            stat.mean_us = if stat.beats == 1 { d } else { 0.8 * stat.mean_us + 0.2 * d };
        }
        stat.last = now;
        stat.beats += 1;
        stat.state = PeerState::Alive;
        stat.missed_counted = 0;
        prev
    }

    /// Suspicion score for `peer` right now (0 when unknown).
    pub fn suspicion(&self, peer: u32, cfg: &HeartbeatConfig) -> f64 {
        let peers = self.peers.lock();
        let Some(stat) = peers.get(&peer) else { return 0.0 };
        Self::phi(stat, Instant::now(), cfg)
    }

    fn phi(stat: &PeerStat, now: Instant, cfg: &HeartbeatConfig) -> f64 {
        let expected_us = (cfg.interval.as_micros() as f64).max(stat.mean_us).max(1.0);
        now.duration_since(stat.last).as_micros() as f64 / expected_us
    }

    /// Re-score every known peer and apply state transitions.
    pub fn evaluate(&self, cfg: &HeartbeatConfig) -> EvalReport {
        let now = Instant::now();
        let mut report = EvalReport::default();
        let mut peers = self.peers.lock();
        for (peer, stat) in peers.iter_mut() {
            let phi = Self::phi(stat, now, cfg);
            let missed = phi as u64;
            if missed > stat.missed_counted {
                report.new_misses += missed - stat.missed_counted;
                stat.missed_counted = missed;
            }
            let next = if phi >= cfg.dead_after {
                PeerState::Dead
            } else if phi >= cfg.suspect_after {
                PeerState::Suspect
            } else {
                PeerState::Alive
            };
            // Only arrivals resurrect: evaluate() never walks a peer
            // back toward Alive on its own.
            let worse = next.as_u64() > stat.state.as_u64();
            if worse {
                report.transitions.push((*peer, stat.state, next));
                stat.state = next;
            }
        }
        report
    }

    /// Current state of `peer` (None if it never sent a heartbeat).
    pub fn state(&self, peer: u32) -> Option<PeerState> {
        self.peers.lock().get(&peer).map(|s| s.state)
    }

    /// Snapshot of all known peers.
    pub fn states(&self) -> Vec<(u32, PeerState)> {
        let mut v: Vec<(u32, PeerState)> =
            self.peers.lock().iter().map(|(p, s)| (*p, s.state)).collect();
        v.sort_by_key(|(p, _)| *p);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> HeartbeatConfig {
        HeartbeatConfig {
            interval: Duration::from_millis(5),
            suspect_after: 2.0,
            dead_after: 5.0,
        }
    }

    #[test]
    fn fresh_heartbeats_keep_peer_alive() {
        let h = PeerHealth::new();
        h.record_heartbeat(1);
        let report = h.evaluate(&fast_cfg());
        assert!(report.transitions.is_empty());
        assert_eq!(h.state(1), Some(PeerState::Alive));
    }

    #[test]
    fn silence_walks_peer_through_suspect_to_dead() {
        let cfg = fast_cfg();
        let h = PeerHealth::new();
        h.record_heartbeat(2);
        std::thread::sleep(cfg.interval * 3);
        let report = h.evaluate(&cfg);
        assert_eq!(report.transitions, vec![(2, PeerState::Alive, PeerState::Suspect)]);
        assert!(report.new_misses >= 1);
        std::thread::sleep(cfg.interval * 4);
        let report = h.evaluate(&cfg);
        assert_eq!(report.transitions, vec![(2, PeerState::Suspect, PeerState::Dead)]);
        assert_eq!(h.state(2), Some(PeerState::Dead));
    }

    #[test]
    fn late_heartbeat_resurrects_a_dead_peer() {
        let cfg = fast_cfg();
        let h = PeerHealth::new();
        h.record_heartbeat(3);
        std::thread::sleep(cfg.interval * 8);
        h.evaluate(&cfg);
        assert_eq!(h.state(3), Some(PeerState::Dead));
        let prev = h.record_heartbeat(3);
        assert_eq!(prev, PeerState::Dead, "caller sees the recovery transition");
        assert_eq!(h.state(3), Some(PeerState::Alive));
    }

    #[test]
    fn misses_are_counted_once_per_expected_slot() {
        let cfg = fast_cfg();
        let h = PeerHealth::new();
        h.record_heartbeat(4);
        std::thread::sleep(cfg.interval * 3);
        let a = h.evaluate(&cfg).new_misses;
        let b = h.evaluate(&cfg).new_misses;
        assert!(a >= 1);
        assert!(b <= 1, "immediate re-evaluation must not recount the same misses");
    }
}
