//! Deterministic fault injection: seeded chaos plans, a faulty
//! parcelport decorator, and a runtime-level task fault injector.
//!
//! Everything here is driven by a [`FaultPlan`]: a pure function from
//! `(seed, stream, event index)` to a fault decision. Two plans built
//! from the same [`ChaosSpec`] produce bit-identical schedules, so any
//! chaos failure replays exactly from its seed — the property the
//! determinism proptest in `tests/resilience.rs` pins down.

use crate::error::{Error, Result};
use crate::parcel::{Parcel, Parcelport, PortEvent, TimerWheel};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// SplitMix64: tiny, high-quality, dependency-free PRNG. Good enough for
/// fault schedules; NOT cryptographic.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Parsed chaos specification, e.g.
/// `seed=1337,drop=5%,dup=2%,delay=2ms,corrupt=1%,panics=1`.
///
/// Fields:
/// - `seed=<u64>`   — PRNG seed (the replay handle)
/// - `drop=<p>%`    — probability a parcel is silently dropped
/// - `dup=<p>%`     — probability a parcel is sent twice
/// - `corrupt=<p>%` — probability one payload bit is flipped
/// - `delay=<dur>`  — extra latency injected into delayed parcels
///   (`2ms`, `500us`, `1s`); because later parcels overtake a delayed
///   one, this is also the reordering knob
/// - `delayp=<p>%`  — probability a parcel is delayed (defaults to 10%
///   when `delay` is set, 0 otherwise)
/// - `panics=<n>`   — number of task panics to inject (consumed by the
///   chaos driver via [`FaultPlan::panic_steps`] / [`FaultInjector`])
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSpec {
    /// PRNG seed; the whole schedule is a pure function of it.
    pub seed: u64,
    /// Drop probability in `[0, 1]`.
    pub drop: f64,
    /// Duplication probability in `[0, 1]`.
    pub dup: f64,
    /// Payload bit-corruption probability in `[0, 1]`.
    pub corrupt: f64,
    /// Injected delay duration for delayed parcels.
    pub delay: Duration,
    /// Probability a parcel is delayed by `delay`.
    pub delay_p: f64,
    /// Number of task panics the chaos driver should inject.
    pub panics: u32,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            seed: 0x5EED,
            drop: 0.0,
            dup: 0.0,
            corrupt: 0.0,
            delay: Duration::ZERO,
            delay_p: 0.0,
            panics: 0,
        }
    }
}

impl ChaosSpec {
    /// The pinned CI chaos spec: every fault class at once, fixed seed.
    pub fn pinned() -> ChaosSpec {
        ChaosSpec {
            seed: 1337,
            drop: 0.05,
            dup: 0.02,
            corrupt: 0.01,
            delay: Duration::from_millis(2),
            delay_p: 0.10,
            panics: 1,
        }
    }

    /// The canonical `key=value,...` form: `parse(render())` roundtrips
    /// exactly. Probabilities are emitted as raw fractions (shortest
    /// f64 round-trip) and the delay in nanoseconds, so the string can
    /// cross a process boundary (the chaos worker's argv) losslessly.
    pub fn render(&self) -> String {
        format!(
            "seed={},drop={},dup={},corrupt={},delay={}ns,delayp={},panics={}",
            self.seed,
            self.drop,
            self.dup,
            self.corrupt,
            self.delay.as_nanos(),
            self.delay_p,
            self.panics,
        )
    }

    /// Parse a `key=value,...` spec string (see type docs for the keys).
    pub fn parse(s: &str) -> Result<ChaosSpec> {
        let mut spec = ChaosSpec::default();
        let mut delay_p_set = false;
        for tok in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| Error::InvalidArgument(format!("chaos: expected key=value, got {tok:?}")))?;
            match key.trim() {
                "seed" => spec.seed = parse_u64(val)?,
                "drop" => spec.drop = parse_percent(val)?,
                "dup" => spec.dup = parse_percent(val)?,
                "corrupt" => spec.corrupt = parse_percent(val)?,
                "delay" => spec.delay = parse_duration(val)?,
                "delayp" => {
                    spec.delay_p = parse_percent(val)?;
                    delay_p_set = true;
                }
                "panics" => spec.panics = parse_u64(val)? as u32,
                other => {
                    return Err(Error::InvalidArgument(format!("chaos: unknown key {other:?}")))
                }
            }
        }
        if !delay_p_set && !spec.delay.is_zero() {
            spec.delay_p = 0.10;
        }
        let total = spec.drop + spec.dup + spec.corrupt + spec.delay_p;
        if total > 1.0 {
            return Err(Error::InvalidArgument(format!(
                "chaos: fault probabilities sum to {total:.2} > 1"
            )));
        }
        Ok(spec)
    }
}

impl std::fmt::Display for ChaosSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed={},drop={}%,dup={}%,corrupt={}%,delay={}us,delayp={}%,panics={}",
            self.seed,
            self.drop * 100.0,
            self.dup * 100.0,
            self.corrupt * 100.0,
            self.delay.as_micros(),
            self.delay_p * 100.0,
            self.panics
        )
    }
}

fn parse_u64(v: &str) -> Result<u64> {
    v.trim()
        .parse()
        .map_err(|_| Error::InvalidArgument(format!("chaos: bad integer {v:?}")))
}

fn parse_percent(v: &str) -> Result<f64> {
    let v = v.trim();
    let (num, scale) =
        if let Some(p) = v.strip_suffix('%') { (p, 100.0) } else { (v, 1.0) };
    let x: f64 = num
        .trim()
        .parse()
        .map_err(|_| Error::InvalidArgument(format!("chaos: bad probability {v:?}")))?;
    let p = x / scale;
    if !(0.0..=1.0).contains(&p) {
        return Err(Error::InvalidArgument(format!("chaos: probability {v:?} out of [0,1]")));
    }
    Ok(p)
}

fn parse_duration(v: &str) -> Result<Duration> {
    let v = v.trim();
    let (num, unit): (&str, fn(u64) -> Duration) = if let Some(n) = v.strip_suffix("ms") {
        (n, Duration::from_millis)
    } else if let Some(n) = v.strip_suffix("us") {
        (n, Duration::from_micros)
    } else if let Some(n) = v.strip_suffix("ns") {
        (n, Duration::from_nanos)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, Duration::from_secs)
    } else {
        return Err(Error::InvalidArgument(format!(
            "chaos: duration {v:?} needs a unit (ns/us/ms/s)"
        )));
    };
    let x: u64 = num
        .trim()
        .parse()
        .map_err(|_| Error::InvalidArgument(format!("chaos: bad duration {v:?}")))?;
    Ok(unit(x))
}

/// What the plan decided for one outbound parcel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SendFate {
    /// Pass through untouched.
    Deliver,
    /// Silently discard.
    Drop,
    /// Send twice.
    Duplicate,
    /// Defer by this much — later parcels overtake it (reordering).
    Delay(Duration),
    /// Flip bit `bit` of payload byte `byte_seed % payload_len`.
    Corrupt {
        /// Reduced modulo the payload length at injection time.
        byte_seed: u64,
        /// Bit index 0..8.
        bit: u8,
    },
}

/// A replayable fault schedule: a pure function from event index to
/// [`SendFate`], plus a consumption counter for live injection.
///
/// `stream` decorrelates multiple plans built from one spec (one per
/// locality/process) while keeping each individually replayable.
#[derive(Debug)]
pub struct FaultPlan {
    spec: ChaosSpec,
    stream: u64,
    counter: AtomicU64,
}

impl FaultPlan {
    /// Plan on stream 0.
    pub fn new(spec: ChaosSpec) -> FaultPlan {
        FaultPlan::for_stream(spec, 0)
    }

    /// Plan on a decorrelated sub-stream (e.g. one per locality).
    pub fn for_stream(spec: ChaosSpec, stream: u64) -> FaultPlan {
        FaultPlan { spec, stream, counter: AtomicU64::new(0) }
    }

    /// The spec this plan was built from.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// Fate of the `index`-th send event — pure, timing-independent.
    pub fn fate_at(&self, index: u64) -> SendFate {
        let mut rng = SplitMix64::new(
            self.spec
                .seed
                .wrapping_add(self.stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        );
        rng.next_u64(); // decorrelate nearby seeds
        let roll = rng.next_f64();
        let mut acc = self.spec.drop;
        if roll < acc {
            return SendFate::Drop;
        }
        acc += self.spec.dup;
        if roll < acc {
            return SendFate::Duplicate;
        }
        acc += self.spec.corrupt;
        if roll < acc {
            return SendFate::Corrupt { byte_seed: rng.next_u64(), bit: (rng.next_u64() & 7) as u8 };
        }
        acc += self.spec.delay_p;
        if roll < acc && !self.spec.delay.is_zero() {
            return SendFate::Delay(self.spec.delay);
        }
        SendFate::Deliver
    }

    /// Fate of the next live send event (advances the counter).
    pub fn next_fate(&self) -> SendFate {
        self.fate_at(self.counter.fetch_add(1, Ordering::Relaxed))
    }

    /// The first `n` fates — the replayable schedule the determinism
    /// proptest compares across plan instances.
    pub fn schedule(&self, n: usize) -> Vec<SendFate> {
        (0..n as u64).map(|i| self.fate_at(i)).collect()
    }

    /// Choose `spec.panics` distinct indices in `[0, total)` at which the
    /// chaos driver injects a task panic. Deterministic in the seed.
    pub fn panic_steps(&self, total: u64) -> BTreeSet<u64> {
        let mut rng = SplitMix64::new(self.spec.seed ^ 0x7061_6e69_635f_6174); // "panic_at"
        let mut out = BTreeSet::new();
        if total == 0 {
            return out;
        }
        while out.len() < self.spec.panics.min(total as u32) as usize {
            out.insert(rng.next_u64() % total);
        }
        out
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PeerGate {
    Open,
    /// Sends fail with `PeerLost` — a crashed peer.
    Crashed,
    /// Sends are silently swallowed — a hung peer (worse than a crash:
    /// no error ever surfaces from the transport itself).
    Hung,
}

/// A [`Parcelport`] decorator that injects the faults a [`FaultPlan`]
/// schedules: drop, duplicate, delay/reorder, payload bit-corruption,
/// and manual peer crash/hang gates.
///
/// It sits *above* framing, so injected corruption models end-to-end
/// damage the wire checksum cannot see — exactly what the reliability
/// layer's payload checksum exists to catch.
pub struct FaultyParcelport {
    inner: Arc<dyn Parcelport>,
    plan: Arc<FaultPlan>,
    timer: TimerWheel,
    gates: Mutex<HashMap<u32, PeerGate>>,
    sink: Option<crate::parcel::PortSink>,
    drops: AtomicU64,
    dups: AtomicU64,
    delays: AtomicU64,
    corrupts: AtomicU64,
}

impl FaultyParcelport {
    /// Wrap `inner`, injecting faults per `plan`. `sink` (the owner's
    /// event sink) is only used to surface `PeerLost` for crashed gates.
    pub fn new(
        inner: Arc<dyn Parcelport>,
        plan: Arc<FaultPlan>,
        sink: Option<crate::parcel::PortSink>,
    ) -> Arc<FaultyParcelport> {
        Arc::new(FaultyParcelport {
            inner,
            plan,
            timer: TimerWheel::new(),
            gates: Mutex::new(HashMap::new()),
            sink,
            drops: AtomicU64::new(0),
            dups: AtomicU64::new(0),
            delays: AtomicU64::new(0),
            corrupts: AtomicU64::new(0),
        })
    }

    /// Simulate a peer crash: subsequent sends to `peer` fail with
    /// [`Error::PeerLost`] and the owner sink (if any) is notified.
    pub fn crash_peer(&self, peer: u32) {
        self.gates.lock().insert(peer, PeerGate::Crashed);
        if let Some(sink) = &self.sink {
            sink(PortEvent::PeerLost(peer));
        }
    }

    /// Simulate a hung peer: subsequent sends to `peer` are silently
    /// swallowed (no error, no delivery).
    pub fn hang_peer(&self, peer: u32) {
        self.gates.lock().insert(peer, PeerGate::Hung);
    }

    /// Reopen a crashed/hung peer gate.
    pub fn heal_peer(&self, peer: u32) {
        self.gates.lock().remove(&peer);
    }

    /// Parcels dropped so far.
    pub fn injected_drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Parcels duplicated so far.
    pub fn injected_dups(&self) -> u64 {
        self.dups.load(Ordering::Relaxed)
    }

    /// Parcels delayed so far.
    pub fn injected_delays(&self) -> u64 {
        self.delays.load(Ordering::Relaxed)
    }

    /// Parcels bit-corrupted so far.
    pub fn injected_corrupts(&self) -> u64 {
        self.corrupts.load(Ordering::Relaxed)
    }

    /// The plan driving this port.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl Parcelport for FaultyParcelport {
    fn name(&self) -> &'static str {
        "faulty"
    }

    fn send(&self, parcel: Parcel) -> Result<()> {
        let peer = parcel.dest_locality;
        match self.gates.lock().get(&peer).copied().unwrap_or(PeerGate::Open) {
            PeerGate::Crashed => return Err(Error::PeerLost(peer)),
            PeerGate::Hung => return Ok(()),
            PeerGate::Open => {}
        }
        match self.plan.next_fate() {
            SendFate::Deliver => self.inner.send(parcel),
            SendFate::Drop => {
                self.drops.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            SendFate::Duplicate => {
                self.dups.fetch_add(1, Ordering::Relaxed);
                self.inner.send(parcel.clone())?;
                self.inner.send(parcel)
            }
            SendFate::Delay(d) => {
                self.delays.fetch_add(1, Ordering::Relaxed);
                let inner = self.inner.clone();
                // A delayed parcel that outlives the port is dropped — a
                // fault injector losing a parcel at shutdown is in-contract.
                self.timer.schedule(d, move || {
                    let _ = inner.send(parcel);
                });
                Ok(())
            }
            SendFate::Corrupt { byte_seed, bit } => {
                self.corrupts.fetch_add(1, Ordering::Relaxed);
                if parcel.payload.is_empty() {
                    return self.inner.send(parcel);
                }
                let mut bytes = parcel.payload.to_vec();
                let at = (byte_seed % bytes.len() as u64) as usize;
                bytes[at] ^= 1 << bit;
                let mut corrupted = parcel;
                corrupted.payload = Bytes::from(bytes);
                self.inner.send(corrupted)
            }
        }
    }

    fn pending(&self) -> usize {
        self.timer.pending() + self.inner.pending()
    }

    fn bytes_sent(&self) -> u64 {
        self.inner.bytes_sent()
    }

    fn writes(&self) -> u64 {
        self.inner.writes()
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }
}

/// What the runtime-level injector decided for one task execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskFate {
    /// Run normally.
    Run,
    /// Panic before the task body runs.
    Panic,
    /// Sleep this long, then run.
    Stall(Duration),
}

/// Runtime-level fault injector: makes chosen task executions panic or
/// stall. Installed via `Runtime::set_fault_injector`; always compiled
/// in (cfg-free) — the hot-path cost when absent is one relaxed load.
///
/// Note a panic injected here fires *outside* an `async_task`'s promise
/// wrapper, so the task's future fails with
/// [`Error::BrokenPromise`] rather than `TaskPanicked`; the replay
/// combinators treat both as retryable.
#[derive(Debug)]
pub struct FaultInjector {
    panic_at: Mutex<BTreeSet<u64>>,
    stall_p: f64,
    stall: Duration,
    seed: u64,
    counter: AtomicU64,
    injected_panics: AtomicU64,
    injected_stalls: AtomicU64,
}

impl FaultInjector {
    /// Injector that panics the given task indices (in runtime execution
    /// order) and stalls each task with probability `stall_p` for
    /// `stall`.
    pub fn new(seed: u64, panic_tasks: &[u64], stall_p: f64, stall: Duration) -> FaultInjector {
        assert!((0.0..=1.0).contains(&stall_p), "stall probability out of [0,1]");
        FaultInjector {
            panic_at: Mutex::new(panic_tasks.iter().copied().collect()),
            stall_p,
            stall,
            seed,
            counter: AtomicU64::new(0),
            injected_panics: AtomicU64::new(0),
            injected_stalls: AtomicU64::new(0),
        }
    }

    /// Decide the fate of the next task execution.
    pub fn next_fate(&self) -> TaskFate {
        let idx = self.counter.fetch_add(1, Ordering::Relaxed);
        if self.panic_at.lock().remove(&idx) {
            self.injected_panics.fetch_add(1, Ordering::Relaxed);
            return TaskFate::Panic;
        }
        if self.stall_p > 0.0 {
            let mut rng =
                SplitMix64::new(self.seed.wrapping_add(idx.wrapping_mul(0xA076_1D64_78BD_642F)));
            if rng.next_f64() < self.stall_p {
                self.injected_stalls.fetch_add(1, Ordering::Relaxed);
                return TaskFate::Stall(self.stall);
            }
        }
        TaskFate::Run
    }

    /// Panics injected so far.
    pub fn injected_panics(&self) -> u64 {
        self.injected_panics.load(Ordering::Relaxed)
    }

    /// Stalls injected so far.
    pub fn injected_stalls(&self) -> u64 {
        self.injected_stalls.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_the_readme_example() {
        let s = ChaosSpec::parse("seed=42,drop=5%,dup=2%,delay=2ms").unwrap();
        assert_eq!(s.seed, 42);
        assert!((s.drop - 0.05).abs() < 1e-12);
        assert!((s.dup - 0.02).abs() < 1e-12);
        assert_eq!(s.delay, Duration::from_millis(2));
        assert!((s.delay_p - 0.10).abs() < 1e-12, "delayp defaults to 10% when delay set");
    }

    #[test]
    fn spec_render_parse_roundtrips_exactly() {
        for spec in [
            ChaosSpec::pinned(),
            ChaosSpec::default(),
            ChaosSpec::parse("seed=9,drop=3.5%,delay=750us,delayp=12%,panics=2").unwrap(),
        ] {
            assert_eq!(ChaosSpec::parse(&spec.render()).unwrap(), spec, "{}", spec.render());
        }
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(ChaosSpec::parse("drop").is_err());
        assert!(ChaosSpec::parse("drop=banana%").is_err());
        assert!(ChaosSpec::parse("delay=5").is_err(), "duration needs a unit");
        assert!(ChaosSpec::parse("drop=150%").is_err());
        assert!(ChaosSpec::parse("drop=60%,dup=60%").is_err(), "probabilities must sum <= 1");
        assert!(ChaosSpec::parse("frobnicate=1").is_err());
    }

    #[test]
    fn plan_is_deterministic_and_streams_decorrelate() {
        let spec = ChaosSpec::parse("seed=7,drop=20%,dup=10%,corrupt=5%,delay=1ms").unwrap();
        let a = FaultPlan::for_stream(spec.clone(), 1);
        let b = FaultPlan::for_stream(spec.clone(), 1);
        assert_eq!(a.schedule(500), b.schedule(500));
        let c = FaultPlan::for_stream(spec, 2);
        assert_ne!(a.schedule(500), c.schedule(500), "different streams differ");
    }

    #[test]
    fn live_counter_matches_pure_schedule() {
        let spec = ChaosSpec::parse("seed=9,drop=30%").unwrap();
        let plan = FaultPlan::new(spec.clone());
        let live: Vec<SendFate> = (0..100).map(|_| plan.next_fate()).collect();
        assert_eq!(live, FaultPlan::new(spec).schedule(100));
    }

    #[test]
    fn panic_steps_are_deterministic_and_bounded() {
        let spec = ChaosSpec { panics: 3, ..ChaosSpec::default() };
        let plan = FaultPlan::new(spec.clone());
        let a = plan.panic_steps(40);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|&s| s < 40));
        assert_eq!(a, FaultPlan::new(spec).panic_steps(40));
    }

    #[test]
    fn injector_panics_exactly_at_requested_indices() {
        let inj = FaultInjector::new(1, &[2], 0.0, Duration::ZERO);
        let fates: Vec<TaskFate> = (0..5).map(|_| inj.next_fate()).collect();
        assert_eq!(
            fates,
            vec![TaskFate::Run, TaskFate::Run, TaskFate::Panic, TaskFate::Run, TaskFate::Run]
        );
        assert_eq!(inj.injected_panics(), 1);
    }
}
