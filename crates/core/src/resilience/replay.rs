//! HPX-style recovery combinators: task replay and task replication.
//!
//! `hpx::resiliency` offers `async_replay` (re-run a failed task) and
//! `async_replicate` (run n copies, keep the first good answer); these
//! are their equivalents on our futures. A task failure here means a
//! panic ([`Error::TaskPanicked`]) or a promise that died with its task
//! ([`Error::BrokenPromise`] — what an injected runtime-level panic
//! produces); genuine application errors returned as values are not
//! retried.

use crate::error::{Error, Result};
use crate::lcos::future::Future;
use crate::runtime::Runtime;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Failures the combinators consider transient and retryable.
fn retryable(e: &Error) -> bool {
    matches!(e, Error::TaskPanicked(_) | Error::BrokenPromise)
}

/// Run `f` as a task, re-spawning it on panic up to `n` total attempts
/// (HPX `async_replay`). The future carries the first success, or —
/// once attempts are exhausted — the error of the final attempt.
pub fn async_replay<T, F>(rt: &Runtime, n: usize, f: F) -> Future<T>
where
    T: Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    assert!(n >= 1, "async_replay needs at least one attempt");
    let mut promise = rt.make_promise();
    let future = promise.future();
    replay_attempt(rt.clone(), Arc::new(f), n, promise);
    future
}

fn replay_attempt<T, F>(rt: Runtime, f: Arc<F>, left: usize, promise: crate::lcos::future::Promise<T>)
where
    T: Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    let job = {
        let f = f.clone();
        move || f()
    };
    let rt2 = rt.clone();
    rt.async_task(job).on_complete(move |res| match res {
        Ok(v) => promise.set_value(v),
        Err(e) if left > 1 && retryable(&e) => replay_attempt(rt2, f, left - 1, promise),
        Err(e) => promise.set_error(e),
    });
}

/// Spawn `n` concurrent copies of `f`; the future carries the first
/// successful result (HPX `async_replicate`). Losing copies keep
/// running to completion but their results are ignored; if every copy
/// fails, the last failure surfaces.
pub fn async_replicate<T, F>(rt: &Runtime, n: usize, f: F) -> Future<T>
where
    T: Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    assert!(n >= 1, "async_replicate needs at least one copy");
    let mut promise = rt.make_promise();
    let future = promise.future();
    // (winner slot, failure count)
    let state = Arc::new(Mutex::new((Some(promise), 0usize)));
    let f = Arc::new(f);
    for _ in 0..n {
        let state = state.clone();
        let job = {
            let f = f.clone();
            move || f()
        };
        rt.async_task(job).on_complete(move |res| {
            let mut st = state.lock();
            match res {
                Ok(v) => {
                    if let Some(p) = st.0.take() {
                        p.set_value(v);
                    }
                }
                Err(e) => {
                    st.1 += 1;
                    if st.1 == n {
                        if let Some(p) = st.0.take() {
                            p.set_error(e);
                        }
                    }
                }
            }
        });
    }
    future
}

/// Spawn `n` concurrent copies and elect the most frequent successful
/// answer once all copies finish (HPX `async_replicate_vote`): tolerates
/// copies that *return wrong data* rather than failing. Errors only if
/// every copy fails.
pub fn async_replicate_vote<T, F>(rt: &Runtime, n: usize, f: F) -> Future<T>
where
    T: Send + Clone + PartialEq + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    assert!(n >= 1, "async_replicate_vote needs at least one copy");
    let mut promise = rt.make_promise();
    let future = promise.future();
    type VoteState<T> = (Vec<Result<T>>, Option<crate::lcos::future::Promise<T>>);
    let state: Arc<Mutex<VoteState<T>>> = Arc::new(Mutex::new((Vec::new(), Some(promise))));
    let f = Arc::new(f);
    for _ in 0..n {
        let state = state.clone();
        let job = {
            let f = f.clone();
            move || f()
        };
        rt.async_task(job).on_complete(move |res| {
            let mut st = state.lock();
            st.0.push(res);
            if st.0.len() < n {
                return;
            }
            let promise = st.1.take().expect("vote resolves once");
            // Plurality vote over successful values.
            let mut best: Option<(usize, &T)> = None;
            for (i, r) in st.0.iter().enumerate() {
                let Ok(v) = r else { continue };
                if st.0[..i].iter().any(|prev| matches!(prev, Ok(p) if p == v)) {
                    continue; // already tallied under its first occurrence
                }
                let votes = st.0.iter().filter(|r| matches!(r, Ok(p) if p == v)).count();
                if best.is_none_or(|(b, _)| votes > b) {
                    best = Some((votes, v));
                }
            }
            match best {
                Some((_, v)) => promise.set_value(v.clone()),
                None => {
                    let e = st
                        .0
                        .iter()
                        .find_map(|r| r.as_ref().err().cloned())
                        .unwrap_or(Error::BrokenPromise);
                    promise.set_error(e);
                }
            }
        });
    }
    future
}

/// Synchronous replay: run `f` on the calling thread, retrying a panic
/// up to `n` total attempts. Used where no runtime is available (the
/// multi-process chaos worker's step loop).
pub fn replay_sync<T>(n: usize, mut f: impl FnMut() -> T) -> Result<T> {
    assert!(n >= 1, "replay_sync needs at least one attempt");
    let mut last: Option<Error> = None;
    for _ in 0..n {
        match catch_unwind(AssertUnwindSafe(&mut f)) {
            Ok(v) => return Ok(v),
            Err(p) => last = Some(Error::TaskPanicked(crate::util::panic_message(&*p))),
        }
    }
    Err(last.expect("n >= 1 attempts ran"))
}

/// Bounded retry with linear backoff for fallible side-effecting calls
/// (the stencil halo-push retry path). The first failure retries after
/// `backoff`, the second after `2*backoff`, and so on; the final error
/// surfaces unchanged.
pub fn retry<T>(attempts: usize, backoff: Duration, mut f: impl FnMut() -> Result<T>) -> Result<T> {
    assert!(attempts >= 1, "retry needs at least one attempt");
    let mut last: Option<Error> = None;
    for i in 0..attempts {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) => last = Some(e),
        }
        if i + 1 < attempts && !backoff.is_zero() {
            std::thread::sleep(backoff * (i as u32 + 1));
        }
    }
    Err(last.expect("attempts >= 1 ran"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn replay_sync_retries_through_panics() {
        let tries = AtomicUsize::new(0);
        let v = replay_sync(3, || {
            if tries.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("flaky");
            }
            99
        })
        .unwrap();
        assert_eq!(v, 99);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn replay_sync_exhaustion_surfaces_the_panic() {
        let err = replay_sync(2, || -> i32 { panic!("always broken") }).unwrap_err();
        match err {
            Error::TaskPanicked(m) => assert!(m.contains("always broken")),
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
    }

    #[test]
    fn retry_backs_off_and_returns_final_error() {
        let tries = AtomicUsize::new(0);
        let err = retry(3, Duration::ZERO, || -> Result<()> {
            tries.fetch_add(1, Ordering::SeqCst);
            Err(Error::PeerLost(7))
        })
        .unwrap_err();
        assert_eq!(err, Error::PeerLost(7));
        assert_eq!(tries.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retry_succeeds_midway() {
        let tries = AtomicUsize::new(0);
        let v = retry(5, Duration::ZERO, || {
            if tries.fetch_add(1, Ordering::SeqCst) < 1 {
                Err(Error::ResponseTimeout)
            } else {
                Ok(5)
            }
        })
        .unwrap();
        assert_eq!(v, 5);
        assert_eq!(tries.load(Ordering::SeqCst), 2);
    }
}
