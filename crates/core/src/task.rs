//! The lightweight-task representation.
//!
//! A ParalleX "HPX thread" is a unit of work far cheaper than an OS
//! thread. HPX implements them as user-level stackful threads; in safe
//! Rust we represent them as **run-to-completion closures** whose
//! suspension points are expressed through LCO continuations (a blocked
//! "thread" is simply a continuation parked on a future) — see DESIGN.md
//! for why this preserves the model's semantics.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_TASK_ID: AtomicU64 = AtomicU64::new(1);

/// Scheduling priority of a task. High-priority tasks are drained before
/// normal ones (HPX's `thread_priority`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Run after all other work.
    Low,
    /// Default priority.
    #[default]
    Normal,
    /// Run before normal work (used for continuations and parcel handlers
    /// to keep latency-critical chains moving).
    High,
}

/// Where a task would like to run (HPX's `schedule_hint`). The block
/// executor uses this to keep tasks on the worker that first-touched their
/// data (the paper's NUMA-aware allocation, Section VII-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScheduleHint {
    /// Any worker.
    #[default]
    None,
    /// Prefer this worker; work stealing may still move it.
    Worker(usize),
    /// Must run on this worker (never stolen) — what `hwloc-bind`-style
    /// pinning gives the paper's benchmarks.
    Pinned(usize),
}

/// A unit of work for the scheduler.
pub struct Task {
    func: Box<dyn FnOnce() + Send + 'static>,
    /// Scheduling priority.
    pub priority: Priority,
    /// Placement hint.
    pub hint: ScheduleHint,
    /// Unique id (diagnostics only).
    pub id: u64,
}

impl Task {
    /// Wrap a closure as a normal-priority task.
    pub fn new(func: impl FnOnce() + Send + 'static) -> Task {
        Task {
            func: Box::new(func),
            priority: Priority::Normal,
            hint: ScheduleHint::None,
            id: NEXT_TASK_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Set the priority.
    pub fn with_priority(mut self, p: Priority) -> Task {
        self.priority = p;
        self
    }

    /// Set the placement hint.
    pub fn with_hint(mut self, h: ScheduleHint) -> Task {
        self.hint = h;
        self
    }

    /// Execute the task, consuming it.
    pub fn run(self) {
        (self.func)();
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("id", &self.id)
            .field("priority", &self.priority)
            .field("hint", &self.hint)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn task_runs_closure() {
        let ran = Arc::new(AtomicBool::new(false));
        let r2 = ran.clone();
        Task::new(move || r2.store(true, Ordering::SeqCst)).run();
        assert!(ran.load(Ordering::SeqCst));
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let a = Task::new(|| {});
        let b = Task::new(|| {});
        assert!(b.id > a.id);
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn builder_style_setters() {
        let t = Task::new(|| {})
            .with_priority(Priority::High)
            .with_hint(ScheduleHint::Pinned(3));
        assert_eq!(t.priority, Priority::High);
        assert_eq!(t.hint, ScheduleHint::Pinned(3));
    }
}
