//! Task schedulers.
//!
//! The default scheduler mirrors HPX's `local-priority` scheduling policy:
//! every worker owns a local LIFO queue (cache-friendly: the task most
//! recently made runnable touches warm data), plus a FIFO *pinned* queue
//! that stealing never touches (for `ScheduleHint::Pinned`, the paper's
//! one-thread-per-core `hwloc-bind` pinning), a global injector for work
//! arriving from outside the worker pool, and work stealing from other
//! workers' queues when everything local is drained. A `static` policy
//! (stealing disabled) matches HPX's `static` scheduler, which the paper's
//! NUMA experiments rely on for deterministic placement.
//!
//! The queues are small lock-based deques (`parking_lot::Mutex` around a
//! `VecDeque`): tasks in this workload are coarse enough (stencil chunks,
//! parcel handlers) that queue-lock cost is negligible, and the locks keep
//! the implementation obviously correct under stealing.

use crate::task::{Priority, ScheduleHint, Task};
use crossbeam::queue::SegQueue;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// Which scheduling policy to run (HPX `--hpx:queuing`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Per-worker local queues with work stealing (HPX `local-priority`).
    #[default]
    LocalPriority,
    /// Per-worker queues, no stealing (HPX `static`): tasks stay where
    /// their hint put them, giving deterministic NUMA placement.
    Static,
}

struct WorkerQueues {
    /// Tasks pinned to this worker; never stolen.
    pinned: SegQueue<Task>,
    /// High-priority tasks hinted to this worker.
    high: SegQueue<Task>,
    /// Regular local deque (LIFO pop, FIFO steal).
    local: Mutex<VecDeque<Task>>,
}

impl WorkerQueues {
    fn new() -> Self {
        WorkerQueues {
            pinned: SegQueue::new(),
            high: SegQueue::new(),
            local: Mutex::new(VecDeque::new()),
        }
    }
}

/// Sleep/wake coordination for idle workers.
struct SleepCtl {
    lock: Mutex<()>,
    cond: Condvar,
}

/// The shared scheduler state. One instance per [`crate::runtime::Runtime`].
pub struct Scheduler {
    policy: SchedulerPolicy,
    queues: Vec<WorkerQueues>,
    injector_high: SegQueue<Task>,
    injector: SegQueue<Task>,
    sleep: SleepCtl,
    /// Per-thief victim visit order (NUMA-aware stealing: same-domain
    /// victims first, so stolen tasks stay close to their data).
    steal_order: Vec<Vec<usize>>,
    /// Tasks pushed but not yet popped.
    queued: AtomicUsize,
    /// Monotone counters for [`crate::perf`].
    pub(crate) stat_pushed: AtomicUsize,
    pub(crate) stat_stolen: AtomicUsize,
    shutdown: AtomicBool,
}

fn cyclic_order(workers: usize) -> Vec<Vec<usize>> {
    (0..workers)
        .map(|thief| (1..workers).map(|off| (thief + off) % workers).collect())
        .collect()
}

impl Scheduler {
    /// Create a scheduler for `workers` worker threads (cyclic steal
    /// order).
    pub fn new(workers: usize, policy: SchedulerPolicy) -> Scheduler {
        assert!(workers > 0, "need at least one worker");
        Scheduler {
            policy,
            queues: (0..workers).map(|_| WorkerQueues::new()).collect(),
            injector_high: SegQueue::new(),
            injector: SegQueue::new(),
            sleep: SleepCtl { lock: Mutex::new(()), cond: Condvar::new() },
            steal_order: cyclic_order(workers),
            queued: AtomicUsize::new(0),
            stat_pushed: AtomicUsize::new(0),
            stat_stolen: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Create a scheduler whose steal order follows a topology: each thief
    /// visits same-NUMA-domain victims before remote ones (hwloc-aware
    /// stealing, as HPX configures on NUMA machines).
    pub fn with_topology(
        workers: usize,
        policy: SchedulerPolicy,
        topo: &crate::topology::Topology,
    ) -> Scheduler {
        assert_eq!(topo.workers(), workers);
        let mut s = Scheduler::new(workers, policy);
        s.steal_order = (0..workers)
            .map(|thief| {
                let my_domain = topo.domain_of(thief);
                let mut order: Vec<usize> = (1..workers).map(|off| (thief + off) % workers).collect();
                // Stable partition: same-domain victims first, preserving
                // the cyclic order within each class.
                order.sort_by_key(|&v| topo.domain_of(v) != my_domain);
                order
            })
            .collect();
        s
    }

    /// The victim visit order used by worker `thief`.
    pub fn steal_order_of(&self, thief: usize) -> &[usize] {
        &self.steal_order[thief]
    }

    /// Number of workers this scheduler serves.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// The configured policy.
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Enqueue a task. `from_worker` is the id of the calling worker if the
    /// caller *is* one of this scheduler's workers (lets unhinted tasks go
    /// to the caller's local queue, HPX's default child-stealing setup).
    pub fn push(&self, task: Task, from_worker: Option<usize>) {
        self.stat_pushed.fetch_add(1, Ordering::Relaxed);
        self.queued.fetch_add(1, Ordering::Release);
        match task.hint {
            ScheduleHint::Pinned(w) => {
                self.queues[w % self.queues.len()].pinned.push(task);
            }
            ScheduleHint::Worker(w) => {
                let w = w % self.queues.len();
                if task.priority == Priority::High {
                    self.queues[w].high.push(task);
                } else {
                    self.queues[w].local.lock().push_back(task);
                }
            }
            ScheduleHint::None => match (task.priority, from_worker) {
                (Priority::High, _) => self.injector_high.push(task),
                (_, Some(w)) => self.queues[w].local.lock().push_back(task),
                (_, None) => self.injector.push(task),
            },
        }
        self.wake_one();
    }

    /// Dequeue work for `worker`. Returns `None` when nothing is runnable
    /// anywhere (caller should park via [`Scheduler::wait_for_work`]).
    pub fn pop(&self, worker: usize) -> Option<Task> {
        let q = &self.queues[worker];
        let got = q
            .pinned
            .pop()
            .or_else(|| q.high.pop())
            .or_else(|| self.injector_high.pop())
            .or_else(|| q.local.lock().pop_back())
            .or_else(|| self.injector.pop())
            .or_else(|| self.steal(worker));
        if got.is_some() {
            self.queued.fetch_sub(1, Ordering::AcqRel);
        }
        got
    }

    fn steal(&self, thief: usize) -> Option<Task> {
        if self.policy == SchedulerPolicy::Static {
            return None;
        }
        for &victim in &self.steal_order[thief] {
            let task = {
                let mut dq = self.queues[victim].local.lock();
                dq.pop_front()
            };
            if task.is_some() {
                self.stat_stolen.fetch_add(1, Ordering::Relaxed);
                return task;
            }
        }
        None
    }

    /// Whether any task is queued (racy; for idle heuristics only).
    pub fn has_queued(&self) -> bool {
        self.queued.load(Ordering::Acquire) > 0
    }

    /// Number of queued (not yet popped) tasks.
    pub fn queued_len(&self) -> usize {
        self.queued.load(Ordering::Acquire)
    }

    /// Park the calling worker until work might be available or shutdown is
    /// signalled. Uses a timeout so a lost wakeup can never hang a worker.
    pub fn wait_for_work(&self) {
        if self.has_queued() || self.is_shutdown() {
            return;
        }
        let mut guard = self.sleep.lock.lock();
        if self.has_queued() || self.is_shutdown() {
            return;
        }
        self.sleep
            .cond
            .wait_for(&mut guard, Duration::from_millis(1));
    }

    /// Wake one parked worker.
    pub fn wake_one(&self) {
        self.sleep.cond.notify_one();
    }

    /// Wake all parked workers.
    pub fn wake_all(&self) {
        self.sleep.cond.notify_all();
    }

    /// Signal shutdown: workers drain and exit.
    pub fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake_all();
    }

    /// Whether shutdown has been signalled.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::new(|| {})
    }

    #[test]
    fn push_pop_roundtrip() {
        let s = Scheduler::new(2, SchedulerPolicy::LocalPriority);
        s.push(task(), None);
        assert_eq!(s.queued_len(), 1);
        assert!(s.pop(0).is_some());
        assert_eq!(s.queued_len(), 0);
        assert!(s.pop(0).is_none());
    }

    #[test]
    fn pinned_tasks_are_not_stolen() {
        let s = Scheduler::new(2, SchedulerPolicy::LocalPriority);
        s.push(task().with_hint(crate::task::ScheduleHint::Pinned(1)), None);
        // Worker 0 must not see it (pinned queues are never stolen)…
        assert!(s.pop(0).is_none());
        // …but worker 1 does.
        assert!(s.pop(1).is_some());
    }

    #[test]
    fn hinted_tasks_can_be_stolen() {
        let s = Scheduler::new(2, SchedulerPolicy::LocalPriority);
        s.push(task().with_hint(crate::task::ScheduleHint::Worker(1)), None);
        // Worker 0 steals it from worker 1's local queue.
        assert!(s.pop(0).is_some());
        assert_eq!(s.stat_stolen.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn static_policy_never_steals() {
        let s = Scheduler::new(2, SchedulerPolicy::Static);
        s.push(task().with_hint(crate::task::ScheduleHint::Worker(1)), None);
        assert!(s.pop(0).is_none(), "static scheduler must not steal");
        assert!(s.pop(1).is_some());
    }

    #[test]
    fn high_priority_jumps_the_queue() {
        let s = Scheduler::new(1, SchedulerPolicy::LocalPriority);
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        for (tag, prio) in [(1, Priority::Normal), (2, Priority::High)] {
            let order = order.clone();
            s.push(
                Task::new(move || order.lock().push(tag)).with_priority(prio),
                None,
            );
        }
        while let Some(t) = s.pop(0) {
            t.run();
        }
        assert_eq!(*order.lock(), vec![2, 1]);
    }

    #[test]
    fn local_queue_is_lifo_for_owner() {
        let s = Scheduler::new(1, SchedulerPolicy::LocalPriority);
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        for tag in [1, 2, 3] {
            let order = order.clone();
            // from_worker = Some(0): goes to worker 0's local deque.
            s.push(Task::new(move || order.lock().push(tag)), Some(0));
        }
        while let Some(t) = s.pop(0) {
            t.run();
        }
        assert_eq!(*order.lock(), vec![3, 2, 1], "owner pops LIFO");
    }

    #[test]
    fn steal_takes_oldest_first() {
        let s = Scheduler::new(2, SchedulerPolicy::LocalPriority);
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        for tag in [1, 2] {
            let order = order.clone();
            s.push(Task::new(move || order.lock().push(tag)), Some(0));
        }
        // Worker 1 steals the *oldest* task (FIFO steal end).
        s.pop(1).unwrap().run();
        assert_eq!(*order.lock(), vec![1]);
    }

    #[test]
    fn shutdown_wakes_and_flags() {
        let s = Scheduler::new(1, SchedulerPolicy::LocalPriority);
        assert!(!s.is_shutdown());
        s.signal_shutdown();
        assert!(s.is_shutdown());
        // wait_for_work returns immediately after shutdown.
        s.wait_for_work();
    }

    #[test]
    fn numa_aware_steal_prefers_same_domain() {
        // 4 workers in 2 domains {0,1} {2,3}. A task hinted to worker 1
        // and one hinted to worker 3: thief 0 must steal worker 1's first.
        let topo = crate::topology::Topology::uniform(4, 2);
        let s = Scheduler::with_topology(4, SchedulerPolicy::LocalPriority, &topo);
        assert_eq!(s.steal_order_of(0), &[1, 2, 3]);
        assert_eq!(s.steal_order_of(2), &[3, 0, 1], "same-domain (3) first, then cyclic");
        let tag = std::sync::Arc::new(Mutex::new(Vec::new()));
        for (worker, label) in [(1usize, "near"), (3usize, "far")] {
            let tag = tag.clone();
            s.push(
                Task::new(move || tag.lock().push(label))
                    .with_hint(crate::task::ScheduleHint::Worker(worker)),
                None,
            );
        }
        s.pop(0).unwrap().run();
        assert_eq!(*tag.lock(), vec!["near"], "same-domain victim first");
    }

    #[test]
    fn topology_steal_order_visits_everyone_once() {
        let topo = crate::topology::Topology::uniform(6, 3);
        let s = Scheduler::with_topology(6, SchedulerPolicy::LocalPriority, &topo);
        for thief in 0..6 {
            let mut order = s.steal_order_of(thief).to_vec();
            assert_eq!(order.len(), 5);
            assert!(!order.contains(&thief));
            order.sort_unstable();
            let mut expect: Vec<usize> = (0..6).filter(|&w| w != thief).collect();
            expect.sort_unstable();
            assert_eq!(order, expect);
            // First victim shares the thief's domain (each domain has 2
            // workers here).
            let first = s.steal_order_of(thief)[0];
            assert_eq!(topo.domain_of(first), topo.domain_of(thief));
        }
    }

    #[test]
    fn concurrent_push_pop_conserves_tasks() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let s = Arc::new(Scheduler::new(4, SchedulerPolicy::LocalPriority));
        let ran = Arc::new(AtomicUsize::new(0));
        const N: usize = 1000;
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                let ran = ran.clone();
                std::thread::spawn(move || {
                    for _ in 0..N {
                        let ran = ran.clone();
                        s.push(
                            Task::new(move || {
                                ran.fetch_add(1, Ordering::Relaxed);
                            }),
                            None,
                        );
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|w| {
                let s = s.clone();
                std::thread::spawn(move || loop {
                    match s.pop(w) {
                        Some(t) => t.run(),
                        None => {
                            if s.is_shutdown() && !s.has_queued() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        s.signal_shutdown();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(ran.load(Ordering::Relaxed), 4 * N);
    }
}
