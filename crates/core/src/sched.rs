//! Task schedulers.
//!
//! The default scheduler mirrors HPX's `local-priority` scheduling policy
//! on top of lock-free queues. Every worker owns a Chase-Lev deque
//! (`crossbeam::deque::Worker`): the owner pushes and pops at the LIFO
//! end, so the task most recently made runnable touches warm cache lines,
//! while thieves take from the FIFO end, so stolen work is the oldest and
//! coldest. Around the deque each worker also has a FIFO *pinned* queue
//! that stealing never touches (for `ScheduleHint::Pinned`, the paper's
//! one-thread-per-core `hwloc-bind` pinning), a high-priority lane, and an
//! *inbox* `Injector` for work other threads hint toward it. Two global
//! `Injector`s (high and normal priority) accept work arriving from
//! outside the worker pool; workers drain them in batches straight into
//! their own deque. Thieves visit victims in NUMA-aware order (same-domain
//! victims first) and use `steal_batch_and_pop`, so one victim visit
//! amortizes over up to half its queue. A `static` policy
//! (stealing disabled) matches HPX's `static` scheduler, which the paper's
//! NUMA experiments rely on for deterministic placement.
//!
//! Idle workers park through per-worker eventcount slots instead of the
//! old 1 ms polling timeout. Runnable work is tracked in two counters —
//! a global *shared* count (tasks any worker may acquire) and a per-worker
//! *private* count (pinned tasks, hinted high-priority tasks, and, under
//! the static policy, everything hinted to that worker) — so a worker
//! parks exactly when nothing *it* could pop exists, not merely when the
//! whole system is empty. A would-be sleeper advertises itself (park flag
//! plus a sleeper count), re-validates those counters and its slot's epoch,
//! and only then blocks on its own condvar with *no* timeout. A push that
//! enqueues private work wakes that worker's slot specifically; a push of
//! shared work claims any advertised sleeper's flag. Claiming a flag
//! happens with a `swap`, so each notify syscall is paid at most once and
//! not at all when nobody is parked — a saturated runtime never pays for
//! wakeups, an idle one burns ~0% CPU, and a pinned task can never be
//! stranded by its wakeup going to a worker that cannot acquire it.

use crate::introspect::{EventKind, LatencyChannel, LatencySet, Tracer};
use crate::task::{Priority, ScheduleHint, Task};
use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use crossbeam::queue::SegQueue;
use parking_lot::{Condvar, Mutex};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Which scheduling policy to run (HPX `--hpx:queuing`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Per-worker local queues with work stealing (HPX `local-priority`).
    #[default]
    LocalPriority,
    /// Per-worker queues, no stealing (HPX `static`): tasks stay where
    /// their hint put them, giving deterministic NUMA placement.
    Static,
}

/// A per-thread token identifying deque owners. Tokens start at 1 so 0
/// can mean "unclaimed".
fn thread_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }
    TOKEN.with(|t| {
        let mut v = t.get();
        if v == 0 {
            v = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(v);
        }
        v
    })
}

/// A worker's Chase-Lev deque plus the claim that guards its owner end.
///
/// `crossbeam::deque::Worker` is single-owner (`Send` but not `Sync`);
/// the scheduler is shared, so the deque sits in an `UnsafeCell` guarded
/// by `owner`: the first thread to CAS its token into `owner` becomes the
/// only thread ever allowed to touch the owner end. Everyone else goes
/// through the `Stealer`, which synchronizes internally.
struct DequeSlot {
    owner: AtomicU64,
    deque: UnsafeCell<Deque<Task>>,
}

// SAFETY: the inner deque's owner end is only reached through
// `owned_deque`, whose contract requires a successful `claim` by the
// calling thread; `owner` is written once (0 -> token) so at most one
// thread ever passes that check. Cross-thread access goes through the
// separate `Stealer` handle, which is `Sync`.
unsafe impl Sync for DequeSlot {}

impl DequeSlot {
    /// Claim (or re-confirm) ownership for the calling thread.
    fn claim(&self) -> bool {
        let me = thread_token();
        let cur = self.owner.load(Ordering::Acquire);
        if cur == me {
            return true;
        }
        cur == 0
            && self
                .owner
                .compare_exchange(0, me, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
    }

    /// Whether the calling thread already owns this deque.
    fn is_mine(&self) -> bool {
        self.owner.load(Ordering::Acquire) == thread_token()
    }

    /// The owner end of the deque.
    ///
    /// # Safety
    /// The calling thread must have received `true` from [`claim`] (or
    /// [`is_mine`]) on this slot.
    unsafe fn owned_deque(&self) -> &Deque<Task> {
        &*self.deque.get()
    }
}

/// One worker's private parking place (eventcount protocol, per worker).
///
/// Giving every worker its own slot is what lets a push of *unacquirable-
/// by-others* work (a pinned task, or any hinted task under the static
/// policy) wake exactly the worker that can run it. A single shared
/// condvar with `notify_one` could hand that wakeup to a worker that can
/// never pop the task, leaving the target parked forever.
struct ParkSlot {
    lock: Mutex<()>,
    cond: Condvar,
    /// The worker advertises intent to park; wakers claim the flag with a
    /// `swap(false)`, so each parked worker costs at most one notify.
    parked: AtomicBool,
    /// Bumped (under `lock`) by every wake; a would-be sleeper re-validates
    /// it under the lock so a wake between "checked the queues" and
    /// "blocked on the condvar" can never be lost.
    epoch: AtomicUsize,
}

impl ParkSlot {
    fn new() -> Self {
        ParkSlot {
            lock: Mutex::new(()),
            cond: Condvar::new(),
            parked: AtomicBool::new(false),
            epoch: AtomicUsize::new(0),
        }
    }
}

struct WorkerQueues {
    /// Tasks pinned to this worker; never stolen.
    pinned: SegQueue<Task>,
    /// High-priority tasks hinted to this worker.
    high: SegQueue<Task>,
    /// Normal-priority tasks hinted to this worker by threads that do not
    /// own its deque. Stealable, drained in batches by the owner.
    inbox: Injector<Task>,
    /// Thief end of this worker's deque.
    stealer: Stealer<Task>,
    /// Owner end of this worker's deque, behind the claim protocol.
    slot: DequeSlot,
    /// Queued tasks only this worker may pop: pinned + hinted-high, plus
    /// deque/inbox contents under [`SchedulerPolicy::Static`]. Feeds the
    /// park predicate so idle peers neither spin on nor get woken for
    /// work they cannot acquire.
    private: AtomicUsize,
    park: ParkSlot,
}

impl WorkerQueues {
    fn new() -> Self {
        let deque = Deque::new_lifo();
        let stealer = deque.stealer();
        WorkerQueues {
            pinned: SegQueue::new(),
            high: SegQueue::new(),
            inbox: Injector::new(),
            stealer,
            slot: DequeSlot { owner: AtomicU64::new(0), deque: UnsafeCell::new(deque) },
            private: AtomicUsize::new(0),
            park: ParkSlot::new(),
        }
    }
}

/// The shared scheduler state. One instance per [`crate::runtime::Runtime`].
pub struct Scheduler {
    policy: SchedulerPolicy,
    queues: Vec<WorkerQueues>,
    injector_high: Injector<Task>,
    injector: Injector<Task>,
    /// Workers currently registered as (about to be) parked; lets pushers
    /// of shared work skip the park-flag scan when everyone is busy.
    sleepers: AtomicUsize,
    /// Per-thief victim visit order (NUMA-aware stealing: same-domain
    /// victims first, so stolen tasks stay close to their data).
    steal_order: Vec<Vec<usize>>,
    /// Tasks pushed but not yet popped.
    queued: AtomicUsize,
    /// Queued tasks acquirable by *any* worker (injectors, plus deques and
    /// inboxes when stealing is enabled). Counterpart of the per-worker
    /// `private` counts; together they drive the park predicate.
    shared: AtomicUsize,
    /// Monotone counters for [`crate::perf`].
    pub(crate) stat_pushed: AtomicUsize,
    /// Successful steal operations (each may move a whole batch).
    pub(crate) stat_stolen: AtomicUsize,
    /// Victim queues probed while stealing (hits and misses).
    pub(crate) stat_steal_attempts: AtomicUsize,
    /// Successful batched steals (`steal_batch_and_pop` into a deque).
    pub(crate) stat_steal_batches: AtomicUsize,
    /// Times a worker actually blocked on the condvar.
    pub(crate) stat_parks: AtomicUsize,
    /// Notify syscalls issued (only when a worker was parked).
    pub(crate) stat_wakes: AtomicUsize,
    /// Event recorder attached by the owning runtime (steal/park/wake
    /// events). Standalone schedulers (tests, benches) have none; the
    /// check is one acquire load, and a no-op when tracing is disabled.
    tracer: OnceLock<Arc<Tracer>>,
    /// Latency histograms attached by the owning runtime (steal-latency
    /// channel). Standalone schedulers (tests, benches) have none.
    latency: OnceLock<Arc<LatencySet>>,
    shutdown: AtomicBool,
}

fn cyclic_order(workers: usize) -> Vec<Vec<usize>> {
    (0..workers)
        .map(|thief| (1..workers).map(|off| (thief + off) % workers).collect())
        .collect()
}

/// Retry-looping wrapper around one lock-free steal source.
fn steal_one<F: Fn() -> Steal<Task>>(source: F) -> Option<Task> {
    loop {
        match source() {
            Steal::Success(t) => return Some(t),
            Steal::Empty => return None,
            Steal::Retry => std::hint::spin_loop(),
        }
    }
}

impl Scheduler {
    /// Create a scheduler for `workers` worker threads (cyclic steal
    /// order).
    pub fn new(workers: usize, policy: SchedulerPolicy) -> Scheduler {
        assert!(workers > 0, "need at least one worker");
        Scheduler {
            policy,
            queues: (0..workers).map(|_| WorkerQueues::new()).collect(),
            injector_high: Injector::new(),
            injector: Injector::new(),
            sleepers: AtomicUsize::new(0),
            steal_order: cyclic_order(workers),
            queued: AtomicUsize::new(0),
            shared: AtomicUsize::new(0),
            stat_pushed: AtomicUsize::new(0),
            stat_stolen: AtomicUsize::new(0),
            stat_steal_attempts: AtomicUsize::new(0),
            stat_steal_batches: AtomicUsize::new(0),
            stat_parks: AtomicUsize::new(0),
            stat_wakes: AtomicUsize::new(0),
            tracer: OnceLock::new(),
            latency: OnceLock::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Attach the runtime's event tracer (idempotent; first caller wins).
    pub(crate) fn attach_tracer(&self, tracer: Arc<Tracer>) {
        let _ = self.tracer.set(tracer);
    }

    /// Attach the runtime's latency histograms (idempotent; first
    /// caller wins). Steal latencies are recorded into their channel.
    pub(crate) fn attach_latency(&self, latency: Arc<LatencySet>) {
        let _ = self.latency.set(latency);
    }

    /// The attached tracer, if any and currently recording.
    #[inline]
    fn tracer_if_enabled(&self) -> Option<&Tracer> {
        self.tracer
            .get()
            .map(|t| t.as_ref())
            .filter(|t| t.is_enabled())
    }

    /// Create a scheduler whose steal order follows a topology: each thief
    /// visits same-NUMA-domain victims before remote ones (hwloc-aware
    /// stealing, as HPX configures on NUMA machines).
    pub fn with_topology(
        workers: usize,
        policy: SchedulerPolicy,
        topo: &crate::topology::Topology,
    ) -> Scheduler {
        assert_eq!(topo.workers(), workers);
        let mut s = Scheduler::new(workers, policy);
        s.steal_order = (0..workers)
            .map(|thief| {
                let my_domain = topo.domain_of(thief);
                let mut order: Vec<usize> = (1..workers).map(|off| (thief + off) % workers).collect();
                // Stable partition: same-domain victims first, preserving
                // the cyclic order within each class.
                order.sort_by_key(|&v| topo.domain_of(v) != my_domain);
                order
            })
            .collect();
        s
    }

    /// The victim visit order used by worker `thief`.
    pub fn steal_order_of(&self, thief: usize) -> &[usize] {
        &self.steal_order[thief]
    }

    /// Number of workers this scheduler serves.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// The configured policy.
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Whether a worker's deque/inbox contents are acquirable by other
    /// workers (they are, unless stealing is disabled).
    fn local_is_shared(&self) -> bool {
        self.policy != SchedulerPolicy::Static
    }

    /// Enqueue a task. `from_worker` is the id of the calling worker if the
    /// caller *is* one of this scheduler's workers (lets unhinted tasks go
    /// to the caller's local deque, HPX's default child-stealing setup).
    pub fn push(&self, task: Task, from_worker: Option<usize>) {
        self.stat_pushed.fetch_add(1, Ordering::Relaxed);
        // Count before publishing: a concurrent pop may take the task the
        // instant it lands, and its decrement must never underflow. The
        // lane counter is likewise bumped before the enqueue — and before
        // any park flag is read — so a worker that registers as a sleeper
        // and then re-checks the counters can never miss this task.
        self.queued.fetch_add(1, Ordering::SeqCst);
        match task.hint {
            ScheduleHint::Pinned(w) => {
                let w = w % self.queues.len();
                let q = &self.queues[w];
                q.private.fetch_add(1, Ordering::SeqCst);
                q.pinned.push(task);
                self.notify_worker(w);
            }
            ScheduleHint::Worker(w) => {
                let w = w % self.queues.len();
                let q = &self.queues[w];
                if task.priority == Priority::High {
                    // Only worker `w` ever drains its high lane.
                    q.private.fetch_add(1, Ordering::SeqCst);
                    q.high.push(task);
                    self.notify_worker(w);
                } else {
                    let shared = self.local_is_shared();
                    if shared {
                        self.shared.fetch_add(1, Ordering::SeqCst);
                    } else {
                        q.private.fetch_add(1, Ordering::SeqCst);
                    }
                    if q.slot.is_mine() {
                        // SAFETY: `is_mine` confirmed this thread's claim.
                        unsafe { q.slot.owned_deque() }.push(task);
                    } else {
                        q.inbox.push(task);
                    }
                    if shared {
                        self.notify_shared();
                    } else {
                        self.notify_worker(w);
                    }
                }
            }
            ScheduleHint::None => match (task.priority, from_worker) {
                (Priority::High, _) => {
                    self.shared.fetch_add(1, Ordering::SeqCst);
                    self.injector_high.push(task);
                    self.notify_shared();
                }
                (_, Some(w)) => {
                    let q = &self.queues[w];
                    let shared = self.local_is_shared();
                    if shared {
                        self.shared.fetch_add(1, Ordering::SeqCst);
                    } else {
                        q.private.fetch_add(1, Ordering::SeqCst);
                    }
                    if q.slot.claim() {
                        // SAFETY: `claim` just succeeded on this thread.
                        unsafe { q.slot.owned_deque() }.push(task);
                    } else {
                        // Another thread owns this deque (only happens if
                        // a caller lies about being worker `w`); fall back
                        // to the stealable inbox rather than corrupting it.
                        q.inbox.push(task);
                    }
                    if shared {
                        self.notify_shared();
                    } else {
                        self.notify_worker(w);
                    }
                }
                (_, None) => {
                    self.shared.fetch_add(1, Ordering::SeqCst);
                    self.injector.push(task);
                    self.notify_shared();
                }
            },
        }
    }

    /// Dequeue work for `worker`, in priority order: pinned, local high,
    /// global high, local (deque, then inbox), global injector, steal.
    /// Returns `None` when nothing is runnable anywhere (caller should
    /// park via [`Scheduler::wait_for_work`]).
    pub fn pop(&self, worker: usize) -> Option<Task> {
        let got = self.pop_inner(worker);
        if got.is_some() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
        }
        got
    }

    fn pop_inner(&self, worker: usize) -> Option<Task> {
        let q = &self.queues[worker];
        if let Some(t) = q.pinned.pop() {
            q.private.fetch_sub(1, Ordering::SeqCst);
            return Some(t);
        }
        if let Some(t) = q.high.pop() {
            q.private.fetch_sub(1, Ordering::SeqCst);
            return Some(t);
        }
        if let Some(t) = steal_one(|| self.injector_high.steal()) {
            self.shared.fetch_sub(1, Ordering::SeqCst);
            return Some(t);
        }
        // Deque/inbox contents count as shared while stealing is enabled,
        // private to this worker under the static policy.
        let local_lane = if self.local_is_shared() { &self.shared } else { &q.private };
        if q.slot.claim() {
            // Owner path: LIFO deque, then drain inbox and global injector
            // in batches so one synchronized operation feeds many pops.
            // SAFETY: `claim` succeeded on this thread.
            let deque = unsafe { q.slot.owned_deque() };
            if let Some(t) = deque.pop() {
                local_lane.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
            // Inbox and deque share a lane class, so a batch move between
            // them leaves the counters untouched.
            if let Some(t) = steal_one(|| q.inbox.steal_batch_and_pop(deque)) {
                local_lane.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
            let from_injector = if self.local_is_shared() {
                // Injector tasks stay shared when they land in a stealable
                // deque, so whole batches can move without re-counting.
                steal_one(|| self.injector.steal_batch_and_pop(deque))
            } else {
                // Static: the deque is private, so batching would silently
                // reclassify shared tasks. Take exactly one instead.
                steal_one(|| self.injector.steal())
            };
            if let Some(t) = from_injector {
                self.shared.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
            let got = self.steal(worker, Some(deque));
            if got.is_some() {
                self.shared.fetch_sub(1, Ordering::SeqCst);
            }
            got
        } else {
            // Foreign path (another thread popping on this worker's
            // behalf): the deque is reachable only through its stealer.
            if let Some(t) = steal_one(|| q.stealer.steal()) {
                local_lane.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
            if let Some(t) = steal_one(|| q.inbox.steal()) {
                local_lane.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
            if let Some(t) = steal_one(|| self.injector.steal()) {
                self.shared.fetch_sub(1, Ordering::SeqCst);
                return Some(t);
            }
            let got = self.steal(worker, None);
            if got.is_some() {
                self.shared.fetch_sub(1, Ordering::SeqCst);
            }
            got
        }
    }

    /// Visit victims in NUMA-aware order, taking from their deque's FIFO
    /// end first and their inbox second. With a destination deque a batch
    /// (up to half the victim's queue) is moved per successful steal.
    fn steal(&self, thief: usize, dest: Option<&Deque<Task>>) -> Option<Task> {
        if self.policy == SchedulerPolicy::Static {
            return None;
        }
        // Time the victim walk only when someone consumes the number
        // (histograms attached or tracing on), so standalone schedulers
        // in benches pay nothing for the clock.
        let t0 = (self.latency.get().is_some() || self.tracer_if_enabled().is_some())
            .then(std::time::Instant::now);
        for &victim in &self.steal_order[thief] {
            self.stat_steal_attempts.fetch_add(1, Ordering::Relaxed);
            let vq = &self.queues[victim];
            let got = match dest {
                Some(d) => steal_one(|| vq.stealer.steal_batch_and_pop(d))
                    .or_else(|| steal_one(|| vq.inbox.steal_batch_and_pop(d))),
                None => steal_one(|| vq.stealer.steal())
                    .or_else(|| steal_one(|| vq.inbox.steal())),
            };
            if got.is_some() {
                self.stat_stolen.fetch_add(1, Ordering::Relaxed);
                if dest.is_some() {
                    self.stat_steal_batches.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(t0) = t0 {
                    let end = std::time::Instant::now();
                    if let Some(lat) = self.latency.get() {
                        lat.record(
                            LatencyChannel::Steal,
                            thief,
                            end.duration_since(t0).as_nanos() as u64,
                        );
                    }
                    // A span (probe walk → success), not an instant: the
                    // attribution engine charges steal time to the thief.
                    if let Some(t) = self.tracer_if_enabled() {
                        t.span(thief, EventKind::Steal, t0, end, victim as u64);
                    }
                }
                return got;
            }
        }
        None
    }

    /// Whether any task is queued (racy; for idle heuristics only).
    pub fn has_queued(&self) -> bool {
        self.queued.load(Ordering::SeqCst) > 0
    }

    /// Number of queued (not yet popped) tasks.
    pub fn queued_len(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    /// Whether some queued task is acquirable by `worker` right now (racy;
    /// this is the park predicate, deliberately per-worker: a task pinned
    /// elsewhere must not keep this worker spinning awake).
    fn runnable_by(&self, worker: usize) -> bool {
        self.shared.load(Ordering::SeqCst) > 0
            || self.queues[worker].private.load(Ordering::SeqCst) > 0
    }

    /// Park the calling worker until work *it can acquire* might be
    /// available or shutdown is signalled. No timeout: the Dekker-style
    /// pairing is `count++ ; read park flag` in the pusher against
    /// `set park flag ; read counts` here — at least one side always sees
    /// the other — and the slot epoch (bumped under the slot lock by every
    /// waker) closes the window between the re-check and the condvar wait.
    pub fn wait_for_work(&self, worker: usize) {
        if self.runnable_by(worker) || self.is_shutdown() {
            return;
        }
        let slot = &self.queues[worker].park;
        let epoch0 = slot.epoch.load(Ordering::SeqCst);
        slot.parked.store(true, Ordering::SeqCst);
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if self.runnable_by(worker) || self.is_shutdown() {
            // Aborting the park: withdraw the advertisement. A waker that
            // already claimed the flag just spends a spurious notify.
            slot.parked.store(false, Ordering::SeqCst);
        } else {
            let mut guard = slot.lock.lock();
            let mut park_span: Option<std::time::Instant> = None;
            if slot.epoch.load(Ordering::SeqCst) == epoch0
                && !self.runnable_by(worker)
                && !self.is_shutdown()
            {
                self.stat_parks.fetch_add(1, Ordering::Relaxed);
                park_span = self.tracer_if_enabled().map(|_| std::time::Instant::now());
                slot.cond.wait(&mut guard);
            }
            drop(guard);
            slot.parked.store(false, Ordering::SeqCst);
            if let (Some(t0), Some(t)) = (park_span, self.tracer_if_enabled()) {
                t.span(worker, EventKind::Park, t0, std::time::Instant::now(), 0);
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Bump a slot's epoch and notify it (the waker side of the
    /// eventcount). Callers must have claimed the slot's park flag, or be
    /// waking unconditionally (shutdown).
    fn wake_slot(&self, worker: usize, slot: &ParkSlot) {
        {
            let _guard = slot.lock.lock();
            slot.epoch.fetch_add(1, Ordering::SeqCst);
            self.stat_wakes.fetch_add(1, Ordering::Relaxed);
            slot.cond.notify_one();
        }
        // Recorded on the woken worker's lane: "worker was woken here".
        if let Some(t) = self.tracer_if_enabled() {
            t.instant(worker, EventKind::Wake, 0);
        }
    }

    /// Wake worker `w` if it advertised itself as parked. Used after
    /// enqueuing work only `w` can acquire — an arbitrary-worker wake
    /// could go to a worker that can never pop the task, leaving `w`
    /// parked forever on its timeout-less condvar.
    fn notify_worker(&self, w: usize) {
        let slot = &self.queues[w].park;
        if slot.parked.swap(false, Ordering::SeqCst) {
            self.wake_slot(w, slot);
        }
    }

    /// Wake some parked worker, if any, after enqueuing work anyone can
    /// acquire. The sleeper count makes the common all-busy case a single
    /// load (no syscall, no scan).
    fn notify_shared(&self) {
        if self.sleepers.load(Ordering::SeqCst) == 0 {
            return;
        }
        for (w, q) in self.queues.iter().enumerate() {
            if q.park.parked.swap(false, Ordering::SeqCst) {
                self.wake_slot(w, &q.park);
                return;
            }
        }
        // Every advertised sleeper was already claimed by another waker or
        // is aborting its park; each of those re-checks the counters after
        // our increment, so the new task cannot be lost.
    }

    /// Wake one parked worker, if any.
    pub fn wake_one(&self) {
        self.notify_shared();
    }

    /// Wake all parked workers.
    pub fn wake_all(&self) {
        self.stat_wakes.fetch_add(1, Ordering::Relaxed);
        for q in &self.queues {
            q.park.parked.store(false, Ordering::SeqCst);
            let _guard = q.park.lock.lock();
            q.park.epoch.fetch_add(1, Ordering::SeqCst);
            q.park.cond.notify_all();
        }
    }

    /// Signal shutdown: workers drain and exit.
    pub fn signal_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.wake_all();
    }

    /// Whether shutdown has been signalled.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Task {
        Task::new(|| {})
    }

    #[test]
    fn push_pop_roundtrip() {
        let s = Scheduler::new(2, SchedulerPolicy::LocalPriority);
        s.push(task(), None);
        assert_eq!(s.queued_len(), 1);
        assert!(s.pop(0).is_some());
        assert_eq!(s.queued_len(), 0);
        assert!(s.pop(0).is_none());
    }

    #[test]
    fn pinned_tasks_are_not_stolen() {
        let s = Scheduler::new(2, SchedulerPolicy::LocalPriority);
        s.push(task().with_hint(crate::task::ScheduleHint::Pinned(1)), None);
        // Worker 0 must not see it (pinned queues are never stolen)…
        assert!(s.pop(0).is_none());
        // …but worker 1 does.
        assert!(s.pop(1).is_some());
    }

    #[test]
    fn hinted_tasks_can_be_stolen() {
        let s = Scheduler::new(2, SchedulerPolicy::LocalPriority);
        s.push(task().with_hint(crate::task::ScheduleHint::Worker(1)), None);
        // Worker 0 steals it from worker 1's local queue.
        assert!(s.pop(0).is_some());
        assert_eq!(s.stat_stolen.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn static_policy_never_steals() {
        let s = Scheduler::new(2, SchedulerPolicy::Static);
        s.push(task().with_hint(crate::task::ScheduleHint::Worker(1)), None);
        assert!(s.pop(0).is_none(), "static scheduler must not steal");
        assert!(s.pop(1).is_some());
    }

    #[test]
    fn high_priority_jumps_the_queue() {
        let s = Scheduler::new(1, SchedulerPolicy::LocalPriority);
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        for (tag, prio) in [(1, Priority::Normal), (2, Priority::High)] {
            let order = order.clone();
            s.push(
                Task::new(move || order.lock().push(tag)).with_priority(prio),
                None,
            );
        }
        while let Some(t) = s.pop(0) {
            t.run();
        }
        assert_eq!(*order.lock(), vec![2, 1]);
    }

    #[test]
    fn local_queue_is_lifo_for_owner() {
        let s = Scheduler::new(1, SchedulerPolicy::LocalPriority);
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        for tag in [1, 2, 3] {
            let order = order.clone();
            // from_worker = Some(0): goes to worker 0's local deque.
            s.push(Task::new(move || order.lock().push(tag)), Some(0));
        }
        while let Some(t) = s.pop(0) {
            t.run();
        }
        assert_eq!(*order.lock(), vec![3, 2, 1], "owner pops LIFO");
    }

    #[test]
    fn steal_takes_oldest_first() {
        let s = Scheduler::new(2, SchedulerPolicy::LocalPriority);
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        for tag in [1, 2] {
            let order = order.clone();
            s.push(Task::new(move || order.lock().push(tag)), Some(0));
        }
        // Worker 1 steals the *oldest* task (FIFO steal end).
        s.pop(1).unwrap().run();
        assert_eq!(*order.lock(), vec![1]);
    }

    #[test]
    fn shutdown_wakes_and_flags() {
        let s = Scheduler::new(1, SchedulerPolicy::LocalPriority);
        assert!(!s.is_shutdown());
        s.signal_shutdown();
        assert!(s.is_shutdown());
        // wait_for_work returns immediately after shutdown.
        s.wait_for_work(0);
    }

    #[test]
    fn numa_aware_steal_prefers_same_domain() {
        // 4 workers in 2 domains {0,1} {2,3}. A task hinted to worker 1
        // and one hinted to worker 3: thief 0 must steal worker 1's first.
        let topo = crate::topology::Topology::uniform(4, 2);
        let s = Scheduler::with_topology(4, SchedulerPolicy::LocalPriority, &topo);
        assert_eq!(s.steal_order_of(0), &[1, 2, 3]);
        assert_eq!(s.steal_order_of(2), &[3, 0, 1], "same-domain (3) first, then cyclic");
        let tag = std::sync::Arc::new(Mutex::new(Vec::new()));
        for (worker, label) in [(1usize, "near"), (3usize, "far")] {
            let tag = tag.clone();
            s.push(
                Task::new(move || tag.lock().push(label))
                    .with_hint(crate::task::ScheduleHint::Worker(worker)),
                None,
            );
        }
        s.pop(0).unwrap().run();
        assert_eq!(*tag.lock(), vec!["near"], "same-domain victim first");
    }

    #[test]
    fn topology_steal_order_visits_everyone_once() {
        let topo = crate::topology::Topology::uniform(6, 3);
        let s = Scheduler::with_topology(6, SchedulerPolicy::LocalPriority, &topo);
        for thief in 0..6 {
            let mut order = s.steal_order_of(thief).to_vec();
            assert_eq!(order.len(), 5);
            assert!(!order.contains(&thief));
            order.sort_unstable();
            let mut expect: Vec<usize> = (0..6).filter(|&w| w != thief).collect();
            expect.sort_unstable();
            assert_eq!(order, expect);
            // First victim shares the thief's domain (each domain has 2
            // workers here).
            let first = s.steal_order_of(thief)[0];
            assert_eq!(topo.domain_of(first), topo.domain_of(thief));
        }
    }

    #[test]
    fn concurrent_push_pop_conserves_tasks() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let s = Arc::new(Scheduler::new(4, SchedulerPolicy::LocalPriority));
        let ran = Arc::new(AtomicUsize::new(0));
        const N: usize = 1000;
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                let ran = ran.clone();
                std::thread::spawn(move || {
                    for _ in 0..N {
                        let ran = ran.clone();
                        s.push(
                            Task::new(move || {
                                ran.fetch_add(1, Ordering::Relaxed);
                            }),
                            None,
                        );
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|w| {
                let s = s.clone();
                std::thread::spawn(move || loop {
                    match s.pop(w) {
                        Some(t) => t.run(),
                        None => {
                            if s.is_shutdown() && !s.has_queued() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        s.signal_shutdown();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(ran.load(Ordering::Relaxed), 4 * N);
    }

    #[test]
    fn pop_priority_order_is_pinned_high_local_global_steal() {
        // One task per lane, pushed in scrambled order; worker 0 must pop
        // them as pinned -> local-high -> global-high -> local deque ->
        // local inbox -> global injector -> steal.
        let s = Scheduler::new(2, SchedulerPolicy::LocalPriority);
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        let tagged = |tag: &'static str| {
            let order = order.clone();
            Task::new(move || order.lock().push(tag))
        };
        s.push(tagged("global"), None);
        s.push(tagged("steal").with_hint(crate::task::ScheduleHint::Worker(1)), None);
        s.push(tagged("global-high").with_priority(Priority::High), None);
        s.push(tagged("local-deque"), Some(0));
        s.push(
            tagged("local-high")
                .with_hint(crate::task::ScheduleHint::Worker(0))
                .with_priority(Priority::High),
            None,
        );
        // Main already owns deque 0 (the Some(0) push claimed it), so a
        // Worker(0) hint from the owner thread lands in the deque: LIFO
        // above "local-deque".
        s.push(tagged("local-top").with_hint(crate::task::ScheduleHint::Worker(0)), None);
        s.push(tagged("pinned").with_hint(crate::task::ScheduleHint::Pinned(0)), None);
        while let Some(t) = s.pop(0) {
            t.run();
        }
        assert_eq!(
            *order.lock(),
            vec!["pinned", "local-high", "global-high", "local-top", "local-deque", "global", "steal"]
        );
    }

    #[test]
    fn hinted_inbox_tasks_fifo_for_owner() {
        // A thread that does NOT own worker 0's deque hints tasks to it:
        // they land in the inbox and drain FIFO.
        let s = std::sync::Arc::new(Scheduler::new(1, SchedulerPolicy::LocalPriority));
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        let s2 = s.clone();
        let order2 = order.clone();
        std::thread::spawn(move || {
            for tag in [1, 2, 3] {
                let order = order2.clone();
                s2.push(
                    Task::new(move || order.lock().push(tag))
                        .with_hint(crate::task::ScheduleHint::Worker(0)),
                    None,
                );
            }
        })
        .join()
        .unwrap();
        while let Some(t) = s.pop(0) {
            t.run();
        }
        assert_eq!(*order.lock(), vec![1, 2, 3], "inbox drains oldest-first");
    }

    #[test]
    fn push_without_sleepers_issues_no_wake() {
        // All-busy runtime: nobody is parked, so pushes must not touch the
        // condvar at all (no notify syscalls, satellite of the eventcount
        // protocol).
        let s = Scheduler::new(2, SchedulerPolicy::LocalPriority);
        for _ in 0..100 {
            s.push(task(), None);
        }
        assert_eq!(s.stat_wakes.load(Ordering::Relaxed), 0, "no sleeper, no notify");
        assert_eq!(s.stat_parks.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn push_wakes_parked_worker() {
        use std::sync::Arc;
        let s = Arc::new(Scheduler::new(1, SchedulerPolicy::LocalPriority));
        let s2 = s.clone();
        let sleeper = std::thread::spawn(move || s2.wait_for_work(0));
        // stat_parks is bumped under the slot lock immediately before the
        // wait, and the waker takes the same lock, so once we observe the
        // park the notify cannot be lost.
        while s.stat_parks.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        s.push(task(), None);
        sleeper.join().unwrap();
        assert_eq!(s.stat_wakes.load(Ordering::Relaxed), 1);
        assert_eq!(s.stat_parks.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parking_worker_aborts_when_push_races() {
        // Deterministic single-thread slice of the eventcount protocol: a
        // push between the fast check and the park bumps the epoch, so
        // wait_for_work must return without blocking (queued is visible).
        let s = Scheduler::new(1, SchedulerPolicy::LocalPriority);
        s.push(task(), None);
        s.wait_for_work(0); // runnable shared work -> immediate return
        assert_eq!(s.stat_parks.load(Ordering::Relaxed), 0);
    }

    /// Two workers park; a task only worker 1 may acquire is pushed. The
    /// wake must go to worker 1 — an arbitrary `notify_one` could wake
    /// worker 0, which can never pop the task, stranding it forever.
    fn targeted_wake_case(policy: SchedulerPolicy, build: impl FnOnce(Task) -> Task) {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let s = Arc::new(Scheduler::new(2, policy));
        let ran = Arc::new(AtomicBool::new(false));
        let w1 = {
            let s = s.clone();
            std::thread::spawn(move || loop {
                if let Some(t) = s.pop(1) {
                    t.run();
                    return;
                }
                if s.is_shutdown() {
                    return;
                }
                s.wait_for_work(1);
            })
        };
        let w0 = {
            let s = s.clone();
            std::thread::spawn(move || loop {
                if s.is_shutdown() {
                    return;
                }
                s.wait_for_work(0);
            })
        };
        while s.stat_parks.load(Ordering::Relaxed) < 2 {
            std::thread::yield_now();
        }
        let r2 = ran.clone();
        s.push(build(Task::new(move || r2.store(true, Ordering::SeqCst))), None);
        // Hangs here (worker 1 never woken) if the wake goes astray.
        w1.join().unwrap();
        assert!(ran.load(Ordering::SeqCst), "worker 1 ran its task");
        s.signal_shutdown();
        w0.join().unwrap();
    }

    #[test]
    fn pinned_push_wakes_the_pinned_worker() {
        targeted_wake_case(SchedulerPolicy::LocalPriority, |t| {
            t.with_hint(crate::task::ScheduleHint::Pinned(1))
        });
    }

    #[test]
    fn hinted_high_priority_push_wakes_the_hinted_worker() {
        // Worker(w) + High lands in w's high lane, which is never stolen.
        targeted_wake_case(SchedulerPolicy::LocalPriority, |t| {
            t.with_hint(crate::task::ScheduleHint::Worker(1)).with_priority(Priority::High)
        });
    }

    #[test]
    fn static_hinted_push_wakes_the_hinted_worker() {
        // Under Static nothing is ever stolen, so any hinted task is
        // acquirable only by its target.
        targeted_wake_case(SchedulerPolicy::Static, |t| {
            t.with_hint(crate::task::ScheduleHint::Worker(1))
        });
    }

    #[test]
    fn worker_parks_despite_unacquirable_pinned_work() {
        use std::sync::Arc;
        // A task pinned to worker 1 sits queued; worker 0 must still park
        // rather than hot-spin on the global queued count (it can never
        // acquire the task).
        let s = Arc::new(Scheduler::new(2, SchedulerPolicy::LocalPriority));
        s.push(task().with_hint(crate::task::ScheduleHint::Pinned(1)), None);
        let s2 = s.clone();
        let w0 = std::thread::spawn(move || s2.wait_for_work(0));
        while s.stat_parks.load(Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        assert!(s.has_queued(), "parked with the unacquirable task still queued");
        s.signal_shutdown();
        w0.join().unwrap();
        assert!(s.pop(1).is_some(), "pinned task still acquirable by worker 1");
    }

    #[test]
    fn concurrent_batch_steal_conserves_tasks() {
        // 8 producers hammer every lane (global, hinted, pinned, high)
        // while 8 thieves drain with batch stealing; every task must run
        // exactly once.
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        const WORKERS: usize = 8;
        const N: usize = 500;
        let s = Arc::new(Scheduler::new(WORKERS, SchedulerPolicy::LocalPriority));
        let ran = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (0..8)
            .map(|p| {
                let s = s.clone();
                let ran = ran.clone();
                std::thread::spawn(move || {
                    for i in 0..N {
                        let ran = ran.clone();
                        let t = Task::new(move || {
                            ran.fetch_add(1, Ordering::Relaxed);
                        });
                        let t = match i % 4 {
                            0 => t,
                            1 => t.with_hint(crate::task::ScheduleHint::Worker(i % WORKERS)),
                            2 => t.with_hint(crate::task::ScheduleHint::Pinned(p % WORKERS)),
                            _ => t.with_priority(Priority::High),
                        };
                        s.push(t, None);
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..WORKERS)
            .map(|w| {
                let s = s.clone();
                std::thread::spawn(move || loop {
                    match s.pop(w) {
                        Some(t) => t.run(),
                        None => {
                            if s.is_shutdown() && !s.has_queued() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        s.signal_shutdown();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(ran.load(Ordering::Relaxed), 8 * N);
        // Sanity: batch stealing actually engaged under this much
        // contention (each consumer owns its deque, so steals use the
        // batched path).
        assert!(
            s.stat_stolen.load(Ordering::Relaxed)
                >= s.stat_steal_batches.load(Ordering::Relaxed)
        );
    }
}
