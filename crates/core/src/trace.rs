//! Task timeline tracing (the APEX-style introspection HPX users attach
//! for scheduling studies).
//!
//! When enabled, every executed task records `(worker, start, end)`;
//! [`TaskTrace::report`] condenses the timeline into per-worker busy time,
//! pool utilization and grain-size statistics — the quantities the
//! paper's AMT-overhead discussion revolves around, measured on the *real*
//! runtime rather than the simulator.
//!
//! **Deprecation note:** this API predates [`crate::introspect`] and is
//! kept as a thin compatibility facade over
//! [`introspect::Tracer`](crate::introspect::Tracer). It now shares the
//! tracer's per-worker bounded buffers (no more global-mutex hot path,
//! no unbounded growth) and simply projects the task-run spans out of
//! the richer event stream. New code should use `Runtime::tracer()` and
//! the `introspect` exporters directly; `TaskTrace::report` remains the
//! canonical busy-time/utilization summary.

use std::sync::Arc;

use crate::introspect::{EventKind, Tracer};

/// One executed task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskRecord {
    /// Worker that ran the task.
    pub worker: usize,
    /// Start, microseconds since trace start.
    pub start_us: f64,
    /// End, microseconds since trace start.
    pub end_us: f64,
}

impl TaskRecord {
    /// Task duration in microseconds.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// Recorder attached to a runtime (off by default; negligible cost while
/// disabled — one relaxed atomic load per task).
///
/// Compatibility facade over the runtime's
/// [`introspect::Tracer`](crate::introspect::Tracer): `start`/`stop`
/// drive the shared tracer, and `stop` filters the task-run spans back
/// into the legacy [`TaskRecord`] shape. Starting either interface
/// starts (and clears) the same underlying event buffers.
pub struct TaskTrace {
    tracer: Arc<Tracer>,
}

impl TaskTrace {
    pub(crate) fn with_tracer(tracer: Arc<Tracer>) -> Self {
        TaskTrace { tracer }
    }

    /// Begin recording (clears previous records).
    pub fn start(&self) {
        self.tracer.start();
    }

    /// Stop recording and return the timeline (task-run spans only; use
    /// `Runtime::tracer()` for the full typed event stream).
    pub fn stop(&self) -> Vec<TaskRecord> {
        self.tracer
            .stop()
            .of_kind(EventKind::TaskRun)
            .map(|e| TaskRecord {
                worker: e.lane,
                start_us: e.t_us,
                end_us: e.t_us + e.dur_us.unwrap_or(0.0),
            })
            .collect()
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Condense a timeline into summary statistics.
    pub fn report(records: &[TaskRecord], workers: usize) -> TraceReport {
        if records.is_empty() {
            return TraceReport {
                tasks: 0,
                span_us: 0.0,
                busy_us: vec![0.0; workers],
                utilization: 0.0,
                mean_task_us: 0.0,
                max_task_us: 0.0,
            };
        }
        let t0 = records.iter().map(|r| r.start_us).fold(f64::INFINITY, f64::min);
        let t1 = records.iter().map(|r| r.end_us).fold(0.0f64, f64::max);
        // A worker blocked in a future `get` help-executes other tasks, so
        // task intervals on one worker can NEST; busy time is the union of
        // the intervals, not their sum (a naive sum reports >100%
        // utilization).
        let mut per_worker: Vec<Vec<(f64, f64)>> = vec![Vec::new(); workers];
        let mut max_task = 0.0f64;
        let mut total = 0.0;
        for r in records {
            if r.worker < workers {
                per_worker[r.worker].push((r.start_us, r.end_us));
            }
            max_task = max_task.max(r.duration_us());
            total += r.duration_us();
        }
        let busy: Vec<f64> = per_worker
            .into_iter()
            .map(|mut iv| {
                iv.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                let mut sum = 0.0;
                let mut cur: Option<(f64, f64)> = None;
                for (s, e) in iv {
                    match &mut cur {
                        Some((_, ce)) if s <= *ce => *ce = ce.max(e),
                        _ => {
                            if let Some((cs, ce)) = cur {
                                sum += ce - cs;
                            }
                            cur = Some((s, e));
                        }
                    }
                }
                if let Some((cs, ce)) = cur {
                    sum += ce - cs;
                }
                sum
            })
            .collect();
        let span = (t1 - t0).max(1e-9);
        TraceReport {
            tasks: records.len(),
            span_us: span,
            utilization: busy.iter().sum::<f64>() / (span * workers as f64),
            busy_us: busy,
            mean_task_us: total / records.len() as f64,
            max_task_us: max_task,
        }
    }
}

/// Summary of a recorded timeline.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Tasks recorded.
    pub tasks: usize,
    /// Wall span from first start to last end, microseconds.
    pub span_us: f64,
    /// Busy time per worker, microseconds.
    pub busy_us: Vec<f64>,
    /// Σbusy / (span × workers): 1.0 = perfectly packed.
    pub utilization: f64,
    /// Mean task duration (the measured grain size), microseconds.
    pub mean_task_us: f64,
    /// Longest task, microseconds.
    pub max_task_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::par;
    use crate::runtime::Runtime;

    #[test]
    fn disabled_trace_records_nothing() {
        let rt = Runtime::builder().worker_threads(2).build();
        rt.spawn(|| {});
        rt.wait_idle();
        assert!(rt.task_trace().stop().is_empty());
        rt.shutdown();
    }

    #[test]
    fn trace_captures_spawned_tasks() {
        let rt = Runtime::builder().worker_threads(2).build();
        rt.task_trace().start();
        let l = crate::lcos::latch::Latch::for_runtime(&rt, 10);
        for _ in 0..10 {
            let l = l.clone();
            rt.spawn(move || l.count_down(1));
        }
        l.wait();
        rt.wait_idle();
        let recs = rt.task_trace().stop();
        assert!(recs.len() >= 10, "{}", recs.len());
        for r in &recs {
            assert!(r.worker < 2);
            assert!(r.end_us >= r.start_us);
        }
        rt.shutdown();
    }

    #[test]
    fn trace_capacity_bounds_records() {
        // Per-worker buffers are capped; overflow shows up in the
        // dropped counter instead of unbounded memory growth.
        let rt = Runtime::builder()
            .worker_threads(2)
            .trace_capacity(8)
            .build();
        rt.task_trace().start();
        let l = crate::lcos::latch::Latch::for_runtime(&rt, 200);
        for _ in 0..200 {
            let l = l.clone();
            rt.spawn(move || l.count_down(1));
        }
        l.wait();
        rt.wait_idle();
        let trace = rt.tracer().stop();
        assert!(
            trace.events.len() <= 8 * rt.tracer().lanes(),
            "{} events exceed cap",
            trace.events.len()
        );
        assert!(trace.dropped > 0, "expected overflow to be counted");
        rt.shutdown();
    }

    #[test]
    fn report_summarizes_grain_size() {
        let rt = Runtime::builder().worker_threads(3).build();
        rt.task_trace().start();
        let mut data = vec![0.0f64; 300_000];
        par(&rt).for_each_mut(&mut data, |i, x| *x = (i as f64).sin());
        rt.wait_idle();
        let recs = rt.task_trace().stop();
        let report = TaskTrace::report(&recs, 3);
        assert!(report.tasks >= 12, "4 chunks per worker: {}", report.tasks);
        assert!(report.span_us > 0.0);
        assert!(report.mean_task_us > 0.0);
        assert!(report.max_task_us >= report.mean_task_us);
        assert!(report.utilization > 0.0 && report.utilization <= 1.0);
        rt.shutdown();
    }

    #[test]
    fn report_of_empty_timeline_is_zeroed() {
        let r = TaskTrace::report(&[], 4);
        assert_eq!(r.tasks, 0);
        assert_eq!(r.busy_us, vec![0.0; 4]);
        assert_eq!(r.utilization, 0.0);
    }

    #[test]
    fn nested_help_execution_does_not_inflate_utilization() {
        // A task that help-executes another shows as nested intervals on
        // one worker; the union, not the sum, is the busy time.
        let recs = vec![
            TaskRecord { worker: 0, start_us: 0.0, end_us: 100.0 },
            TaskRecord { worker: 0, start_us: 10.0, end_us: 60.0 },
            TaskRecord { worker: 0, start_us: 20.0, end_us: 40.0 },
        ];
        let r = TaskTrace::report(&recs, 1);
        assert!((r.busy_us[0] - 100.0).abs() < 1e-9, "{}", r.busy_us[0]);
        assert!(r.utilization <= 1.0 + 1e-9, "{}", r.utilization);
    }

    #[test]
    fn report_utilization_math() {
        // Two workers, one 10us task each, fully overlapping.
        let recs = vec![
            TaskRecord { worker: 0, start_us: 0.0, end_us: 10.0 },
            TaskRecord { worker: 1, start_us: 0.0, end_us: 10.0 },
        ];
        let r = TaskTrace::report(&recs, 2);
        assert!((r.utilization - 1.0).abs() < 1e-9);
        assert_eq!(r.span_us, 10.0);
        assert_eq!(r.mean_task_us, 10.0);
    }
}
