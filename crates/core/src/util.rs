//! Small utilities shared across the runtime.

use std::any::Any;
use std::time::Instant;

/// Monotonic wall-clock timer, the analogue of
/// `hpx::util::high_resolution_timer` used to time the paper's kernels
/// (Listing 2 line 22).
#[derive(Clone, Copy, Debug)]
pub struct HighResolutionTimer {
    start: Instant,
}

impl HighResolutionTimer {
    /// Start (or restart) timing now.
    pub fn new() -> Self {
        HighResolutionTimer { start: Instant::now() }
    }

    /// Seconds elapsed since construction/restart.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Microseconds elapsed since construction/restart.
    pub fn elapsed_us(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }

    /// Restart the timer.
    pub fn restart(&mut self) {
        self.start = Instant::now();
    }
}

impl Default for HighResolutionTimer {
    fn default() -> Self {
        Self::new()
    }
}

/// Extract a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// A raw mutable pointer wrapper asserting `Send + Sync`, used by the
/// parallel algorithms to lend borrowed data to tasks that provably finish
/// before the borrow ends (a latch joins them before the algorithm
/// returns). The field is
/// private and exposed only through [`SendMutPtr::get`] so closures capture
/// the whole wrapper (2021-edition precise capture would otherwise grab the
/// raw pointer field directly, losing the Send/Sync assertion).
pub(crate) struct SendMutPtr<T: ?Sized>(*mut T);

unsafe impl<T: ?Sized> Send for SendMutPtr<T> {}
unsafe impl<T: ?Sized> Sync for SendMutPtr<T> {}

impl<T: ?Sized> Copy for SendMutPtr<T> {}
impl<T: ?Sized> Clone for SendMutPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: ?Sized> SendMutPtr<T> {
    pub(crate) fn new(p: *mut T) -> Self {
        SendMutPtr(p)
    }

    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_time() {
        let t = HighResolutionTimer::new();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let e = t.elapsed();
        assert!(e >= 0.004, "{e}");
        assert!(t.elapsed_us() >= 4000.0);
    }

    #[test]
    fn timer_restart_resets() {
        let mut t = HighResolutionTimer::new();
        std::thread::sleep(std::time::Duration::from_millis(5));
        t.restart();
        assert!(t.elapsed() < 0.005);
    }

    #[test]
    fn panic_message_variants() {
        let p: Box<dyn Any + Send> = Box::new("static str");
        assert_eq!(panic_message(&*p), "static str");
        let p: Box<dyn Any + Send> = Box::new("owned".to_string());
        assert_eq!(panic_message(&*p), "owned");
        let p: Box<dyn Any + Send> = Box::new(42i32);
        assert_eq!(panic_message(&*p), "<non-string panic payload>");
    }
}
