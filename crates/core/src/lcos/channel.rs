//! Multi-producer multi-consumer channel with future-based receive
//! (HPX `hpx::lcos::channel`).
//!
//! `recv` never blocks a thread: it returns a [`Future`] that is ready
//! immediately if a value is buffered, and otherwise completes when a
//! producer sends — the receiving continuation becomes a task. This is the
//! LCO the paper's distributed 1D stencil uses to receive halo cells from
//! neighbouring localities while the interior computes.

use crate::error::{Error, Result};
use crate::lcos::future::{Future, Promise};
use crate::runtime::Runtime;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

struct ChannelState<T: Send + 'static> {
    queue: VecDeque<T>,
    waiters: VecDeque<Promise<T>>,
    closed: bool,
}

/// An unbounded MPMC channel.
///
/// ```
/// use parallex::prelude::*;
///
/// let rt = Runtime::builder().worker_threads(2).build();
/// let ch: Channel<u32> = Channel::for_runtime(&rt);
/// let tx = ch.clone();
/// rt.spawn(move || tx.send(41).unwrap());
/// assert_eq!(ch.recv().get(), 41);
/// rt.shutdown();
/// ```
pub struct Channel<T: Send + 'static> {
    state: Arc<Mutex<ChannelState<T>>>,
    runtime: Option<Runtime>,
}

impl<T: Send + 'static> Clone for Channel<T> {
    fn clone(&self) -> Self {
        Channel { state: self.state.clone(), runtime: self.runtime.clone() }
    }
}

impl<T: Send + 'static> Channel<T> {
    /// Detached channel: receive-continuations run inline on the sender.
    pub fn new() -> Channel<T> {
        Channel {
            state: Arc::new(Mutex::new(ChannelState {
                queue: VecDeque::new(),
                waiters: VecDeque::new(),
                closed: false,
            })),
            runtime: None,
        }
    }

    /// Channel whose receive-continuations are scheduled on `rt`.
    pub fn for_runtime(rt: &Runtime) -> Channel<T> {
        let mut c = Channel::new();
        c.runtime = Some(rt.clone());
        c
    }

    fn make_promise(&self) -> Promise<T> {
        match &self.runtime {
            Some(rt) => rt.make_promise(),
            None => Promise::new(),
        }
    }

    /// Send a value. Delivers directly to the oldest waiting receiver if
    /// one exists, else buffers.
    ///
    /// Returns [`Error::ChannelClosed`] if the channel was closed.
    pub fn send(&self, v: T) -> Result<()> {
        let waiter = {
            let mut st = self.state.lock();
            if st.closed {
                return Err(Error::ChannelClosed);
            }
            match st.waiters.pop_front() {
                Some(w) => Some((w, v)),
                None => {
                    st.queue.push_back(v);
                    None
                }
            }
        };
        if let Some((p, v)) = waiter {
            p.set_value(v);
        }
        Ok(())
    }

    /// Receive as a future.
    pub fn recv(&self) -> Future<T> {
        let mut st = self.state.lock();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            let mut p = self.make_promise();
            let f = p.future();
            p.set_value(v);
            return f;
        }
        if st.closed {
            drop(st);
            let mut p = self.make_promise();
            let f = p.future();
            p.set_error(Error::ChannelClosed);
            return f;
        }
        let mut p = self.make_promise();
        let f = p.future();
        st.waiters.push_back(p);
        f
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.state.lock().queue.pop_front()
    }

    /// Buffered item count.
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close: pending and future receivers observe [`Error::ChannelClosed`];
    /// already-buffered values can still be drained with `try_recv`.
    pub fn close(&self) {
        let waiters: Vec<Promise<T>> = {
            let mut st = self.state.lock();
            st.closed = true;
            st.waiters.drain(..).collect()
        };
        for p in waiters {
            p.set_error(Error::ChannelClosed);
        }
    }
}

impl<T: Send + 'static> Default for Channel<T> {
    fn default() -> Self {
        Channel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_send_then_recv() {
        let c = Channel::new();
        c.send(1).unwrap();
        c.send(2).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.recv().get(), 1);
        assert_eq!(c.recv().get(), 2);
    }

    #[test]
    fn recv_before_send_completes_later() {
        let c = Channel::new();
        let f = c.recv();
        assert!(!f.is_ready());
        c.send(42).unwrap();
        assert_eq!(f.get(), 42);
    }

    #[test]
    fn waiters_are_fifo() {
        let c = Channel::new();
        let f1 = c.recv();
        let f2 = c.recv();
        c.send(1).unwrap();
        c.send(2).unwrap();
        assert_eq!(f1.get(), 1);
        assert_eq!(f2.get(), 2);
    }

    #[test]
    fn try_recv_on_empty() {
        let c: Channel<i32> = Channel::new();
        assert!(c.try_recv().is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn close_rejects_send_and_fails_waiters() {
        let c: Channel<i32> = Channel::new();
        let pending = c.recv();
        c.close();
        assert_eq!(pending.try_get(), Err(Error::ChannelClosed));
        assert_eq!(c.send(1), Err(Error::ChannelClosed));
        assert_eq!(c.recv().try_get(), Err(Error::ChannelClosed));
    }

    #[test]
    fn close_keeps_buffered_values_drainable() {
        let c = Channel::new();
        c.send(7).unwrap();
        c.close();
        assert_eq!(c.try_recv(), Some(7));
    }

    #[test]
    fn cross_task_pipeline() {
        let rt = Runtime::builder().worker_threads(2).build();
        let c = Channel::for_runtime(&rt);
        let c2 = c.clone();
        rt.spawn(move || {
            for i in 0..100 {
                c2.send(i).unwrap();
            }
        });
        let sum: i64 = (0..100).map(|_| c.recv().get()).sum();
        assert_eq!(sum, 4950);
        rt.shutdown();
    }

    #[test]
    fn mpmc_many_producers_many_consumers() {
        let c = Channel::new();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for i in 0..50 {
                        c.send(p * 50 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || -> i64 { (0..50).map(|_| c.recv().get() as i64).sum() })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let total: i64 = consumers.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, (0..200).sum::<i64>());
    }
}
