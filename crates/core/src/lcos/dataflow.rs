//! `dataflow`: run a function when all its future arguments are ready
//! (HPX `hpx::dataflow`).
//!
//! Dataflow is the idiom HPX stencils are built from: each chunk's
//! time-step `t+1` task is `dataflow(update, left[t], middle[t],
//! right[t])`, producing exactly the dependency DAG the paper's Section I
//! describes ("tasks are launched arbitrarily based on the input data and
//! the DAG generated").

use crate::lcos::future::{when_all, Future};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Run `f(a, b)` once both futures are ready; errors propagate. Nothing
/// blocks: whichever future completes last fires the combiner (as a
/// scheduled task when the futures belong to a runtime).
///
/// ```
/// use parallex::prelude::*;
/// use parallex::lcos::dataflow::dataflow2;
///
/// let rt = Runtime::builder().worker_threads(2).build();
/// let a = rt.async_task(|| 6);
/// let b = rt.async_task(|| 7);
/// assert_eq!(dataflow2(a, b, |x, y| x * y).get(), 42);
/// rt.shutdown();
/// ```
pub fn dataflow2<A, B, R>(
    fa: Future<A>,
    fb: Future<B>,
    f: impl FnOnce(A, B) -> R + Send + 'static,
) -> Future<R>
where
    A: Send + 'static,
    B: Send + 'static,
    R: Send + 'static,
{
    use crate::error::Result;
    use crate::lcos::future::Promise;

    struct Join<A, B, R: Send + 'static> {
        a: Mutex<Option<Result<A>>>,
        b: Mutex<Option<Result<B>>>,
        remaining: AtomicUsize,
        #[allow(clippy::type_complexity)]
        finish: Mutex<Option<(Promise<R>, Box<dyn FnOnce(A, B) -> R + Send>)>>,
    }

    impl<A: Send + 'static, B: Send + 'static, R: Send + 'static> Join<A, B, R> {
        fn arrived(self: &Arc<Self>) {
            if self.remaining.fetch_sub(1, Ordering::AcqRel) != 1 {
                return;
            }
            let (p, f) = self.finish.lock().take().expect("finish fires once");
            let a = self.a.lock().take().expect("a filled");
            let b = self.b.lock().take().expect("b filled");
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || f(a, b))) {
                        Ok(r) => p.set_value(r),
                        Err(pl) => p.set_error(crate::error::Error::TaskPanicked(
                            crate::util::panic_message(&*pl),
                        )),
                    }
                }
                (Err(e), _) | (_, Err(e)) => p.set_error(e),
            }
        }
    }

    let mut promise = match fa.core().or_else(|| fb.core()) {
        Some(core) => Promise::with_core(core),
        None => Promise::new(),
    };
    let out = promise.future();
    let join = Arc::new(Join {
        a: Mutex::new(None),
        b: Mutex::new(None),
        remaining: AtomicUsize::new(2),
        finish: Mutex::new(Some((promise, Box::new(f) as Box<dyn FnOnce(A, B) -> R + Send>))),
    });
    let ja = join.clone();
    fa.on_complete(move |res| {
        *ja.a.lock() = Some(res);
        ja.arrived();
    });
    let jb = join.clone();
    fb.on_complete(move |res| {
        *jb.b.lock() = Some(res);
        jb.arrived();
    });
    out
}

/// Run `f(a, b, c)` once all three futures are ready.
pub fn dataflow3<A, B, C, R>(
    fa: Future<A>,
    fb: Future<B>,
    fc: Future<C>,
    f: impl FnOnce(A, B, C) -> R + Send + 'static,
) -> Future<R>
where
    A: Send + 'static,
    B: Send + 'static,
    C: Send + 'static,
    R: Send + 'static,
{
    dataflow2(dataflow2(fa, fb, |a, b| (a, b)), fc, move |(a, b), c| f(a, b, c))
}

/// Run `f(values)` once every future in the (homogeneous) vector is ready.
pub fn dataflow_vec<T, R>(
    futures: Vec<Future<T>>,
    f: impl FnOnce(Vec<T>) -> R + Send + 'static,
) -> Future<R>
where
    T: Send + 'static,
    R: Send + 'static,
{
    when_all(futures).then(f)
}

/// A dynamic unrolled-dependency counter used by `dataflow`-heavy codes to
/// know when a whole DAG stage has retired (diagnostics/testing aid).
#[derive(Clone, Default)]
pub struct StageCounter {
    fired: Arc<AtomicUsize>,
}

impl StageCounter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }
    /// Record one completion.
    pub fn bump(&self) {
        self.fired.fetch_add(1, Ordering::Relaxed);
    }
    /// Completions recorded so far.
    pub fn count(&self) -> usize {
        self.fired.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcos::future::Promise;
    use crate::runtime::Runtime;

    #[test]
    fn dataflow2_combines_when_both_ready() {
        let mut pa = Promise::new();
        let mut pb = Promise::new();
        let f = dataflow2(pa.future(), pb.future(), |a: i32, b: i32| a + b);
        pb.set_value(2);
        assert!(!f.is_ready());
        pa.set_value(40);
        assert_eq!(f.get(), 42);
    }

    #[test]
    fn dataflow3_combines_three() {
        let mut pa = Promise::new();
        let mut pb = Promise::new();
        let mut pc = Promise::new();
        let f = dataflow3(pa.future(), pb.future(), pc.future(), |a: i32, b: i32, c: i32| {
            a * 100 + b * 10 + c
        });
        pc.set_value(3);
        pa.set_value(1);
        pb.set_value(2);
        assert_eq!(f.get(), 123);
    }

    #[test]
    fn dataflow_vec_over_tasks() {
        let rt = Runtime::builder().worker_threads(2).build();
        let fs: Vec<_> = (1..=5).map(|i| rt.async_task(move || i)).collect();
        let f = dataflow_vec(fs, |v| v.into_iter().product::<i64>());
        assert_eq!(f.get(), 120);
        rt.shutdown();
    }

    #[test]
    fn dataflow_error_propagates() {
        let mut pa: Promise<i32> = Promise::new();
        let mut pb: Promise<i32> = Promise::new();
        let f = dataflow2(pa.future(), pb.future(), |_, _| unreachable!("must not run"));
        pa.set_error(crate::error::Error::BrokenPromise);
        pb.set_value(1);
        assert!(f.try_get().is_err());
    }

    #[test]
    fn stencil_like_dag_over_time_steps() {
        // Three cells, each step depends on left/middle/right of previous
        // step: the canonical ParalleX 3-point-stencil DAG.
        let rt = Runtime::builder().worker_threads(4).build();
        let steps = 16;
        let mut current: Vec<Future<f64>> =
            (0..3).map(|i| rt.make_ready_future(i as f64)).collect();
        for _ in 0..steps {
            // Duplicate the layer: each future is single-consumer, so fan
            // it out through `then`-created copies.
            let dup: Vec<(Future<f64>, Future<f64>, Future<f64>)> = current
                .into_iter()
                .map(|f| {
                    let v = f.get(); // materialize for simple duplication
                    (
                        rt.make_ready_future(v),
                        rt.make_ready_future(v),
                        rt.make_ready_future(v),
                    )
                })
                .collect();
            let (l0, l1, l2) = {
                let mut it = dup.into_iter();
                (it.next().unwrap(), it.next().unwrap(), it.next().unwrap())
            };
            let new0 = dataflow2(l0.0, l1.0, |a, b| (a + b) / 2.0);
            let new1 = dataflow3(l0.1, l1.1, l2.0, |a, b, c| (a + b + c) / 3.0);
            let new2 = dataflow2(l1.2, l2.1, |b, c| (b + c) / 2.0);
            drop(l2.2);
            current = vec![new0, new1, new2];
        }
        let finals: Vec<f64> = current.into_iter().map(|f| f.get()).collect();
        // Diffusion drives every cell toward the mean of the initial data.
        for v in finals {
            assert!((v - 1.0).abs() < 0.2, "{v}");
        }
        rt.shutdown();
    }
}
