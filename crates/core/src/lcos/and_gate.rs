//! N-input AND gate (HPX `hpx::lcos::local::and_gate`).
//!
//! Fires a future once all of its numbered inputs have been set — the LCO
//! behind "start this time step once *both* halos arrived".

use crate::error::Error;
use crate::lcos::future::{Future, Promise};
use crate::runtime::Runtime;
use parking_lot::Mutex;
use std::sync::Arc;

struct GateState {
    set: Vec<bool>,
    remaining: usize,
    promise: Option<Promise<()>>,
}

/// A one-shot AND gate over `n` inputs.
#[derive(Clone)]
pub struct AndGate {
    state: Arc<Mutex<GateState>>,
}

impl AndGate {
    /// Gate with `n` inputs whose output future was created detached.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> (AndGate, Future<()>) {
        AndGate::make(n, Promise::new())
    }

    /// Gate whose output continuation is scheduled on `rt`.
    pub fn for_runtime(rt: &Runtime, n: usize) -> (AndGate, Future<()>) {
        AndGate::make(n, rt.make_promise())
    }

    fn make(n: usize, mut promise: Promise<()>) -> (AndGate, Future<()>) {
        assert!(n > 0, "and-gate needs at least one input");
        let future = promise.future();
        let gate = AndGate {
            state: Arc::new(Mutex::new(GateState {
                set: vec![false; n],
                remaining: n,
                promise: Some(promise),
            })),
        };
        (gate, future)
    }

    /// Set input `i`. Returns an error if `i` was already set (double
    /// arrival indicates a protocol bug) or out of range.
    pub fn set(&self, i: usize) -> crate::error::Result<()> {
        let fire = {
            let mut st = self.state.lock();
            if i >= st.set.len() {
                return Err(Error::InvalidArgument(format!(
                    "and-gate input {i} out of range 0..{}",
                    st.set.len()
                )));
            }
            if st.set[i] {
                return Err(Error::InvalidArgument(format!("and-gate input {i} set twice")));
            }
            st.set[i] = true;
            st.remaining -= 1;
            if st.remaining == 0 {
                st.promise.take()
            } else {
                None
            }
        };
        if let Some(p) = fire {
            p.set_value(());
        }
        Ok(())
    }

    /// Inputs not yet set.
    pub fn remaining(&self) -> usize {
        self.state.lock().remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_when_all_inputs_set() {
        let (g, f) = AndGate::new(3);
        g.set(0).unwrap();
        g.set(2).unwrap();
        assert!(!f.is_ready());
        assert_eq!(g.remaining(), 1);
        g.set(1).unwrap();
        assert!(f.is_ready());
        f.get();
    }

    #[test]
    fn double_set_is_an_error() {
        let (g, _f) = AndGate::new(2);
        g.set(0).unwrap();
        assert!(g.set(0).is_err());
    }

    #[test]
    fn out_of_range_is_an_error() {
        let (g, _f) = AndGate::new(1);
        assert!(g.set(5).is_err());
    }

    #[test]
    fn gate_across_tasks() {
        let rt = Runtime::builder().worker_threads(2).build();
        let (g, f) = AndGate::for_runtime(&rt, 8);
        for i in 0..8 {
            let g = g.clone();
            rt.spawn(move || {
                g.set(i).unwrap();
            });
        }
        f.get();
        assert_eq!(g.remaining(), 0);
        rt.shutdown();
    }
}
