//! Count-down latch (HPX `hpx::latch`).
//!
//! The parallel algorithms use a latch to join their chunk tasks: each
//! chunk counts down once, and the caller's `wait` help-executes queued
//! tasks (including those very chunks) until the count hits zero.

use crate::runtime::{help_until, Core};
use crate::runtime::Runtime;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A one-shot count-down latch.
///
/// ```
/// use parallex::prelude::*;
///
/// let rt = Runtime::builder().worker_threads(2).build();
/// let latch = Latch::for_runtime(&rt, 3);
/// for _ in 0..3 {
///     let l = latch.clone();
///     rt.spawn(move || l.count_down(1));
/// }
/// latch.wait();
/// assert!(latch.is_ready());
/// rt.shutdown();
/// ```
#[derive(Clone)]
pub struct Latch {
    inner: Arc<Inner>,
}

struct Inner {
    count: AtomicUsize,
    core: Option<Arc<Core>>,
}

impl Latch {
    /// Detached latch: waiters spin/yield instead of help-executing.
    pub fn new(count: usize) -> Latch {
        Latch { inner: Arc::new(Inner { count: AtomicUsize::new(count), core: None }) }
    }

    /// Latch whose waiters help-execute tasks of `rt` while blocked.
    pub fn for_runtime(rt: &Runtime, count: usize) -> Latch {
        Latch {
            inner: Arc::new(Inner {
                count: AtomicUsize::new(count),
                core: Some(rt.core().clone()),
            }),
        }
    }

    /// Decrement by `n`.
    ///
    /// # Panics
    /// Panics if the latch would go below zero.
    pub fn count_down(&self, n: usize) {
        let prev = self.inner.count.fetch_sub(n, Ordering::AcqRel);
        assert!(prev >= n, "latch underflow: {prev} - {n}");
    }

    /// Whether the count has reached zero.
    pub fn is_ready(&self) -> bool {
        self.inner.count.load(Ordering::Acquire) == 0
    }

    /// Current count (diagnostics).
    pub fn count(&self) -> usize {
        self.inner.count.load(Ordering::Acquire)
    }

    /// Block until the count reaches zero.
    pub fn wait(&self) {
        let inner = self.inner.clone();
        help_until(self.inner.core.as_ref(), move || {
            inner.count.load(Ordering::Acquire) == 0
        });
    }

    /// `count_down(1)` then `wait()` (HPX `arrive_and_wait`).
    pub fn arrive_and_wait(&self) {
        self.count_down(1);
        self.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_down_to_ready() {
        let l = Latch::new(3);
        assert!(!l.is_ready());
        l.count_down(2);
        assert_eq!(l.count(), 1);
        l.count_down(1);
        assert!(l.is_ready());
        l.wait(); // returns immediately
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let l = Latch::new(1);
        l.count_down(2);
    }

    #[test]
    fn wait_blocks_until_other_thread_arrives() {
        let l = Latch::new(1);
        let l2 = l.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            l2.count_down(1);
        });
        l.wait();
        assert!(l.is_ready());
        t.join().unwrap();
    }

    #[test]
    fn latch_joins_runtime_tasks() {
        let rt = Runtime::builder().worker_threads(2).build();
        let l = Latch::for_runtime(&rt, 10);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let l = l.clone();
            let hits = hits.clone();
            rt.spawn(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                l.count_down(1);
            });
        }
        l.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 10);
        rt.shutdown();
    }

    #[test]
    fn wait_from_worker_helps_instead_of_deadlocking() {
        // One worker: the waiting task must execute the counting tasks
        // itself while blocked on the latch.
        let rt = Runtime::builder().worker_threads(1).build();
        let rt2 = rt.clone();
        let f = rt.async_task(move || {
            let l = Latch::for_runtime(&rt2, 4);
            for _ in 0..4 {
                let l = l.clone();
                rt2.spawn(move || l.count_down(1));
            }
            l.wait();
            true
        });
        assert!(f.get());
        rt.shutdown();
    }
}
