//! Reusable cyclic barrier (HPX `hpx::barrier`).

use crate::runtime::{help_until, Core};
use crate::runtime::Runtime;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A generation-counted barrier for a fixed number of participants.
/// Reusable: after all participants arrive, the next round begins.
#[derive(Clone)]
pub struct Barrier {
    inner: Arc<Inner>,
}

struct Inner {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    core: Option<Arc<Core>>,
}

impl Barrier {
    /// Detached barrier for `parties` participants.
    ///
    /// # Panics
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Barrier {
        Barrier::make(parties, None)
    }

    /// Barrier whose waiters help-execute tasks of `rt`.
    pub fn for_runtime(rt: &Runtime, parties: usize) -> Barrier {
        Barrier::make(parties, Some(rt.core().clone()))
    }

    fn make(parties: usize, core: Option<Arc<Core>>) -> Barrier {
        assert!(parties > 0, "barrier needs at least one party");
        Barrier {
            inner: Arc::new(Inner {
                parties,
                arrived: AtomicUsize::new(0),
                generation: AtomicUsize::new(0),
                core,
            }),
        }
    }

    /// Number of participants per round.
    pub fn parties(&self) -> usize {
        self.inner.parties
    }

    /// Current generation (completed rounds).
    pub fn generation(&self) -> usize {
        self.inner.generation.load(Ordering::Acquire)
    }

    /// Arrive and block until all `parties` have arrived this round.
    /// Returns `true` for exactly one participant per round (the "leader",
    /// like `std::sync::Barrier`).
    pub fn arrive_and_wait(&self) -> bool {
        let inner = &self.inner;
        let gen = inner.generation.load(Ordering::Acquire);
        let pos = inner.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if pos == inner.parties {
            // Leader: reset and open the next generation.
            inner.arrived.store(0, Ordering::Release);
            inner.generation.fetch_add(1, Ordering::AcqRel);
            true
        } else {
            let inner2 = self.inner.clone();
            help_until(self.inner.core.as_ref(), move || {
                inner2.generation.load(Ordering::Acquire) != gen
            });
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_party_never_blocks() {
        let b = Barrier::new(1);
        for _ in 0..3 {
            assert!(b.arrive_and_wait());
        }
        assert_eq!(b.generation(), 3);
    }

    #[test]
    fn all_threads_cross_together() {
        let b = Barrier::new(4);
        let before = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let b = b.clone();
                let before = before.clone();
                std::thread::spawn(move || {
                    before.fetch_add(1, Ordering::SeqCst);
                    b.arrive_and_wait();
                    // After the barrier everyone must see all arrivals.
                    assert_eq!(before.load(Ordering::SeqCst), 4);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(b.generation(), 1);
    }

    #[test]
    fn exactly_one_leader_per_round() {
        let b = Barrier::new(3);
        let leaders = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let b = b.clone();
                let leaders = leaders.clone();
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        if b.arrive_and_wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 5);
        assert_eq!(b.generation(), 5);
    }

    #[test]
    fn barrier_among_runtime_tasks() {
        let rt = Runtime::builder().worker_threads(4).build();
        let b = Barrier::for_runtime(&rt, 4);
        let fs: Vec<_> = (0..4)
            .map(|i| {
                let b = b.clone();
                rt.async_task(move || {
                    b.arrive_and_wait();
                    i
                })
            })
            .collect();
        let sum: usize = crate::lcos::future::when_all(fs).get().into_iter().sum();
        assert_eq!(sum, 6);
        rt.shutdown();
    }
}
