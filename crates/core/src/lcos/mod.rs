//! Local Control Objects (LCOs).
//!
//! In ParalleX every synchronization point is a first-class object that
//! *receives events and spawns work* rather than blocking a thread: a
//! future completes and its continuation becomes a new task; a latch
//! reaching zero releases its waiters; a channel delivers a value to a
//! parked receiver by fulfilling a promise. This is the "lightweight
//! synchronization mechanisms" pillar of the model (Section III-A of the
//! paper) and what lets a stencil time step start the moment its
//! neighbours' halos arrive instead of at a global barrier.
//!
//! Provided LCOs:
//!
//! * [`future::Promise`] / [`future::Future`] with `then`, [`future::when_all`],
//!   [`future::when_any`]
//! * [`dataflow`] — run a function when all its future arguments are ready
//! * [`latch::Latch`], [`barrier::Barrier`]
//! * [`channel::Channel`] — multi-producer multi-consumer with futures-based
//!   receive
//! * [`semaphore::Semaphore`], [`mutex::AsyncMutex`], [`and_gate::AndGate`]
//!
//! Waits issued from runtime workers help-execute other tasks (see
//! [`crate::runtime`]), so none of these primitives can deadlock a pool by
//! parking all its OS threads.

pub mod and_gate;
pub mod barrier;
pub mod channel;
pub mod dataflow;
pub mod future;
pub mod latch;
pub mod mutex;
pub mod semaphore;
