//! Counting semaphore with future-based acquire
//! (HPX `hpx::lcos::local::sliding_semaphore` family).
//!
//! HPX's distributed stencil codes use a sliding semaphore to bound how far
//! ahead the time-stepper may run of its neighbours' halo exchanges; our
//! 1D heat solver uses this semaphore the same way.

use crate::lcos::future::{Future, Promise};
use crate::runtime::Runtime;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

struct SemState {
    permits: usize,
    waiters: VecDeque<Promise<()>>,
}

struct Inner {
    state: Mutex<SemState>,
    runtime: Option<Runtime>,
}

/// A counting semaphore. `acquire` yields a future of a [`Permit`]; the
/// permit returns itself on drop.
#[derive(Clone)]
pub struct Semaphore {
    inner: Arc<Inner>,
}

/// An acquired permit; releases on drop.
pub struct Permit {
    inner: Arc<Inner>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        release(&self.inner);
    }
}

fn release(inner: &Arc<Inner>) {
    let waiter = {
        let mut st = inner.state.lock();
        match st.waiters.pop_front() {
            Some(w) => Some(w),
            None => {
                st.permits += 1;
                None
            }
        }
    };
    if let Some(p) = waiter {
        p.set_value(());
    }
}

impl Semaphore {
    /// Detached semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            inner: Arc::new(Inner {
                state: Mutex::new(SemState { permits, waiters: VecDeque::new() }),
                runtime: None,
            }),
        }
    }

    /// Semaphore whose acquire-continuations are scheduled on `rt`.
    pub fn for_runtime(rt: &Runtime, permits: usize) -> Semaphore {
        let mut s = Semaphore::new(permits);
        Arc::get_mut(&mut s.inner).unwrap().runtime = Some(rt.clone());
        s
    }

    fn make_promise(&self) -> Promise<()> {
        match &self.inner.runtime {
            Some(rt) => rt.make_promise(),
            None => Promise::new(),
        }
    }

    /// Acquire one permit as a future.
    pub fn acquire(&self) -> Future<Permit> {
        let granted = {
            let mut st = self.inner.state.lock();
            if st.permits > 0 {
                st.permits -= 1;
                true
            } else {
                false
            }
        };
        let inner = self.inner.clone();
        if granted {
            let mut p = self.make_promise();
            let f = p.future();
            p.set_value(());
            f.then(move |()| Permit { inner })
        } else {
            let mut p = self.make_promise();
            let f = p.future();
            self.inner.state.lock().waiters.push_back(p);
            f.then(move |()| Permit { inner })
        }
    }

    /// Try to acquire without waiting.
    pub fn try_acquire(&self) -> Option<Permit> {
        let mut st = self.inner.state.lock();
        if st.permits > 0 {
            st.permits -= 1;
            Some(Permit { inner: self.inner.clone() })
        } else {
            None
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.inner.state.lock().permits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let s = Semaphore::new(2);
        let a = s.acquire().get();
        let b = s.acquire().get();
        assert_eq!(s.available(), 0);
        assert!(s.try_acquire().is_none());
        drop(a);
        assert_eq!(s.available(), 1);
        drop(b);
        assert_eq!(s.available(), 2);
    }

    #[test]
    fn waiter_woken_on_release() {
        let s = Semaphore::new(1);
        let first = s.acquire().get();
        let pending = s.acquire();
        assert!(!pending.is_ready());
        drop(first);
        let _second = pending.get();
    }

    #[test]
    fn fifo_handoff() {
        let s = Semaphore::new(0);
        let f1 = s.acquire();
        let f2 = s.acquire();
        // Two releases in a row hand permits to waiters in order.
        release(&s.inner);
        assert!(f1.is_ready());
        assert!(!f2.is_ready());
        release(&s.inner);
        assert!(f2.is_ready());
        drop(f1.get());
        drop(f2.get());
        assert_eq!(s.available(), 2);
    }

    #[test]
    fn bounds_pipeline_depth_across_tasks() {
        // The sliding-semaphore pattern from the 1D stencil: at most
        // `window` stages in flight. Continuation style — the guarded work
        // runs when the permit arrives (never block a worker on a
        // contended permit; see the AsyncMutex module docs).
        let rt = Runtime::builder().worker_threads(2).build();
        let s = Semaphore::for_runtime(&rt, 3);
        let max_seen = Arc::new(Mutex::new(0usize));
        let in_flight = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let done = crate::lcos::latch::Latch::for_runtime(&rt, 20);
        for _ in 0..20 {
            let max_seen = max_seen.clone();
            let in_flight = in_flight.clone();
            let done = done.clone();
            drop(s.acquire().then(move |permit| {
                let now = in_flight.fetch_add(1, std::sync::atomic::Ordering::SeqCst) + 1;
                {
                    let mut m = max_seen.lock();
                    *m = (*m).max(now);
                }
                std::thread::sleep(std::time::Duration::from_micros(200));
                in_flight.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                drop(permit);
                done.count_down(1);
            }));
        }
        done.wait();
        assert!(*max_seen.lock() <= 3, "window exceeded: {}", *max_seen.lock());
        rt.shutdown();
    }
}
