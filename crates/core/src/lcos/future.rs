//! Promises and futures with HPX semantics.
//!
//! These are *eager, continuation-based* futures (like `hpx::future`, not
//! like Rust's polling `std::future::Future`): the producer side runs
//! regardless of whether anyone waits, and attaching a continuation with
//! [`Future::then`] schedules a new lightweight task when the value
//! arrives. `get` from a worker thread help-executes other tasks while
//! waiting, so blocking on a future never idles a core.

use crate::error::{Error, Result};
use crate::runtime::{help_until, Core};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type Callback<T> = Box<dyn FnOnce(Result<T>) + Send + 'static>;

enum State<T> {
    /// Not yet completed; at most one continuation may be registered.
    Pending { cb: Option<Callback<T>> },
    /// Completed, value not yet consumed.
    Ready(Result<T>),
    /// Value handed to `get` or a continuation.
    Consumed,
}

pub(crate) struct Shared<T> {
    state: Mutex<State<T>>,
    /// Set once the result (or error) has been produced: lock-free
    /// `is_ready` fast path.
    completed: AtomicBool,
    /// Runtime to schedule continuations on and to help-execute while
    /// waiting; `None` for detached promises (continuations run inline on
    /// the completing thread).
    core: Option<Arc<Core>>,
}

impl<T: Send + 'static> Shared<T> {
    #[allow(clippy::single_match)] // the no-op arm documents the when_any race
    fn complete(self: &Arc<Self>, res: Result<T>) {
        let mut st = self.state.lock();
        match &mut *st {
            State::Pending { cb } => match cb.take() {
                Some(cb) => {
                    *st = State::Consumed;
                    drop(st);
                    self.completed.store(true, Ordering::Release);
                    self.run_continuation(cb, res);
                }
                None => {
                    *st = State::Ready(res);
                    drop(st);
                    self.completed.store(true, Ordering::Release);
                }
            },
            // Already completed (e.g. a when_any race lost): drop `res`.
            _ => {}
        }
    }

    fn run_continuation(self: &Arc<Self>, cb: Callback<T>, res: Result<T>) {
        match &self.core {
            Some(core) => {
                core.counters.continuations_run.fetch_add(1, Ordering::Relaxed);
                // Continuations go through the scheduler like any task, at
                // high priority to keep dependency chains moving.
                let task = crate::task::Task::new(move || cb(res))
                    .with_priority(crate::task::Priority::High);
                core.spawn(task);
            }
            None => cb(res),
        }
    }
}

/// The write side of a future (HPX `hpx::promise`).
pub struct Promise<T: Send + 'static> {
    shared: Arc<Shared<T>>,
    fulfilled: bool,
    future_taken: bool,
}

impl<T: Send + 'static> Promise<T> {
    /// A detached promise: continuations run inline on the completing
    /// thread and waiting threads cannot help-execute.
    pub fn new() -> Promise<T> {
        Promise::make(None)
    }

    pub(crate) fn with_core(core: Arc<Core>) -> Promise<T> {
        Promise::make(Some(core))
    }

    fn make(core: Option<Arc<Core>>) -> Promise<T> {
        Promise {
            shared: Arc::new(Shared {
                state: Mutex::new(State::Pending { cb: None }),
                completed: AtomicBool::new(false),
                core,
            }),
            fulfilled: false,
            future_taken: false,
        }
    }

    /// Obtain the read side. May be called once.
    ///
    /// # Panics
    /// Panics on a second call.
    pub fn future(&mut self) -> Future<T> {
        assert!(!self.future_taken, "future() already taken from this promise");
        self.future_taken = true;
        Future { shared: self.shared.clone() }
    }

    /// Fulfil with a value, waking/scheduling any continuation.
    pub fn set_value(mut self, v: T) {
        self.fulfilled = true;
        self.shared.complete(Ok(v));
    }

    /// Fulfil with an error.
    pub fn set_error(mut self, e: Error) {
        self.fulfilled = true;
        self.shared.complete(Err(e));
    }

}

impl<T: Send + 'static> Default for Promise<T> {
    fn default() -> Self {
        Promise::new()
    }
}

impl<T: Send + 'static> Drop for Promise<T> {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.shared.complete(Err(Error::BrokenPromise));
        }
    }
}

/// The read side (HPX `hpx::future`): single-consumer — `get` or `then`
/// consumes it.
pub struct Future<T: Send + 'static> {
    shared: Arc<Shared<T>>,
}

impl<T: Send + 'static> Future<T> {
    /// A future that is already ready (detached; see
    /// [`crate::runtime::Runtime::make_ready_future`] for the
    /// runtime-attached variant).
    pub fn ready(v: T) -> Future<T> {
        let mut p = Promise::new();
        let f = p.future();
        p.set_value(v);
        f
    }

    /// Whether the result has been produced.
    pub fn is_ready(&self) -> bool {
        self.shared.completed.load(Ordering::Acquire)
    }

    /// Block until ready (help-executing if called from a worker).
    pub fn wait(&self) {
        let shared = self.shared.clone();
        help_until(self.shared.core.as_ref(), move || {
            shared.completed.load(Ordering::Acquire)
        });
    }

    /// Wait and take the value.
    ///
    /// # Panics
    /// Panics if the producing task failed ([`Error::TaskPanicked`]) or the
    /// promise was dropped. Use [`Future::try_get`] to handle errors.
    pub fn get(self) -> T {
        match self.try_get() {
            Ok(v) => v,
            Err(e) => panic!("future::get failed: {e}"),
        }
    }

    /// Wait and take the result.
    pub fn try_get(self) -> Result<T> {
        self.wait();
        let mut st = self.shared.state.lock();
        match std::mem::replace(&mut *st, State::Consumed) {
            State::Ready(res) => res,
            State::Consumed => panic!("future value already consumed"),
            State::Pending { .. } => unreachable!("wait() returned before completion"),
        }
    }

    /// Register `cb` to run with the result as soon as it is available
    /// (internal primitive behind `then`/`when_all`). If the future is
    /// already ready the callback runs immediately on this thread.
    pub(crate) fn on_complete(self, cb: impl FnOnce(Result<T>) + Send + 'static) {
        let mut cb = Some(cb);
        let run_now = {
            let mut st = self.shared.state.lock();
            match std::mem::replace(&mut *st, State::Consumed) {
                State::Ready(res) => Some(res),
                State::Consumed => panic!("future value already consumed"),
                State::Pending { cb: existing } => {
                    assert!(existing.is_none(), "only one continuation per future");
                    *st = State::Pending { cb: Some(Box::new(cb.take().expect("cb present"))) };
                    None
                }
            }
        };
        if let Some(res) = run_now {
            (cb.take().expect("cb not stored"))(res);
        }
    }

    /// Attach a continuation: returns a future of `f(value)`. The
    /// continuation is scheduled as a high-priority task when this future
    /// was produced by a runtime, and runs inline otherwise. Errors
    /// propagate without running `f`.
    pub fn then<U: Send + 'static>(
        self,
        f: impl FnOnce(T) -> U + Send + 'static,
    ) -> Future<U> {
        let mut p = match &self.shared.core {
            Some(core) => Promise::with_core(core.clone()),
            None => Promise::new(),
        };
        let out = p.future();
        self.on_complete(move |res| match res {
            Ok(v) => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || f(v))) {
                    Ok(u) => p.set_value(u),
                    Err(pl) => {
                        p.set_error(Error::TaskPanicked(crate::util::panic_message(&*pl)))
                    }
                }
            }
            Err(e) => p.set_error(e),
        });
        out
    }

    pub(crate) fn core(&self) -> Option<Arc<Core>> {
        self.shared.core.clone()
    }
}

/// A multi-consumer future (HPX `hpx::shared_future`): cloneable, any
/// number of continuations, `get` returns a clone of the value. Created
/// with [`Future::share`].
///
/// ```
/// use parallex::prelude::*;
///
/// let rt = Runtime::builder().worker_threads(2).build();
/// let sf = rt.async_task(|| 21).share();
/// let doubled = sf.then(|x| x * 2);
/// assert_eq!(sf.get(), 21);      // repeatable
/// assert_eq!(sf.get(), 21);
/// assert_eq!(doubled.get(), 42);
/// rt.shutdown();
/// ```
pub struct SharedFuture<T: Clone + Send + 'static> {
    inner: Arc<SharedInner<T>>,
}

impl<T: Clone + Send + 'static> Clone for SharedFuture<T> {
    fn clone(&self) -> Self {
        SharedFuture { inner: self.inner.clone() }
    }
}

type SharedCallback<T> = Box<dyn FnOnce(Result<T>) + Send + 'static>;

enum SharedState<T> {
    Pending(Vec<SharedCallback<T>>),
    Ready(Result<T>),
}

struct SharedInner<T: Clone + Send + 'static> {
    state: Mutex<SharedState<T>>,
    completed: AtomicBool,
    core: Option<Arc<Core>>,
}

impl<T: Clone + Send + 'static> SharedInner<T> {
    fn result(&self) -> Result<T> {
        match &*self.state.lock() {
            SharedState::Ready(r) => r.clone(),
            SharedState::Pending(_) => unreachable!("checked completed first"),
        }
    }
}

impl<T: Clone + Send + 'static> Future<T> {
    /// Convert into a multi-consumer [`SharedFuture`].
    pub fn share(self) -> SharedFuture<T> {
        let inner = Arc::new(SharedInner {
            state: Mutex::new(SharedState::Pending(Vec::new())),
            completed: AtomicBool::new(false),
            core: self.core(),
        });
        let inner2 = inner.clone();
        self.on_complete(move |res| {
            let callbacks = {
                let mut st = inner2.state.lock();
                let cbs = match &mut *st {
                    SharedState::Pending(cbs) => std::mem::take(cbs),
                    SharedState::Ready(_) => Vec::new(),
                };
                *st = SharedState::Ready(res.clone());
                inner2.completed.store(true, Ordering::Release);
                cbs
            };
            for cb in callbacks {
                cb(res.clone());
            }
        });
        SharedFuture { inner }
    }
}

impl<T: Clone + Send + 'static> SharedFuture<T> {
    /// Whether the result has been produced.
    pub fn is_ready(&self) -> bool {
        self.inner.completed.load(Ordering::Acquire)
    }

    /// Block until ready (help-executing from workers).
    pub fn wait(&self) {
        let inner = self.inner.clone();
        help_until(self.inner.core.as_ref(), move || {
            inner.completed.load(Ordering::Acquire)
        });
    }

    /// Wait and clone the value out; unlike [`Future::get`] this can be
    /// called from any number of clones.
    ///
    /// # Panics
    /// Panics if the producer failed; use [`SharedFuture::try_get`].
    pub fn get(&self) -> T {
        match self.try_get() {
            Ok(v) => v,
            Err(e) => panic!("shared_future::get failed: {e}"),
        }
    }

    /// Wait and clone the result out.
    pub fn try_get(&self) -> Result<T> {
        self.wait();
        self.inner.result()
    }

    /// Attach a continuation; unlike [`Future::then`], any number may be
    /// attached (each receives a clone).
    pub fn then<U: Send + 'static>(
        &self,
        f: impl FnOnce(T) -> U + Send + 'static,
    ) -> Future<U> {
        let mut p = match &self.inner.core {
            Some(core) => Promise::with_core(core.clone()),
            None => Promise::new(),
        };
        let out = p.future();
        let run = move |res: Result<T>| match res {
            Ok(v) => match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || f(v))) {
                Ok(u) => p.set_value(u),
                Err(pl) => p.set_error(Error::TaskPanicked(crate::util::panic_message(&*pl))),
            },
            Err(e) => p.set_error(e),
        };
        let mut run = Some(run);
        let immediate = {
            let mut st = self.inner.state.lock();
            match &mut *st {
                SharedState::Pending(cbs) => {
                    cbs.push(Box::new(run.take().expect("run present")));
                    None
                }
                SharedState::Ready(r) => Some(r.clone()),
            }
        };
        if let Some(res) = immediate {
            (run.take().expect("run not stored"))(res);
        }
        out
    }
}

/// Future of all results: resolves when every input future has resolved,
/// preserving order. The first error (if any) wins.
pub fn when_all<T: Send + 'static>(futures: Vec<Future<T>>) -> Future<Vec<T>> {
    let n = futures.len();
    let core = futures.iter().find_map(|f| f.core());
    let mut p = match core {
        Some(core) => Promise::with_core(core),
        None => Promise::new(),
    };
    let out = p.future();
    if n == 0 {
        p.set_value(Vec::new());
        return out;
    }
    struct Gather<T: Send + 'static> {
        slots: Mutex<Vec<Option<Result<T>>>>,
        promise: Mutex<Option<Promise<Vec<T>>>>,
        remaining: std::sync::atomic::AtomicUsize,
    }
    let gather = Arc::new(Gather {
        slots: Mutex::new((0..n).map(|_| None).collect()),
        promise: Mutex::new(Some(p)),
        remaining: std::sync::atomic::AtomicUsize::new(n),
    });
    for (i, f) in futures.into_iter().enumerate() {
        let g = gather.clone();
        f.on_complete(move |res| {
            g.slots.lock()[i] = Some(res);
            if g.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let slots = std::mem::take(&mut *g.slots.lock());
                let mut vals = Vec::with_capacity(slots.len());
                let mut first_err = None;
                for s in slots {
                    match s.expect("slot must be filled") {
                        Ok(v) => vals.push(v),
                        Err(e) => {
                            first_err.get_or_insert(e);
                        }
                    }
                }
                let p = g.promise.lock().take().expect("completed once");
                match first_err {
                    None => p.set_value(vals),
                    Some(e) => p.set_error(e),
                }
            }
        });
    }
    out
}

/// Future of the first result: resolves with `(index, value)` of whichever
/// input resolves first (errors only win if every input fails).
pub fn when_any<T: Send + 'static>(futures: Vec<Future<T>>) -> Future<(usize, T)> {
    assert!(!futures.is_empty(), "when_any of zero futures");
    let n = futures.len();
    let core = futures.iter().find_map(|f| f.core());
    let mut p = match core {
        Some(core) => Promise::with_core(core),
        None => Promise::new(),
    };
    let out = p.future();
    struct Race<T: Send + 'static> {
        promise: Mutex<Option<Promise<(usize, T)>>>,
        failures: std::sync::atomic::AtomicUsize,
        total: usize,
    }
    let race = Arc::new(Race {
        promise: Mutex::new(Some(p)),
        failures: std::sync::atomic::AtomicUsize::new(0),
        total: n,
    });
    for (i, f) in futures.into_iter().enumerate() {
        let r = race.clone();
        f.on_complete(move |res| match res {
            Ok(v) => {
                if let Some(p) = r.promise.lock().take() {
                    p.set_value((i, v));
                }
            }
            Err(e) => {
                if r.failures.fetch_add(1, Ordering::AcqRel) + 1 == r.total {
                    if let Some(p) = r.promise.lock().take() {
                        p.set_error(e);
                    }
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn promise_future_roundtrip() {
        let mut p = Promise::new();
        let f = p.future();
        assert!(!f.is_ready());
        p.set_value(5);
        assert!(f.is_ready());
        assert_eq!(f.get(), 5);
    }

    #[test]
    fn ready_future() {
        let f = Future::ready("hi");
        assert!(f.is_ready());
        assert_eq!(f.get(), "hi");
    }

    #[test]
    fn dropped_promise_breaks_future() {
        let mut p: Promise<i32> = Promise::new();
        let f = p.future();
        drop(p);
        assert_eq!(f.try_get(), Err(Error::BrokenPromise));
    }

    #[test]
    #[should_panic(expected = "already taken")]
    fn double_future_panics() {
        let mut p: Promise<i32> = Promise::new();
        let _a = p.future();
        let _b = p.future();
    }

    #[test]
    fn then_runs_inline_for_detached_promise() {
        let mut p = Promise::new();
        let f = p.future().then(|x: i32| x + 1).then(|x| x * 2);
        p.set_value(10);
        assert_eq!(f.get(), 22);
    }

    #[test]
    fn then_propagates_errors_without_running() {
        let mut p: Promise<i32> = Promise::new();
        let f = p.future().then(|_| panic!("must not run"));
        p.set_error(Error::BrokenPromise);
        assert_eq!(f.try_get(), Err(Error::BrokenPromise));
    }

    #[test]
    fn then_captures_panics() {
        let mut p = Promise::new();
        let f = p.future().then(|_: i32| -> i32 { panic!("inner") });
        p.set_value(1);
        match f.try_get() {
            Err(Error::TaskPanicked(m)) => assert!(m.contains("inner")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn when_all_collects_in_order() {
        let mut ps: Vec<Promise<i32>> = (0..3).map(|_| Promise::new()).collect();
        let fs = ps.iter_mut().map(|p| p.future()).collect();
        let all = when_all(fs);
        // Complete out of order.
        ps.pop().unwrap().set_value(2);
        ps.remove(0).set_value(0);
        ps.pop().unwrap().set_value(1);
        assert_eq!(all.get(), vec![0, 1, 2]);
    }

    #[test]
    fn when_all_empty_is_ready() {
        let all: Future<Vec<i32>> = when_all(vec![]);
        assert_eq!(all.get(), Vec::<i32>::new());
    }

    #[test]
    fn when_all_surfaces_first_error() {
        let mut a: Promise<i32> = Promise::new();
        let mut b: Promise<i32> = Promise::new();
        let all = when_all(vec![a.future(), b.future()]);
        a.set_value(1);
        b.set_error(Error::BrokenPromise);
        assert_eq!(all.try_get(), Err(Error::BrokenPromise));
    }

    #[test]
    fn when_any_returns_first() {
        let mut a: Promise<i32> = Promise::new();
        let mut b: Promise<i32> = Promise::new();
        let any = when_any(vec![a.future(), b.future()]);
        b.set_value(9);
        let (idx, v) = any.get();
        assert_eq!((idx, v), (1, 9));
        a.set_value(1); // late completion is ignored
    }

    #[test]
    fn when_any_errors_only_if_all_fail() {
        let mut a: Promise<i32> = Promise::new();
        let mut b: Promise<i32> = Promise::new();
        let any = when_any(vec![a.future(), b.future()]);
        a.set_error(Error::BrokenPromise);
        b.set_value(3);
        assert_eq!(any.get(), (1, 3));
    }

    #[test]
    fn shared_future_fans_out_to_many_consumers() {
        let mut p = Promise::new();
        let sf = p.future().share();
        let a = sf.clone();
        let b = sf.clone();
        let doubled = sf.then(|x: i32| x * 2);
        let tripled = sf.then(|x: i32| x * 3);
        assert!(!sf.is_ready());
        p.set_value(7);
        assert_eq!(a.get(), 7);
        assert_eq!(b.get(), 7);
        assert_eq!(sf.get(), 7, "get is repeatable");
        assert_eq!(doubled.get(), 14);
        assert_eq!(tripled.get(), 21);
    }

    #[test]
    fn shared_future_then_after_ready_runs_immediately() {
        let sf = Future::ready(5).share();
        assert!(sf.is_ready());
        assert_eq!(sf.then(|x| x + 1).get(), 6);
    }

    #[test]
    fn shared_future_propagates_errors_to_all() {
        let mut p: Promise<i32> = Promise::new();
        let sf = p.future().share();
        let c1 = sf.clone();
        let t = sf.then(|_| unreachable!("must not run"));
        p.set_error(Error::BrokenPromise);
        assert_eq!(c1.try_get(), Err(Error::BrokenPromise));
        assert_eq!(sf.try_get(), Err(Error::BrokenPromise));
        assert!(t.try_get().is_err());
    }

    #[test]
    fn shared_future_across_runtime_tasks() {
        let rt = Runtime::builder().worker_threads(4).build();
        let sf = rt.async_task(|| 10u64).share();
        let fs: Vec<_> = (0..16)
            .map(|i| {
                let sf = sf.clone();
                rt.async_task(move || sf.get() + i)
            })
            .collect();
        let sum: u64 = when_all(fs).get().into_iter().sum();
        assert_eq!(sum, 16 * 10 + (0..16).sum::<u64>());
        rt.shutdown();
    }

    #[test]
    fn runtime_futures_schedule_continuations() {
        let rt = Runtime::builder().worker_threads(2).build();
        let f = rt.async_task(|| 20).then(|x| x + 1).then(|x| x * 2);
        assert_eq!(f.get(), 42);
        rt.shutdown();
    }

    #[test]
    fn when_all_across_runtime_tasks() {
        let rt = Runtime::builder().worker_threads(4).build();
        let fs: Vec<_> = (0..32).map(|i| rt.async_task(move || i)).collect();
        let sum: i32 = when_all(fs).get().into_iter().sum();
        assert_eq!(sum, (0..32).sum());
        rt.shutdown();
    }
}
