//! A suspending mutex (HPX `hpx::mutex`).
//!
//! `lock()` returns a *future* of the guard: a contended lock parks a
//! continuation instead of an OS thread, in keeping with the ParalleX rule
//! that contention should cost a queued task, not a blocked core.
//!
//! # Blocking on a contended lock from a worker
//!
//! Prefer `lock().then(|guard| …)` to `lock().get()` inside tasks. A
//! worker blocked in `get()` help-executes other queued tasks; if one of
//! *those* also blocks on this mutex, the task that currently owns the
//! about-to-be-granted guard can end up buried under the helper's stack
//! and never resume — the run-to-completion analogue of a lock-ordering
//! deadlock (HPX avoids it by suspending stackful threads, which safe
//! Rust cannot do). Continuation style has no such hazard: the critical
//! section becomes a task that runs when the guard arrives.

use crate::lcos::future::{Future, Promise};
use crate::runtime::Runtime;
use parking_lot::Mutex as PlMutex;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

struct LockState {
    locked: bool,
    waiters: VecDeque<Promise<()>>,
}

struct Inner<T> {
    state: PlMutex<LockState>,
    value: UnsafeCell<T>,
    runtime: Option<Runtime>,
}

// SAFETY: the value is only ever accessed through AsyncMutexGuard, and the
// lock-state machine guarantees at most one guard exists at a time.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

/// An asynchronous mutual-exclusion lock around a value.
pub struct AsyncMutex<T: Send + 'static> {
    inner: Arc<Inner<T>>,
}

impl<T: Send + 'static> Clone for AsyncMutex<T> {
    fn clone(&self) -> Self {
        AsyncMutex { inner: self.inner.clone() }
    }
}

/// Exclusive access to the value; unlocks on drop.
pub struct AsyncMutexGuard<T: Send + 'static> {
    inner: Arc<Inner<T>>,
}

impl<T: Send + 'static> Deref for AsyncMutexGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard existence implies exclusive ownership of the value.
        unsafe { &*self.inner.value.get() }
    }
}

impl<T: Send + 'static> DerefMut for AsyncMutexGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above, and &mut self gives unique guard access.
        unsafe { &mut *self.inner.value.get() }
    }
}

impl<T: Send + 'static> Drop for AsyncMutexGuard<T> {
    fn drop(&mut self) {
        let next = {
            let mut st = self.inner.state.lock();
            match st.waiters.pop_front() {
                Some(w) => Some(w), // hand the lock over directly
                None => {
                    st.locked = false;
                    None
                }
            }
        };
        if let Some(p) = next {
            p.set_value(());
        }
    }
}

impl<T: Send + 'static> AsyncMutex<T> {
    /// Detached async mutex.
    pub fn new(value: T) -> AsyncMutex<T> {
        AsyncMutex {
            inner: Arc::new(Inner {
                state: PlMutex::new(LockState { locked: false, waiters: VecDeque::new() }),
                value: UnsafeCell::new(value),
                runtime: None,
            }),
        }
    }

    /// Async mutex whose lock-continuations are scheduled on `rt`.
    pub fn for_runtime(rt: &Runtime, value: T) -> AsyncMutex<T> {
        let mut m = AsyncMutex::new(value);
        Arc::get_mut(&mut m.inner).unwrap().runtime = Some(rt.clone());
        m
    }

    fn make_promise(&self) -> Promise<()> {
        match &self.inner.runtime {
            Some(rt) => rt.make_promise(),
            None => Promise::new(),
        }
    }

    /// Acquire the lock as a future of the guard.
    pub fn lock(&self) -> Future<AsyncMutexGuard<T>> {
        let acquired = {
            let mut st = self.inner.state.lock();
            if st.locked {
                false
            } else {
                st.locked = true;
                true
            }
        };
        let inner = self.inner.clone();
        let mut p = self.make_promise();
        let f = p.future();
        if acquired {
            p.set_value(());
        } else {
            self.inner.state.lock().waiters.push_back(p);
        }
        f.then(move |()| AsyncMutexGuard { inner })
    }

    /// Try to acquire without waiting.
    pub fn try_lock(&self) -> Option<AsyncMutexGuard<T>> {
        let mut st = self.inner.state.lock();
        if st.locked {
            None
        } else {
            st.locked = true;
            Some(AsyncMutexGuard { inner: self.inner.clone() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_guards_value() {
        let m = AsyncMutex::new(5);
        {
            let mut g = m.lock().get();
            *g += 1;
        }
        assert_eq!(*m.lock().get(), 6);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = AsyncMutex::new(());
        let g = m.try_lock().unwrap();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn contended_lock_hands_over_fifo() {
        let m = AsyncMutex::new(Vec::new());
        let g = m.lock().get();
        let f1 = m.lock();
        let f2 = m.lock();
        assert!(!f1.is_ready());
        drop(g);
        f1.get().push(1);
        f2.get().push(2);
        assert_eq!(*m.lock().get(), vec![1, 2]);
    }

    #[test]
    fn parallel_increments_are_exclusive() {
        // Continuation style (see module docs): the critical section runs
        // as a task when the guard is granted — never block a worker on a
        // contended lock.
        let rt = Runtime::builder().worker_threads(4).build();
        let m = AsyncMutex::for_runtime(&rt, 0u64);
        let done = crate::lcos::latch::Latch::for_runtime(&rt, 200);
        for _ in 0..200 {
            let m = m.clone();
            let done = done.clone();
            rt.spawn(move || {
                let done = done.clone();
                // Dropping the resulting future is fine: the continuation
                // still runs when the guard arrives.
                drop(m.lock().then(move |mut g| {
                    *g += 1;
                    drop(g);
                    done.count_down(1);
                }));
            });
        }
        done.wait();
        assert_eq!(*m.lock().get(), 200);
        rt.shutdown();
    }
}
