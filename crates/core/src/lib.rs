//! # parallex
//!
//! An Asynchronous Many-Task (AMT) runtime system implementing the
//! **ParalleX execution model** (Kaiser, Brodowicz, Sterling 2009) — the
//! model whose reference implementation is HPX, the runtime the paper
//! ports to Arm. ParalleX attacks the four exascale bottlenecks the paper
//! lists (SLOW: **S**tarvation, **L**atency, **O**verhead, **W**aiting for
//! contention) with:
//!
//! * **lightweight tasks** scheduled over OS threads
//!   ([`runtime::Runtime`], [`sched`]) — millions of short-lived tasks,
//!   work-stealing load balance, NUMA-aware placement hints;
//! * **Local Control Objects** ([`lcos`]) — futures/promises, `when_all`,
//!   dataflow, latches, barriers, channels, semaphores and gates for
//!   wait-free composition instead of global synchronization;
//! * **an Active Global Address Space** ([`agas`]) — global IDs that
//!   survive object migration between localities;
//! * **parcels** ([`parcel`]) — active messages that ship *work to data*;
//! * **parallel algorithms** ([`algorithms`]) — `for_each` et al. with
//!   execution policies and chunkers, the API the paper's Listings 1 and 2
//!   are written against, including the NUMA-aware block executor the
//!   paper credits for its first-touch data placement.
//!
//! A [`locality::Cluster`] runs several localities ("nodes") inside one
//! process, each with its own scheduler, AGAS view and parcelport; the
//! parcelport can inject configurable network delays so distributed
//! experiments (the paper's Fig. 3) run against a simulated interconnect.
//!
//! ## Quick example
//!
//! ```
//! use parallex::prelude::*;
//!
//! let rt = Runtime::builder().worker_threads(4).build();
//! // async task + future composition
//! let f = rt.async_task(|| 21).then(|x| x * 2);
//! assert_eq!(f.get(), 42);
//! // data-parallel loop
//! let mut data = vec![0u64; 1024];
//! par(&rt).for_each_mut(&mut data, |i, x| *x = i as u64);
//! assert_eq!(data[100], 100);
//! rt.shutdown();
//! ```

pub mod agas;
pub mod algorithms;
pub mod error;
pub mod executors;
pub mod introspect;
pub mod lcos;
pub mod locality;
pub mod parcel;
pub mod perf;
pub mod resilience;
pub mod runtime;
pub mod sched;
pub mod task;
pub mod topology;
pub mod trace;
pub mod util;

/// The most common imports, HPX-style.
pub mod prelude {
    pub use crate::algorithms::{par, seq, ExecutionPolicy};
    pub use crate::error::{Error, Result};
    pub use crate::executors::{BlockExecutor, Executor, ParallelExecutor};
    pub use crate::lcos::channel::Channel;
    pub use crate::lcos::dataflow::dataflow2;
    pub use crate::lcos::future::{when_all, when_any, Future, Promise, SharedFuture};
    pub use crate::lcos::latch::Latch;
    pub use crate::locality::{Cluster, Locality};
    pub use crate::resilience::{async_replay, async_replicate, ChaosSpec, FaultPlan};
    pub use crate::runtime::{Runtime, RuntimeBuilder};
    pub use crate::task::Priority;
    pub use crate::util::HighResolutionTimer;
}
