//! Runtime performance counters.
//!
//! HPX exposes introspection counters under paths like
//! `/threads/count/cumulative`; this module is the equivalent: cheap
//! relaxed atomics bumped on the hot paths, snapshotted on demand.

use crate::sched::Scheduler;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Monotone event counters for one runtime.
#[derive(Debug, Default)]
pub struct Counters {
    /// Tasks handed to the scheduler.
    pub tasks_spawned: AtomicUsize,
    /// Tasks that finished executing.
    pub tasks_executed: AtomicUsize,
    /// Tasks whose closure panicked.
    pub tasks_panicked: AtomicUsize,
    /// Future continuations run.
    pub continuations_run: AtomicUsize,
    /// Parcels sent from this locality.
    pub parcels_sent: AtomicUsize,
    /// Parcels received by this locality.
    pub parcels_received: AtomicUsize,
}

/// A point-in-time copy of all counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Tasks handed to the scheduler.
    pub tasks_spawned: usize,
    /// Tasks that finished executing.
    pub tasks_executed: usize,
    /// Tasks whose closure panicked.
    pub tasks_panicked: usize,
    /// Future continuations run.
    pub continuations_run: usize,
    /// Successful steal operations (each may move a whole batch).
    pub tasks_stolen: usize,
    /// Total pushes observed by the scheduler.
    pub sched_pushes: usize,
    /// Victim queues probed while stealing (hits and misses).
    pub steal_attempts: usize,
    /// Successful batched steals (`steal_batch_and_pop` into a deque).
    pub steal_batches: usize,
    /// Times a worker parked on the scheduler condvar.
    pub worker_parks: usize,
    /// Notify syscalls issued to wake parked workers.
    pub worker_wakes: usize,
    /// Parcels sent.
    pub parcels_sent: usize,
    /// Parcels received.
    pub parcels_received: usize,
}

impl Counters {
    /// Capture a snapshot, merging in the scheduler's own counters.
    pub fn snapshot(&self, sched: &Scheduler) -> Snapshot {
        Snapshot {
            tasks_spawned: self.tasks_spawned.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_panicked: self.tasks_panicked.load(Ordering::Relaxed),
            continuations_run: self.continuations_run.load(Ordering::Relaxed),
            tasks_stolen: sched.stat_stolen.load(Ordering::Relaxed),
            sched_pushes: sched.stat_pushed.load(Ordering::Relaxed),
            steal_attempts: sched.stat_steal_attempts.load(Ordering::Relaxed),
            steal_batches: sched.stat_steal_batches.load(Ordering::Relaxed),
            worker_parks: sched.stat_parks.load(Ordering::Relaxed),
            worker_wakes: sched.stat_wakes.load(Ordering::Relaxed),
            parcels_sent: self.parcels_sent.load(Ordering::Relaxed),
            parcels_received: self.parcels_received.load(Ordering::Relaxed),
        }
    }
}

impl Snapshot {
    /// Render as `(hpx-style path, value)` pairs.
    pub fn as_paths(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("/threads/count/cumulative", self.tasks_executed),
            ("/threads/count/spawned", self.tasks_spawned),
            ("/threads/count/panicked", self.tasks_panicked),
            ("/threads/count/stolen", self.tasks_stolen),
            ("/threads/count/pushes", self.sched_pushes),
            ("/threads/count/steal-attempts", self.steal_attempts),
            ("/threads/count/steal-batches", self.steal_batches),
            ("/threads/count/parks", self.worker_parks),
            ("/threads/count/wakes", self.worker_wakes),
            ("/lcos/count/continuations", self.continuations_run),
            ("/parcels/count/sent", self.parcels_sent),
            ("/parcels/count/received", self.parcels_received),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedulerPolicy;

    #[test]
    fn snapshot_reflects_counts() {
        let c = Counters::default();
        c.tasks_spawned.fetch_add(3, Ordering::Relaxed);
        c.parcels_sent.fetch_add(2, Ordering::Relaxed);
        let s = Scheduler::new(1, SchedulerPolicy::LocalPriority);
        let snap = c.snapshot(&s);
        assert_eq!(snap.tasks_spawned, 3);
        assert_eq!(snap.parcels_sent, 2);
        assert_eq!(snap.tasks_stolen, 0);
    }

    #[test]
    fn paths_cover_all_counters() {
        let c = Counters::default();
        let s = Scheduler::new(1, SchedulerPolicy::LocalPriority);
        let paths = c.snapshot(&s).as_paths();
        assert_eq!(paths.len(), 12);
        assert!(paths.iter().any(|(p, _)| *p == "/threads/count/cumulative"));
        assert!(paths.iter().any(|(p, _)| *p == "/threads/count/parks"));
        assert!(paths.iter().any(|(p, _)| *p == "/threads/count/steal-batches"));
    }
}
