//! Runtime performance counters.
//!
//! HPX exposes introspection counters under paths like
//! `/threads/count/cumulative`; this module is the equivalent: cheap
//! relaxed atomics bumped on the hot paths, snapshotted on demand.
//!
//! Once a runtime is idle (`wait_idle`), the counters satisfy two
//! conservation identities (pinned by tests):
//! `tasks_spawned == tasks_executed + tasks_panicked`, and — summed over
//! every locality of a loopback cluster — `parcels_sent ==
//! parcels_received` (response parcels included).
//!
//! The flat [`Snapshot`] is the quick view; the hierarchical,
//! per-worker view lives in [`crate::introspect`], whose registry this
//! module populates via `register_runtime_counters`.

use crate::introspect::{CounterPath, CounterRegistry, Instance};
use crate::runtime::Core;
use crate::sched::Scheduler;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Monotone event counters for one runtime.
#[derive(Debug, Default)]
pub struct Counters {
    /// Tasks handed to the scheduler.
    pub tasks_spawned: AtomicUsize,
    /// Tasks that finished executing.
    pub tasks_executed: AtomicUsize,
    /// Tasks whose closure panicked.
    pub tasks_panicked: AtomicUsize,
    /// Future continuations run.
    pub continuations_run: AtomicUsize,
    /// Parcels sent from this locality.
    pub parcels_sent: AtomicUsize,
    /// Parcels received by this locality.
    pub parcels_received: AtomicUsize,
}

/// A point-in-time copy of all counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Tasks handed to the scheduler.
    pub tasks_spawned: usize,
    /// Tasks that finished executing.
    pub tasks_executed: usize,
    /// Tasks whose closure panicked.
    pub tasks_panicked: usize,
    /// Future continuations run.
    pub continuations_run: usize,
    /// Successful steal operations (each may move a whole batch).
    pub tasks_stolen: usize,
    /// Total pushes observed by the scheduler.
    pub sched_pushes: usize,
    /// Victim queues probed while stealing (hits and misses).
    pub steal_attempts: usize,
    /// Successful batched steals (`steal_batch_and_pop` into a deque).
    pub steal_batches: usize,
    /// Times a worker parked on the scheduler condvar.
    pub worker_parks: usize,
    /// Notify syscalls issued to wake parked workers.
    pub worker_wakes: usize,
    /// Parcels sent.
    pub parcels_sent: usize,
    /// Parcels received.
    pub parcels_received: usize,
}

impl Counters {
    /// Capture a snapshot, merging in the scheduler's own counters.
    pub fn snapshot(&self, sched: &Scheduler) -> Snapshot {
        Snapshot {
            tasks_spawned: self.tasks_spawned.load(Ordering::Relaxed),
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            tasks_panicked: self.tasks_panicked.load(Ordering::Relaxed),
            continuations_run: self.continuations_run.load(Ordering::Relaxed),
            tasks_stolen: sched.stat_stolen.load(Ordering::Relaxed),
            sched_pushes: sched.stat_pushed.load(Ordering::Relaxed),
            steal_attempts: sched.stat_steal_attempts.load(Ordering::Relaxed),
            steal_batches: sched.stat_steal_batches.load(Ordering::Relaxed),
            worker_parks: sched.stat_parks.load(Ordering::Relaxed),
            worker_wakes: sched.stat_wakes.load(Ordering::Relaxed),
            parcels_sent: self.parcels_sent.load(Ordering::Relaxed),
            parcels_received: self.parcels_received.load(Ordering::Relaxed),
        }
    }
}

/// Per-worker execution stats (one per scheduler worker, owned by the
/// runtime core), feeding the `/threads{locality#L/worker#W}/...`
/// counter paths.
#[derive(Debug, Default)]
pub(crate) struct WorkerStat {
    /// Tasks this worker ran to completion (panicked or not).
    pub(crate) tasks_executed: AtomicUsize,
    /// Wall time this worker spent inside tasks, nanoseconds.
    pub(crate) busy_ns: AtomicU64,
}

/// Populate `registry` with the standard counter set of one runtime:
/// locality-total counters for every [`Snapshot`] field plus per-worker
/// cumulative-task and busy-time counters. Probes capture the core and
/// evaluate a relaxed atomic load at snapshot time.
pub(crate) fn register_runtime_counters(registry: &CounterRegistry, locality: u32, core: &Arc<Core>) {
    macro_rules! counter {
        ($object:expr, $name:expr, $field:ident) => {{
            let c = core.clone();
            registry.register(
                CounterPath::new($object, locality, Instance::Total, $name),
                move || c.counters.$field.load(Ordering::Relaxed) as u64,
            );
        }};
    }
    macro_rules! sched_counter {
        ($name:expr, $field:ident) => {{
            let c = core.clone();
            registry.register(
                CounterPath::new("threads", locality, Instance::Total, $name),
                move || c.sched.$field.load(Ordering::Relaxed) as u64,
            );
        }};
    }
    counter!("threads", "count/cumulative", tasks_executed);
    counter!("threads", "count/spawned", tasks_spawned);
    counter!("threads", "count/panicked", tasks_panicked);
    counter!("lcos", "count/continuations", continuations_run);
    counter!("parcels", "count/sent", parcels_sent);
    counter!("parcels", "count/received", parcels_received);
    sched_counter!("count/stolen", stat_stolen);
    sched_counter!("count/pushes", stat_pushed);
    sched_counter!("count/steal-attempts", stat_steal_attempts);
    sched_counter!("count/steal-batches", stat_steal_batches);
    sched_counter!("count/parks", stat_parks);
    sched_counter!("count/wakes", stat_wakes);
    for w in 0..core.worker_stats.len() {
        let c = core.clone();
        registry.register(
            CounterPath::new("threads", locality, Instance::Worker(w), "count/cumulative"),
            move || c.worker_stats[w].tasks_executed.load(Ordering::Relaxed) as u64,
        );
        let c = core.clone();
        registry.register(
            CounterPath::new("threads", locality, Instance::Worker(w), "time/busy-ns"),
            move || c.worker_stats[w].busy_ns.load(Ordering::Relaxed),
        );
    }
    // Latency-histogram probes (nanoseconds): locality-total p50/p99 and
    // sample count for every channel, plus per-worker task quantiles —
    // the `/latency{locality#L/worker#W}/task/p99` paths.
    for ch in crate::introspect::LatencyChannel::ALL {
        for (qname, q) in [("p50", 0.5), ("p99", 0.99)] {
            let c = core.clone();
            registry.register(
                CounterPath::new(
                    "latency",
                    locality,
                    Instance::Total,
                    format!("{}/{qname}", ch.name()),
                ),
                move || c.latency.merged(ch).value_at_quantile(q),
            );
        }
        let c = core.clone();
        registry.register(
            CounterPath::new(
                "latency",
                locality,
                Instance::Total,
                format!("{}/count", ch.name()),
            ),
            move || c.latency.merged(ch).count(),
        );
    }
    for w in 0..core.worker_stats.len() {
        for (qname, q) in [("p50", 0.5), ("p99", 0.99)] {
            let c = core.clone();
            registry.register(
                CounterPath::new("latency", locality, Instance::Worker(w), format!("task/{qname}")),
                move || {
                    c.latency
                        .lane(crate::introspect::LatencyChannel::Task, w)
                        .value_at_quantile(q)
                },
            );
        }
    }
}

impl Snapshot {
    /// Interval delta `self - earlier`, field by field (saturating, so a
    /// stale `earlier` from before a counter reset can't underflow).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            tasks_spawned: self.tasks_spawned.saturating_sub(earlier.tasks_spawned),
            tasks_executed: self.tasks_executed.saturating_sub(earlier.tasks_executed),
            tasks_panicked: self.tasks_panicked.saturating_sub(earlier.tasks_panicked),
            continuations_run: self
                .continuations_run
                .saturating_sub(earlier.continuations_run),
            tasks_stolen: self.tasks_stolen.saturating_sub(earlier.tasks_stolen),
            sched_pushes: self.sched_pushes.saturating_sub(earlier.sched_pushes),
            steal_attempts: self.steal_attempts.saturating_sub(earlier.steal_attempts),
            steal_batches: self.steal_batches.saturating_sub(earlier.steal_batches),
            worker_parks: self.worker_parks.saturating_sub(earlier.worker_parks),
            worker_wakes: self.worker_wakes.saturating_sub(earlier.worker_wakes),
            parcels_sent: self.parcels_sent.saturating_sub(earlier.parcels_sent),
            parcels_received: self.parcels_received.saturating_sub(earlier.parcels_received),
        }
    }

    /// Render as `(hpx-style path, value)` pairs.
    pub fn as_paths(&self) -> Vec<(&'static str, usize)> {
        vec![
            ("/threads/count/cumulative", self.tasks_executed),
            ("/threads/count/spawned", self.tasks_spawned),
            ("/threads/count/panicked", self.tasks_panicked),
            ("/threads/count/stolen", self.tasks_stolen),
            ("/threads/count/pushes", self.sched_pushes),
            ("/threads/count/steal-attempts", self.steal_attempts),
            ("/threads/count/steal-batches", self.steal_batches),
            ("/threads/count/parks", self.worker_parks),
            ("/threads/count/wakes", self.worker_wakes),
            ("/lcos/count/continuations", self.continuations_run),
            ("/parcels/count/sent", self.parcels_sent),
            ("/parcels/count/received", self.parcels_received),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedulerPolicy;

    #[test]
    fn snapshot_reflects_counts() {
        let c = Counters::default();
        c.tasks_spawned.fetch_add(3, Ordering::Relaxed);
        c.parcels_sent.fetch_add(2, Ordering::Relaxed);
        let s = Scheduler::new(1, SchedulerPolicy::LocalPriority);
        let snap = c.snapshot(&s);
        assert_eq!(snap.tasks_spawned, 3);
        assert_eq!(snap.parcels_sent, 2);
        assert_eq!(snap.tasks_stolen, 0);
    }

    #[test]
    fn paths_cover_all_counters() {
        let c = Counters::default();
        let s = Scheduler::new(1, SchedulerPolicy::LocalPriority);
        let paths = c.snapshot(&s).as_paths();
        assert_eq!(paths.len(), 12);
        assert!(paths.iter().any(|(p, _)| *p == "/threads/count/cumulative"));
        assert!(paths.iter().any(|(p, _)| *p == "/threads/count/parks"));
        assert!(paths.iter().any(|(p, _)| *p == "/threads/count/steal-batches"));
    }

    #[test]
    fn snapshot_delta_is_fieldwise_and_saturating() {
        let c = Counters::default();
        let s = Scheduler::new(1, SchedulerPolicy::LocalPriority);
        c.tasks_spawned.fetch_add(5, Ordering::Relaxed);
        let before = c.snapshot(&s);
        c.tasks_spawned.fetch_add(7, Ordering::Relaxed);
        c.parcels_sent.fetch_add(2, Ordering::Relaxed);
        let after = c.snapshot(&s);
        let d = after.delta(&before);
        assert_eq!(d.tasks_spawned, 7);
        assert_eq!(d.parcels_sent, 2);
        assert_eq!(d.tasks_executed, 0);
        // reversed order saturates to zero instead of wrapping
        let rev = before.delta(&after);
        assert_eq!(rev.tasks_spawned, 0);
    }

    #[test]
    fn task_conservation_after_wait_idle() {
        // spawned == executed + panicked once the runtime is idle, even
        // with panicking tasks in the mix.
        let rt = crate::runtime::Runtime::builder().worker_threads(2).build();
        let before = rt.perf_snapshot();
        for i in 0..40 {
            rt.spawn(move || {
                if i % 10 == 0 {
                    panic!("intentional test panic");
                }
            });
        }
        rt.wait_idle();
        let d = rt.perf_snapshot().delta(&before);
        assert_eq!(d.tasks_spawned, 40);
        assert_eq!(d.tasks_panicked, 4);
        assert_eq!(
            d.tasks_spawned,
            d.tasks_executed + d.tasks_panicked,
            "conservation: {d:?}"
        );
        rt.shutdown();
    }

    #[test]
    fn registry_mirrors_flat_snapshot() {
        use crate::introspect::{CounterPath, Instance};
        let rt = crate::runtime::Runtime::builder().worker_threads(2).build();
        for _ in 0..25 {
            rt.spawn(|| {});
        }
        rt.wait_idle();
        let snap = rt.counter_snapshot();
        let flat = rt.perf_snapshot();
        let total =
            |name: &str| snap.get(&CounterPath::new("threads", 0, Instance::Total, name));
        assert_eq!(total("count/spawned"), Some(flat.tasks_spawned as u64));
        assert_eq!(total("count/cumulative"), Some(flat.tasks_executed as u64));
        // per-worker cumulative sums to the locality total
        let per_worker: u64 = (0..rt.workers())
            .map(|w| {
                snap.get(&CounterPath::new(
                    "threads",
                    0,
                    Instance::Worker(w),
                    "count/cumulative",
                ))
                .unwrap()
            })
            .sum();
        assert!(
            per_worker >= flat.tasks_executed as u64,
            "worker stats include panicked tasks too: {per_worker} vs {}",
            flat.tasks_executed
        );
        // 12 flat totals + 12 latency totals (4 channels × p50/p99/count)
        // + per worker: 2 thread stats and 2 task-latency quantiles
        assert_eq!(snap.len(), 24 + 4 * rt.workers());
        rt.shutdown();
    }

    #[test]
    fn latency_counters_populate_after_work() {
        use crate::introspect::{CounterPath, Instance};
        let rt = crate::runtime::Runtime::builder().worker_threads(2).build();
        for _ in 0..50 {
            rt.spawn(|| {
                std::hint::black_box((0..100).sum::<u64>());
            });
        }
        rt.wait_idle();
        let snap = rt.counter_snapshot();
        let count = snap
            .get(&CounterPath::new("latency", 0, Instance::Total, "task/count"))
            .unwrap();
        assert!(count >= 50, "every task records a latency sample: {count}");
        let p50 = snap
            .get(&CounterPath::new("latency", 0, Instance::Total, "task/p50"))
            .unwrap();
        let p99 = snap
            .get(&CounterPath::new("latency", 0, Instance::Total, "task/p99"))
            .unwrap();
        assert!(p50 > 0 && p99 >= p50, "quantiles ordered: p50={p50} p99={p99}");
        // Per-worker task quantiles exist for every worker.
        for w in 0..rt.workers() {
            assert!(snap
                .get(&CounterPath::new("latency", 0, Instance::Worker(w), "task/p99"))
                .is_some());
        }
        rt.shutdown();
    }
}
