//! Executors: policies for *where* spawned work runs
//! (HPX `hpx::execution` executors).
//!
//! The paper's NUMA story (Section VII-A) is built on two pieces: a block
//! allocator that first-touches each block on the worker that will process
//! it, and a **block executor** that always schedules a chunk on the worker
//! owning its data. [`BlockExecutor`] is that executor: chunk `i` of `n`
//! is pinned to worker `floor(i * workers / n)`, the same proportional map
//! the block distribution uses, so data and compute stay co-located.

use crate::runtime::Runtime;
use crate::task::{Priority, ScheduleHint, Task};

/// Something that can execute tasks.
pub trait Executor: Send + Sync {
    /// Submit a chunk task; `chunk_index` / `chunk_count` let placement-
    /// aware executors pick a worker.
    fn execute(&self, task: Task, chunk_index: usize, chunk_count: usize);
    /// Parallel width this executor exposes (used by chunkers).
    fn width(&self) -> usize;
}

/// Spawns into the runtime with no placement constraint; work stealing
/// balances load (HPX `parallel_executor`).
#[derive(Clone)]
pub struct ParallelExecutor {
    rt: Runtime,
}

impl ParallelExecutor {
    /// Executor over all of `rt`'s workers.
    pub fn new(rt: &Runtime) -> Self {
        ParallelExecutor { rt: rt.clone() }
    }

    /// Submit `f` with panic-replay: up to `n` total attempts before the
    /// future fails ([`crate::resilience::async_replay`] on this
    /// executor's runtime).
    pub fn async_replay<T, F>(&self, n: usize, f: F) -> crate::lcos::future::Future<T>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        crate::resilience::async_replay(&self.rt, n, f)
    }

    /// Submit `n` concurrent copies of `f`, keeping the first success
    /// ([`crate::resilience::async_replicate`]).
    pub fn async_replicate<T, F>(&self, n: usize, f: F) -> crate::lcos::future::Future<T>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        crate::resilience::async_replicate(&self.rt, n, f)
    }
}

impl Executor for ParallelExecutor {
    fn execute(&self, task: Task, _chunk_index: usize, _chunk_count: usize) {
        self.rt.spawn_task(task);
    }

    fn width(&self) -> usize {
        self.rt.workers()
    }
}

/// Pins chunk `i` of `n` to the worker that owns block `i` of the data
/// (HPX `block_executor` over `block_allocator`-placed data).
#[derive(Clone)]
pub struct BlockExecutor {
    rt: Runtime,
    workers: usize,
}

impl BlockExecutor {
    /// Block executor over all of `rt`'s workers.
    pub fn new(rt: &Runtime) -> Self {
        let workers = rt.workers();
        BlockExecutor { rt: rt.clone(), workers }
    }

    /// Which worker chunk `i` of `n` lands on: the proportional block map,
    /// identical to [`crate::topology::block_ranges`]'s owner function.
    pub fn worker_for(&self, chunk_index: usize, chunk_count: usize) -> usize {
        if chunk_count <= 1 {
            return 0;
        }
        (chunk_index * self.workers) / chunk_count
    }

    /// Submit `f` with panic-replay (placement is lost on retry — a
    /// replayed chunk may land on any worker, trading locality for
    /// progress).
    pub fn async_replay<T, F>(&self, n: usize, f: F) -> crate::lcos::future::Future<T>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        crate::resilience::async_replay(&self.rt, n, f)
    }

    /// Submit `n` concurrent copies of `f`, keeping the first success.
    pub fn async_replicate<T, F>(&self, n: usize, f: F) -> crate::lcos::future::Future<T>
    where
        T: Send + 'static,
        F: Fn() -> T + Send + Sync + 'static,
    {
        crate::resilience::async_replicate(&self.rt, n, f)
    }
}

impl Executor for BlockExecutor {
    fn execute(&self, task: Task, chunk_index: usize, chunk_count: usize) {
        let w = self.worker_for(chunk_index, chunk_count).min(self.workers - 1);
        self.rt.spawn_task(task.with_hint(ScheduleHint::Pinned(w)));
    }

    fn width(&self) -> usize {
        self.workers
    }
}

/// Runs tasks inline on the caller (HPX `sequenced_executor`).
#[derive(Clone, Copy, Default)]
pub struct SequencedExecutor;

impl Executor for SequencedExecutor {
    fn execute(&self, task: Task, _chunk_index: usize, _chunk_count: usize) {
        task.run();
    }

    fn width(&self) -> usize {
        1
    }
}

/// An executor wrapper that raises every task to high priority (used for
/// latency-critical chains, e.g. halo exchanges).
pub struct HighPriorityExecutor<E>(pub E);

impl<E: Executor> Executor for HighPriorityExecutor<E> {
    fn execute(&self, task: Task, chunk_index: usize, chunk_count: usize) {
        self.0.execute(task.with_priority(Priority::High), chunk_index, chunk_count);
    }

    fn width(&self) -> usize {
        self.0.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcos::latch::Latch;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn parallel_executor_runs_everything() {
        let rt = Runtime::builder().worker_threads(2).build();
        let ex = ParallelExecutor::new(&rt);
        assert_eq!(ex.width(), 2);
        let n = Arc::new(AtomicUsize::new(0));
        let l = Latch::for_runtime(&rt, 16);
        for i in 0..16 {
            let n = n.clone();
            let l = l.clone();
            ex.execute(
                Task::new(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                    l.count_down(1);
                }),
                i,
                16,
            );
        }
        l.wait();
        assert_eq!(n.load(Ordering::Relaxed), 16);
        rt.shutdown();
    }

    #[test]
    fn block_executor_map_is_monotone_and_covers_all_workers() {
        let rt = Runtime::builder().worker_threads(4).build();
        let ex = BlockExecutor::new(&rt);
        let owners: Vec<usize> = (0..8).map(|i| ex.worker_for(i, 8)).collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        rt.shutdown();
    }

    #[test]
    fn block_executor_pins_chunks() {
        let rt = Runtime::builder().worker_threads(3).build();
        let ex = BlockExecutor::new(&rt);
        let l = Latch::for_runtime(&rt, 3);
        let placements = Arc::new(parking_lot::Mutex::new(vec![usize::MAX; 3]));
        for i in 0..3 {
            let rt2 = rt.clone();
            let l = l.clone();
            let placements = placements.clone();
            ex.execute(
                Task::new(move || {
                    placements.lock()[i] = rt2.current_worker().unwrap();
                    l.count_down(1);
                }),
                i,
                3,
            );
        }
        l.wait();
        assert_eq!(*placements.lock(), vec![0, 1, 2]);
        rt.shutdown();
    }

    #[test]
    fn high_priority_wrapper_raises_priority() {
        // Wrap a probe executor that records the submitted priorities.
        use parking_lot::Mutex;
        struct Probe(Arc<Mutex<Vec<crate::task::Priority>>>);
        impl Executor for Probe {
            fn execute(&self, task: Task, _i: usize, _n: usize) {
                self.0.lock().push(task.priority);
                task.run();
            }
            fn width(&self) -> usize {
                1
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let ex = HighPriorityExecutor(Probe(log.clone()));
        ex.execute(Task::new(|| {}), 0, 1);
        ex.execute(Task::new(|| {}), 1, 2);
        assert_eq!(ex.width(), 1);
        assert_eq!(*log.lock(), vec![Priority::High, Priority::High]);
    }

    #[test]
    fn executor_replay_retries_a_panicking_chunk() {
        let rt = Runtime::builder().worker_threads(2).build();
        let ex = ParallelExecutor::new(&rt);
        let tries = Arc::new(AtomicUsize::new(0));
        let t = tries.clone();
        let f = ex.async_replay(3, move || {
            if t.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("flaky chunk");
            }
            7
        });
        assert_eq!(f.get(), 7);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
        rt.shutdown();
    }

    #[test]
    fn executor_replicate_returns_first_success() {
        let rt = Runtime::builder().worker_threads(2).build();
        let ex = BlockExecutor::new(&rt);
        let f = ex.async_replicate(3, || 42);
        assert_eq!(f.get(), 42);
        rt.shutdown();
    }

    #[test]
    fn sequenced_executor_runs_inline() {
        let ex = SequencedExecutor;
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        ex.execute(Task::new(move || { r.fetch_add(1, Ordering::Relaxed); }), 0, 1);
        assert_eq!(ran.load(Ordering::Relaxed), 1, "ran synchronously");
        assert_eq!(ex.width(), 1);
    }
}
