//! Active Global Address Space (AGAS).
//!
//! Every distributed object gets a [`Gid`] that stays valid for the
//! object's whole lifetime even if the object migrates to another
//! locality — the defining property the paper highlights ("AGAS supports
//! load balancing through object migration", Section III-B). The
//! [`AgasService`] maps GIDs to their *current* locality; per-locality
//! [`ComponentStore`]s hold the objects themselves; a
//! [`MigrationRegistry`] knows how to serialize registered component types
//! so [`crate::locality::Cluster::migrate`] can move them.

use crate::error::{Error, Result};
use parking_lot::RwLock;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A global identifier: creating locality + locality-unique id. The
/// creating locality is only a *hint* — resolution goes through AGAS, so a
/// migrated object keeps its GID.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gid {
    /// Locality that allocated the id.
    pub origin: u32,
    /// Unique id within the allocating locality's sequence.
    pub lid: u64,
}

impl Gid {
    /// Pack into a single 128-bit value (wire format).
    pub fn to_u128(self) -> u128 {
        ((self.origin as u128) << 64) | self.lid as u128
    }

    /// Unpack from [`Gid::to_u128`].
    pub fn from_u128(v: u128) -> Gid {
        Gid { origin: (v >> 64) as u32, lid: v as u64 }
    }
}

/// The global GID → current-locality directory (one per cluster; HPX
/// implements it as a distributed service, we centralize it, which is a
/// valid AGAS implementation strategy for a single-process cluster).
#[derive(Default)]
pub struct AgasService {
    map: RwLock<HashMap<Gid, u32>>,
    next: AtomicU64,
}

impl AgasService {
    /// Create an empty directory.
    pub fn new() -> AgasService {
        AgasService::default()
    }

    /// Allocate a fresh GID homed (initially) at `locality`.
    pub fn allocate(&self, locality: u32) -> Gid {
        let gid = Gid { origin: locality, lid: self.next.fetch_add(1, Ordering::Relaxed) };
        self.map.write().insert(gid, locality);
        gid
    }

    /// Where the object currently lives.
    pub fn resolve(&self, gid: Gid) -> Result<u32> {
        self.map
            .read()
            .get(&gid)
            .copied()
            .ok_or(Error::UnknownGid(gid.to_u128()))
    }

    /// Point a GID at a new locality (migration commit).
    pub fn rebind(&self, gid: Gid, locality: u32) -> Result<()> {
        match self.map.write().get_mut(&gid) {
            Some(l) => {
                *l = locality;
                Ok(())
            }
            None => Err(Error::UnknownGid(gid.to_u128())),
        }
    }

    /// Remove a GID (object destruction).
    pub fn unregister(&self, gid: Gid) -> Result<()> {
        self.map
            .write()
            .remove(&gid)
            .map(|_| ())
            .ok_or(Error::UnknownGid(gid.to_u128()))
    }

    /// Number of live GIDs.
    pub fn live_objects(&self) -> usize {
        self.map.read().len()
    }
}

type AnyComponent = Arc<dyn Any + Send + Sync>;

/// Per-locality storage of component instances, keyed by GID.
#[derive(Default)]
pub struct ComponentStore {
    objects: RwLock<HashMap<Gid, (AnyComponent, &'static str)>>,
}

impl ComponentStore {
    /// Create an empty store.
    pub fn new() -> ComponentStore {
        ComponentStore::default()
    }

    /// Insert an object under `gid`, remembering its type name for
    /// migration lookups.
    pub fn insert<T: Send + Sync + 'static>(&self, gid: Gid, obj: T) {
        self.objects
            .write()
            .insert(gid, (Arc::new(obj), std::any::type_name::<T>()));
    }

    pub(crate) fn insert_any(&self, gid: Gid, obj: AnyComponent, type_name: &'static str) {
        self.objects.write().insert(gid, (obj, type_name));
    }

    /// Fetch and downcast.
    pub fn get<T: Send + Sync + 'static>(&self, gid: Gid) -> Result<Arc<T>> {
        let guard = self.objects.read();
        let (obj, _) = guard.get(&gid).ok_or(Error::UnknownGid(gid.to_u128()))?;
        obj.clone()
            .downcast::<T>()
            .map_err(|_| Error::ComponentTypeMismatch)
    }

    /// Remove and return the raw object (used by migration).
    pub(crate) fn take(&self, gid: Gid) -> Result<(AnyComponent, &'static str)> {
        self.objects
            .write()
            .remove(&gid)
            .ok_or(Error::UnknownGid(gid.to_u128()))
    }

    /// Whether the object is stored here.
    pub fn contains(&self, gid: Gid) -> bool {
        self.objects.read().contains_key(&gid)
    }

    /// Number of local objects.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

type SerializeFn = Box<dyn Fn(&(dyn Any + Send + Sync)) -> Result<Vec<u8>> + Send + Sync>;
type DeserializeFn = Box<dyn Fn(&[u8]) -> Result<AnyComponent> + Send + Sync>;

struct Codec {
    ser: SerializeFn,
    de: DeserializeFn,
}

/// Type registry enabling migration: a component type must be registered
/// here (with its serde codec) before [`crate::locality::Cluster::migrate`]
/// can move instances of it.
#[derive(Default)]
pub struct MigrationRegistry {
    codecs: RwLock<HashMap<&'static str, Codec>>,
}

impl MigrationRegistry {
    /// Create an empty registry.
    pub fn new() -> MigrationRegistry {
        MigrationRegistry::default()
    }

    /// Register `T` as migratable.
    pub fn register<T>(&self)
    where
        T: Serialize + DeserializeOwned + Send + Sync + 'static,
    {
        let name = std::any::type_name::<T>();
        self.codecs.write().insert(
            name,
            Codec {
                ser: Box::new(|any| {
                    let v = any
                        .downcast_ref::<T>()
                        .ok_or(Error::ComponentTypeMismatch)?;
                    crate::parcel::serialize::to_bytes(v)
                }),
                de: Box::new(|bytes| {
                    let v: T = crate::parcel::serialize::from_bytes(bytes)?;
                    Ok(Arc::new(v) as AnyComponent)
                }),
            },
        );
    }

    /// Serialize a stored component of registered type `type_name`.
    pub(crate) fn serialize(
        &self,
        type_name: &str,
        obj: &(dyn Any + Send + Sync),
    ) -> Result<Vec<u8>> {
        let guard = self.codecs.read();
        let codec = guard.get(type_name).ok_or_else(|| {
            Error::MigrationFailed(format!("type {type_name} not registered as migratable"))
        })?;
        (codec.ser)(obj)
    }

    /// Reconstruct a component of registered type `type_name`.
    pub(crate) fn deserialize(&self, type_name: &str, bytes: &[u8]) -> Result<AnyComponent> {
        let guard = self.codecs.read();
        let codec = guard.get(type_name).ok_or_else(|| {
            Error::MigrationFailed(format!("type {type_name} not registered as migratable"))
        })?;
        (codec.de)(bytes)
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gid_pack_unpack() {
        let g = Gid { origin: 7, lid: 0xDEAD_BEEF };
        assert_eq!(Gid::from_u128(g.to_u128()), g);
    }

    #[test]
    fn allocate_resolve_unregister() {
        let agas = AgasService::new();
        let g = agas.allocate(2);
        assert_eq!(agas.resolve(g).unwrap(), 2);
        assert_eq!(agas.live_objects(), 1);
        agas.unregister(g).unwrap();
        assert!(agas.resolve(g).is_err());
        assert!(agas.unregister(g).is_err());
    }

    #[test]
    fn gids_are_unique() {
        let agas = AgasService::new();
        let a = agas.allocate(0);
        let b = agas.allocate(0);
        let c = agas.allocate(1);
        assert_ne!(a, b);
        assert_ne!(b, c);
    }

    #[test]
    fn rebind_moves_residence_but_keeps_gid() {
        let agas = AgasService::new();
        let g = agas.allocate(0);
        agas.rebind(g, 3).unwrap();
        assert_eq!(agas.resolve(g).unwrap(), 3);
        assert_eq!(g.origin, 0, "origin is historical, not current");
    }

    #[test]
    fn component_store_downcasts() {
        let store = ComponentStore::new();
        let gid = Gid { origin: 0, lid: 1 };
        store.insert(gid, vec![1u32, 2, 3]);
        let v = store.get::<Vec<u32>>(gid).unwrap();
        assert_eq!(*v, vec![1, 2, 3]);
        assert!(matches!(
            store.get::<String>(gid),
            Err(Error::ComponentTypeMismatch)
        ));
    }

    #[test]
    fn component_store_take_removes() {
        let store = ComponentStore::new();
        let gid = Gid { origin: 0, lid: 9 };
        store.insert(gid, 5i64);
        assert!(store.contains(gid));
        store.take(gid).unwrap();
        assert!(!store.contains(gid));
        assert!(store.take(gid).is_err());
    }

    #[test]
    fn migration_registry_roundtrips_components() {
        let reg = MigrationRegistry::new();
        reg.register::<Vec<f64>>();
        let obj: Arc<dyn Any + Send + Sync> = Arc::new(vec![1.0f64, 2.0]);
        let bytes = reg
            .serialize(std::any::type_name::<Vec<f64>>(), obj.as_ref())
            .unwrap();
        let back = reg
            .deserialize(std::any::type_name::<Vec<f64>>(), &bytes)
            .unwrap();
        let v = back.downcast::<Vec<f64>>().unwrap();
        assert_eq!(*v, vec![1.0, 2.0]);
    }

    #[test]
    fn unregistered_type_cannot_migrate() {
        let reg = MigrationRegistry::new();
        let obj: Arc<dyn Any + Send + Sync> = Arc::new(7u8);
        assert!(matches!(
            reg.serialize("u8", obj.as_ref()),
            Err(Error::MigrationFailed(_))
        ));
    }
}
