//! APEX-style introspection: counter registry, interval sampling,
//! structured event tracing and exporters.
//!
//! HPX ships a first-class observability stack — performance counters
//! addressed by hierarchical paths (`/threads{locality#0/worker#3}/count/
//! stolen`, queried by `hpx::performance_counters`) and APEX task
//! timelines — and the paper leans on exactly that machinery to explain
//! its figures and tables. This module is the equivalent for `parallex`:
//!
//! * [`CounterPath`] / [`CounterRegistry`] / [`CounterSnapshot`] — named
//!   counters registered at hierarchical paths with per-locality and
//!   per-worker instances, snapshotted on demand, diffable with
//!   [`CounterSnapshot::delta`] for interval rates
//!   ([`counters`]);
//! * [`CounterSampler`] — a background thread snapshotting a registry at
//!   a fixed interval into a [`SampleSeries`] time series;
//! * [`Tracer`] / [`TraceEvent`] / [`EventKind`] — typed span/instant
//!   event logs (task run, steal, park/wake, future wait, parcel
//!   send/recv, halo exchange) recorded into per-worker bounded buffers,
//!   so tracing a long run cannot OOM and never contends on a global
//!   lock ([`events`]);
//! * [`chrome_trace_json`] — Chrome trace-event JSON (loadable in
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)): one
//!   pid per locality, one tid per worker ([`chrome`]).
//!
//! The performance simulator (`parallex-perfsim`) emits snapshots and
//! events through these same types, so a native run and a simulated run
//! of the same `stencil::plan` are diffable side by side.

pub mod chrome;
pub mod counters;
pub mod events;

pub use chrome::{chrome_trace_json, render_counters};
pub use counters::{
    CounterPath, CounterRegistry, CounterSampler, CounterSnapshot, Instance, SampleSeries,
};
pub use events::{EventKind, Trace, TraceEvent, Tracer};
