//! APEX-style introspection: counter registry, interval sampling,
//! structured event tracing and exporters.
//!
//! HPX ships a first-class observability stack — performance counters
//! addressed by hierarchical paths (`/threads{locality#0/worker#3}/count/
//! stolen`, queried by `hpx::performance_counters`) and APEX task
//! timelines — and the paper leans on exactly that machinery to explain
//! its figures and tables. This module is the equivalent for `parallex`:
//!
//! * [`CounterPath`] / [`CounterRegistry`] / [`CounterSnapshot`] — named
//!   counters registered at hierarchical paths with per-locality and
//!   per-worker instances, snapshotted on demand, diffable with
//!   [`CounterSnapshot::delta`] for interval rates
//!   ([`counters`]);
//! * [`CounterSampler`] — a background thread snapshotting a registry at
//!   a fixed interval into a [`SampleSeries`] time series;
//! * [`Tracer`] / [`TraceEvent`] / [`EventKind`] — typed span/instant
//!   event logs (task run, steal, park/wake, future wait, parcel
//!   send/recv, halo exchange) recorded into per-worker bounded buffers,
//!   so tracing a long run cannot OOM and never contends on a global
//!   lock ([`events`]);
//! * [`chrome_trace_json`] — Chrome trace-event JSON (loadable in
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)): one
//!   pid per locality, one tid per worker ([`chrome`]);
//! * [`analyze`](fn@analyze) — the latency-attribution engine: turns a
//!   recorded [`Trace`] into a per-worker time breakdown (compute /
//!   exposed wait / hidden wait / steal / park / idle, conserving wall
//!   time) and a cross-lane critical path ([`analyze`]);
//! * [`LatencyHistogram`] / [`LatencySet`] — mergeable log-bucketed
//!   latency histograms (HdrHistogram-style) recorded lock-free per
//!   worker for task / steal / future-wait / parcel-RTT latencies, with
//!   quantiles registered as `/latency{...}` counters ([`hist`]);
//! * [`prometheus_text`] / [`MetricsServer`] — Prometheus text
//!   exposition of any counter snapshot, served live from a std-only
//!   `TcpListener` via [`crate::runtime::Runtime::serve_metrics`]
//!   ([`expose`]).
//!
//! The performance simulator (`parallex-perfsim`) emits snapshots and
//! events through these same types, so a native run and a simulated run
//! of the same `stencil::plan` are diffable side by side — and
//! [`analyze::analyze`] accepts both, which is how the critical-path
//! engine is validated against the DES's ground truth.

pub mod analyze;
pub mod chrome;
pub mod counters;
pub mod events;
pub mod expose;
pub mod hist;

pub use analyze::{analyze, diff_report, render_report, Analysis, CriticalPath, LaneAttribution};
pub use chrome::{chrome_trace_json, render_counters};
pub use counters::{
    CounterPath, CounterRegistry, CounterSampler, CounterSnapshot, Instance, SampleSeries,
};
pub use events::{EventKind, Trace, TraceEvent, Tracer};
pub use expose::{prometheus_text, validate_prometheus_text, MetricsServer};
pub use hist::{LatencyChannel, LatencyHistogram, LatencySet};
