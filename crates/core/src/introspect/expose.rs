//! Prometheus-text-format exposition of counter snapshots over a
//! std-only TCP endpoint.
//!
//! The registry crates (prometheus, hyper, …) are unreachable in this
//! build environment, and the exposition format is deliberately simple:
//! one `name{labels} value` line per sample, `# HELP`/`# TYPE` comment
//! lines per family, text/plain. [`prometheus_text`] renders a
//! [`CounterSnapshot`] (which already carries every registered counter,
//! including the latency-histogram quantile probes) into that format,
//! and [`MetricsServer`] serves it from a plain [`std::net::TcpListener`]
//! with a one-thread accept loop — enough for a scrape target, with no
//! new dependencies. [`validate_prometheus_text`] is the test-side
//! parser used to keep the output format honest.
//!
//! HPX counter paths map onto families and labels as
//! `/threads{locality#0/worker#3}/count/stolen` →
//! `parallex_threads_count_stolen{locality="0",instance="worker#3"}`.

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use super::counters::CounterSnapshot;

/// Content-Type of the Prometheus text exposition format.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Sanitize a path fragment into a metric-name fragment:
/// `[a-zA-Z0-9_]` passes through, everything else becomes `_`.
fn sanitize(fragment: &str, out: &mut String) {
    for c in fragment.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
}

/// Metric family name for an HPX counter path: `parallex_<object>_<name>`
/// with non-identifier characters folded to `_`.
fn family_name(object: &str, name: &str) -> String {
    let mut s = String::with_capacity(10 + object.len() + name.len());
    s.push_str("parallex_");
    sanitize(object, &mut s);
    s.push('_');
    sanitize(name, &mut s);
    s
}

/// Render a counter snapshot in the Prometheus text exposition format.
///
/// Samples are grouped by family (Prometheus requires all samples of a
/// metric to be consecutive), each family gets `# HELP` and `# TYPE`
/// lines, and a constant `parallex_up 1` gauge is included so an empty
/// registry still produces a scrapeable page. Counters whose HPX name
/// contains a `count/` segment are typed `counter`; everything else
/// (times, quantiles) is a `gauge`.
pub fn prometheus_text(snapshot: &CounterSnapshot) -> String {
    // family -> (original HPX name, is_counter, samples)
    type Family = (String, bool, Vec<(String, u64)>);
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for (path, value) in snapshot.iter() {
        let family = family_name(&path.object, &path.name);
        let labels = format!(
            "locality=\"{}\",instance=\"{}\"",
            path.locality, path.instance
        );
        let entry = families.entry(family).or_insert_with(|| {
            (
                format!("/{}{{...}}/{}", path.object, path.name),
                path.name.contains("count"),
                Vec::new(),
            )
        });
        entry.2.push((labels, value));
    }

    let mut out = String::new();
    out.push_str("# HELP parallex_up Whether the parallex runtime is serving metrics.\n");
    out.push_str("# TYPE parallex_up gauge\n");
    out.push_str("parallex_up 1\n");
    for (family, (hpx, is_counter, samples)) in &families {
        out.push_str(&format!("# HELP {family} HPX counter {hpx}\n"));
        out.push_str(&format!(
            "# TYPE {family} {}\n",
            if *is_counter { "counter" } else { "gauge" }
        ));
        for (labels, value) in samples {
            out.push_str(&format!("{family}{{{labels}}} {value}\n"));
        }
    }
    out
}

/// Strict checker for the subset of the Prometheus text format this
/// module emits. Returns the first offense, with its line number.
///
/// Checked per line: comments are well-formed `# HELP <name> <text>` /
/// `# TYPE <name> <counter|gauge|histogram|summary|untyped>`; samples
/// are `name{label="value",...} <float>` with a valid metric name and
/// label syntax; every sample's family was TYPE-declared before use;
/// all samples of a family are consecutive.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    fn valid_labels(s: &str) -> bool {
        // `k="v",k2="v2"` — values may not contain unescaped `"`.
        if s.is_empty() {
            return true;
        }
        s.split(',').all(|pair| {
            pair.split_once('=').is_some_and(|(k, v)| {
                valid_name(k)
                    && v.len() >= 2
                    && v.starts_with('"')
                    && v.ends_with('"')
                    && !v[1..v.len() - 1].contains(['"', '\n'])
            })
        })
    }

    if !text.ends_with('\n') {
        return Err("exposition must end with a newline".into());
    }
    let mut typed: Vec<String> = Vec::new();
    let mut finished: Vec<String> = Vec::new();
    let mut current: Option<String> = None;
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            let rest = parts.next().unwrap_or("");
            match keyword {
                "HELP" => {
                    if !valid_name(name) || rest.is_empty() {
                        return Err(format!("line {ln}: malformed HELP: {line:?}"));
                    }
                }
                "TYPE" => {
                    if !valid_name(name)
                        || !matches!(rest, "counter" | "gauge" | "histogram" | "summary" | "untyped")
                    {
                        return Err(format!("line {ln}: malformed TYPE: {line:?}"));
                    }
                    typed.push(name.to_string());
                }
                _ => return Err(format!("line {ln}: unknown comment keyword: {line:?}")),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, value_part) = match line.split_once(' ') {
            Some(x) => x,
            None => return Err(format!("line {ln}: sample has no value: {line:?}")),
        };
        let (name, labels) = match name_part.split_once('{') {
            Some((n, rest)) => match rest.strip_suffix('}') {
                Some(l) => (n, l),
                None => return Err(format!("line {ln}: unbalanced '{{' in {line:?}")),
            },
            None => (name_part, ""),
        };
        if !valid_name(name) {
            return Err(format!("line {ln}: invalid metric name {name:?}"));
        }
        if !valid_labels(labels) {
            return Err(format!("line {ln}: invalid labels {labels:?}"));
        }
        if value_part.trim().parse::<f64>().is_err() {
            return Err(format!("line {ln}: invalid value {value_part:?}"));
        }
        if !typed.iter().any(|t| t == name) {
            return Err(format!("line {ln}: sample {name:?} has no preceding TYPE"));
        }
        if current.as_deref() != Some(name) {
            if finished.iter().any(|f| f == name) {
                return Err(format!("line {ln}: family {name:?} is not consecutive"));
            }
            if let Some(prev) = current.take() {
                finished.push(prev);
            }
            current = Some(name.to_string());
        }
    }
    Ok(())
}

/// A minimal single-threaded HTTP scrape endpoint serving the render
/// closure's output on `/metrics` (and `/`).
///
/// Binding is cheap and the accept loop runs on one named thread;
/// [`stop`](MetricsServer::stop) (also invoked on drop) wakes the loop
/// with a self-connection and joins it. Connections are handled
/// serially — a scrape target needs no more.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// serve `render()` on every scrape.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        render: Arc<dyn Fn() -> String + Send + Sync>,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = stop.clone();
            thread::Builder::new()
                .name("px-metrics".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        if let Ok(stream) = conn {
                            let _ = handle_conn(stream, &render);
                        }
                    }
                })?
        };
        Ok(MetricsServer { addr, stop, handle: Some(handle) })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join its thread. Idempotent.
    pub fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock accept(); the loop re-checks the flag first.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn handle_conn(
    mut stream: TcpStream,
    render: &Arc<dyn Fn() -> String + Send + Sync>,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read the request head (we only need the request line; an 8 KiB
    // cap bounds hostile input).
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let path = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, body) = match path.split('?').next().unwrap_or("/") {
        "/" | "/metrics" => ("200 OK", render()),
        _ => ("404 Not Found", "not found; scrape /metrics\n".to_string()),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {PROMETHEUS_CONTENT_TYPE}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::introspect::counters::{CounterPath, Instance};

    fn sample_snapshot() -> CounterSnapshot {
        CounterSnapshot::from_entries(
            0.0,
            vec![
                (CounterPath::new("threads", 0, Instance::Total, "count/stolen"), 4),
                (CounterPath::new("threads", 0, Instance::Worker(1), "count/stolen"), 3),
                (CounterPath::new("threads", 1, Instance::Total, "count/stolen"), 9),
                (CounterPath::new("latency", 0, Instance::Total, "task/p99"), 1800),
                (CounterPath::new("threads", 0, Instance::Total, "time/busy-ns"), 123456),
            ],
        )
    }

    #[test]
    fn rendered_snapshot_validates_and_groups_families() {
        let text = prometheus_text(&sample_snapshot());
        validate_prometheus_text(&text).expect("own output must validate");
        assert!(text.contains("parallex_up 1\n"));
        assert!(text.contains(
            "parallex_threads_count_stolen{locality=\"0\",instance=\"worker#1\"} 3\n"
        ));
        assert!(text.contains("parallex_latency_task_p99{locality=\"0\",instance=\"total\"} 1800"));
        // count/* families are counters, times/quantiles are gauges.
        assert!(text.contains("# TYPE parallex_threads_count_stolen counter"));
        assert!(text.contains("# TYPE parallex_latency_task_p99 gauge"));
        assert!(text.contains("# TYPE parallex_threads_time_busy_ns gauge"));
        // One TYPE line per family even with three samples.
        assert_eq!(text.matches("# TYPE parallex_threads_count_stolen").count(), 1);
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for (bad, why) in [
            ("parallex_up 1\n", "sample without TYPE"),
            ("# TYPE parallex_up gauge\nparallex_up one\n", "non-numeric value"),
            ("# TYPE parallex_up gauge\nparallex_up{bad 1\n", "unbalanced brace"),
            ("# TYPE parallex_up gauge\nparallex_up{l=\"a} 1\n", "unterminated label"),
            ("# TYPE 9bad gauge\n", "name starts with digit"),
            ("# TYPE parallex_up wat\n", "unknown type"),
            ("# NOPE parallex_up x\n", "unknown keyword"),
            ("# TYPE parallex_up gauge\nparallex_up 1", "missing trailing newline"),
            (
                "# TYPE a gauge\n# TYPE b gauge\na 1\nb 2\na 3\n",
                "family not consecutive",
            ),
        ] {
            assert!(validate_prometheus_text(bad).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn empty_snapshot_still_scrapes_up() {
        let text = prometheus_text(&CounterSnapshot::default());
        validate_prometheus_text(&text).unwrap();
        assert!(text.contains("parallex_up 1"));
    }

    #[test]
    fn server_serves_metrics_and_404s_elsewhere() {
        let render: Arc<dyn Fn() -> String + Send + Sync> =
            Arc::new(|| prometheus_text(&sample_snapshot()));
        let mut server = MetricsServer::bind("127.0.0.1:0", render).unwrap();
        let addr = server.local_addr();

        let scrape = |path: &str| -> (String, String) {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            let (head, body) = out.split_once("\r\n\r\n").expect("header/body split");
            (head.to_string(), body.to_string())
        };

        let (head, body) = scrape("/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        validate_prometheus_text(&body).expect("served body validates");
        assert!(body.contains("parallex_up 1"));

        let (head, _) = scrape("/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.stop();
        server.stop(); // idempotent
        assert!(TcpStream::connect(addr).is_err() || {
            // A TIME_WAIT race can still accept; but no thread serves it.
            true
        });
    }
}
