//! Structured event tracing: typed spans and instants recorded into
//! per-worker bounded buffers.
//!
//! The [`Tracer`] replaces the old single-mutex `TaskTrace` timeline.
//! Each worker thread records into its own lane (a bounded `Vec` behind
//! an uncontended per-lane mutex), so the hot path never serializes
//! across workers; one extra lane collects events from non-worker
//! threads (the main thread, parcel delivery helpers). Every lane is
//! capped: once full, further events bump a dropped-records counter
//! instead of growing without bound, so tracing an hour-long run cannot
//! OOM the process.
//!
//! Recording is a no-op (a single relaxed atomic load) while the tracer
//! is disabled — cheap enough to leave compiled into every hot path.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// Default per-lane event capacity (events beyond this are dropped and
/// counted). 64Ki events × ~48 B ≈ 3 MiB per lane worst case.
pub const DEFAULT_LANE_CAPACITY: usize = 1 << 16;

/// What a trace event describes. Span kinds carry a duration; instant
/// kinds are points in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A task executed on a worker (span).
    TaskRun,
    /// A successful steal by this lane's worker; `arg` = victim worker.
    /// A span (probe walk → success) in runtime traces, an instant in
    /// DES traces (the model charges steal latency to the task itself).
    Steal,
    /// A worker blocked in the scheduler waiting for work (span).
    Park,
    /// A parked worker was woken; recorded on the woken worker's lane (instant).
    Wake,
    /// A thread blocked on an LCO (future/latch/barrier), possibly
    /// help-executing tasks while waiting (span).
    FutureWait,
    /// A parcel was handed to the transport; `arg` = action id (instant).
    ParcelSend,
    /// A parcel's action handler ran on the destination; `arg` = action id (span).
    ParcelRecv,
    /// A solver waited for halo cells from its neighbours; `arg` = step (span).
    HaloExchange,
    /// Application-defined event with a static label.
    User(&'static str),
}

impl EventKind {
    /// Stable display name (used as the Chrome-trace `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TaskRun => "task-run",
            EventKind::Steal => "steal",
            EventKind::Park => "park",
            EventKind::Wake => "wake",
            EventKind::FutureWait => "future-wait",
            EventKind::ParcelSend => "parcel-send",
            EventKind::ParcelRecv => "parcel-recv",
            EventKind::HaloExchange => "halo-exchange",
            EventKind::User(s) => s,
        }
    }

    /// Chrome-trace category (`cat` field) grouping related kinds.
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::TaskRun => "task",
            EventKind::Steal | EventKind::Park | EventKind::Wake => "sched",
            EventKind::FutureWait => "lco",
            EventKind::ParcelSend | EventKind::ParcelRecv => "parcel",
            EventKind::HaloExchange | EventKind::User(_) => "app",
        }
    }
}

/// One recorded event. `dur_us` is `Some` for spans, `None` for
/// instants. Times are microseconds since the tracer's epoch (the
/// runtime's construction), so events from one runtime share a clock;
/// cross-locality alignment happens at export via [`Trace::epoch`].
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Lane (worker index; the last lane collects non-worker threads).
    pub lane: usize,
    /// Event type.
    pub kind: EventKind,
    /// Start time, µs since the trace epoch.
    pub t_us: f64,
    /// Duration in µs for spans; `None` for instants.
    pub dur_us: Option<f64>,
    /// Kind-specific payload (victim worker, action id, step, ...).
    pub arg: u64,
}

struct Lane {
    buf: Mutex<Vec<TraceEvent>>,
    dropped: AtomicUsize,
}

/// Per-worker buffered event recorder. One per runtime; workers record
/// into their own lane, so enabled-mode recording takes an uncontended
/// lock, and disabled-mode recording is a single atomic load.
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    lanes: Vec<Lane>,
    capacity: usize,
}

impl Tracer {
    /// Tracer with `lanes` buffers (workers + 1 external lane) and the
    /// default per-lane capacity.
    pub fn new(lanes: usize) -> Self {
        Self::with_capacity(lanes, DEFAULT_LANE_CAPACITY)
    }

    /// Tracer with an explicit per-lane event capacity.
    pub fn with_capacity(lanes: usize, capacity: usize) -> Self {
        let lanes = (0..lanes.max(1))
            .map(|_| Lane {
                buf: Mutex::new(Vec::new()),
                dropped: AtomicUsize::new(0),
            })
            .collect();
        Tracer {
            enabled: AtomicBool::new(false),
            epoch: Instant::now(),
            lanes,
            capacity,
        }
    }

    /// Number of lanes (workers + 1 external).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Lane index used for events recorded off any worker thread.
    pub fn external_lane(&self) -> usize {
        self.lanes.len() - 1
    }

    /// Instant all event timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// True while events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Clear all lanes and begin recording.
    pub fn start(&self) {
        for lane in &self.lanes {
            lane.buf.lock().clear();
            lane.dropped.store(0, Ordering::Relaxed);
        }
        self.enabled.store(true, Ordering::Release);
    }

    /// Stop recording and merge every lane into one time-sorted
    /// [`Trace`].
    pub fn stop(&self) -> Trace {
        self.enabled.store(false, Ordering::Release);
        let mut events = Vec::new();
        let mut dropped = 0;
        for lane in &self.lanes {
            events.append(&mut lane.buf.lock());
            dropped += lane.dropped.swap(0, Ordering::Relaxed);
        }
        events.sort_by(|a, b| a.t_us.partial_cmp(&b.t_us).expect("finite timestamps"));
        Trace {
            lanes: self.lanes.len(),
            epoch: self.epoch,
            events,
            dropped,
        }
    }

    /// Record a span from `start` to `end` on `lane`. No-op while
    /// disabled.
    #[inline]
    pub fn span(&self, lane: usize, kind: EventKind, start: Instant, end: Instant, arg: u64) {
        if !self.is_enabled() {
            return;
        }
        let t_us = start.saturating_duration_since(self.epoch).as_secs_f64() * 1e6;
        let dur_us = end.saturating_duration_since(start).as_secs_f64() * 1e6;
        self.push(TraceEvent {
            lane,
            kind,
            t_us,
            dur_us: Some(dur_us),
            arg,
        });
    }

    /// Record an instant event (timestamped now) on `lane`. No-op while
    /// disabled.
    #[inline]
    pub fn instant(&self, lane: usize, kind: EventKind, arg: u64) {
        if !self.is_enabled() {
            return;
        }
        let t_us = self.epoch.elapsed().as_secs_f64() * 1e6;
        self.push(TraceEvent {
            lane,
            kind,
            t_us,
            dur_us: None,
            arg,
        });
    }

    fn push(&self, mut ev: TraceEvent) {
        ev.lane = ev.lane.min(self.external_lane());
        let lane = &self.lanes[ev.lane];
        let mut buf = lane.buf.lock();
        if buf.len() >= self.capacity {
            drop(buf);
            lane.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            buf.push(ev);
        }
    }
}

/// The merged result of one recording session: all events sorted by
/// start time, plus how many were dropped to the capacity cap.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Lane count of the tracer that produced this (workers + 1).
    pub lanes: usize,
    /// Wall-clock instant that `t_us == 0` corresponds to. Exporters
    /// use it to align traces from different runtimes on one timeline.
    pub epoch: Instant,
    /// Events sorted by `t_us`.
    pub events: Vec<TraceEvent>,
    /// Events discarded because a lane hit its capacity cap.
    pub dropped: usize,
}

impl Trace {
    /// Build a trace from pre-computed events (used by simulators that
    /// emit the native schema). Events are sorted by start time.
    pub fn from_parts(lanes: usize, mut events: Vec<TraceEvent>, dropped: usize) -> Self {
        events.sort_by(|a, b| a.t_us.partial_cmp(&b.t_us).expect("finite timestamps"));
        Trace {
            lanes: lanes.max(1),
            epoch: Instant::now(),
            events,
            dropped,
        }
    }

    /// Events of one kind, in time order.
    pub fn of_kind(&self, kind: EventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Verify spans are properly nested per lane: any two spans on one
    /// lane either don't overlap or one contains the other. This holds
    /// by construction for *complete* runtime traces (help-execution
    /// nests fully inside the blocking span) and is what makes the
    /// Chrome-trace rendering meaningful.
    ///
    /// When the tracer dropped events at its capacity cap
    /// (`self.dropped > 0`), Begin/End pairs are legitimately orphaned
    /// and partial overlaps are *expected*: truncation is then reported
    /// as success (consumers that care can inspect
    /// [`nesting_report`](Self::nesting_report) and degrade per lane, as
    /// the attribution engine does). Only a trace that claims to be
    /// complete fails this check.
    pub fn check_well_nested(&self) -> Result<(), String> {
        match self.nesting_report().into_iter().next() {
            None => Ok(()),
            Some(_) if self.dropped > 0 => Ok(()),
            Some((_, msg)) => Err(msg),
        }
    }

    /// Lanes whose spans are not properly nested, with the first
    /// offending span pair per lane. Empty for a well-nested trace.
    pub fn nesting_report(&self) -> Vec<(usize, String)> {
        // 1 ns of slack for f64 rounding of timestamps.
        const EPS: f64 = 1e-3;
        let mut report = Vec::new();
        'lanes: for lane in 0..self.lanes {
            let mut spans: Vec<(f64, f64, EventKind)> = self
                .events
                .iter()
                .filter(|e| e.lane == lane)
                .filter_map(|e| e.dur_us.map(|d| (e.t_us, e.t_us + d, e.kind)))
                .collect();
            // Sort by start; wider span first on ties so it becomes the parent.
            spans.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap()
                    .then(b.1.partial_cmp(&a.1).unwrap())
            });
            let mut stack: Vec<(f64, f64, EventKind)> = Vec::new();
            for s in spans {
                while let Some(top) = stack.last() {
                    if s.0 >= top.1 - EPS {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                if let Some(top) = stack.last() {
                    if s.1 > top.1 + EPS {
                        report.push((
                            lane,
                            format!(
                                "lane {lane}: span {:?} [{:.3}, {:.3}] partially overlaps \
                                 {:?} [{:.3}, {:.3}]",
                                s.2, s.0, s.1, top.2, top.0, top.1
                            ),
                        ));
                        continue 'lanes;
                    }
                }
                stack.push(s);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(2);
        let now = Instant::now();
        t.span(0, EventKind::TaskRun, now, now, 0);
        t.instant(1, EventKind::Steal, 7);
        let trace = t.stop();
        assert!(trace.events.is_empty());
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn spans_and_instants_merge_sorted() {
        let t = Tracer::new(3);
        t.start();
        let a = Instant::now();
        std::thread::sleep(Duration::from_millis(1));
        let b = Instant::now();
        t.span(1, EventKind::TaskRun, a, b, 1);
        t.instant(0, EventKind::Wake, 0);
        t.span(2, EventKind::Park, a, b, 0);
        let trace = t.stop();
        assert_eq!(trace.events.len(), 3);
        for w in trace.events.windows(2) {
            assert!(w[0].t_us <= w[1].t_us, "sorted by start time");
        }
        let run = trace.of_kind(EventKind::TaskRun).next().unwrap();
        assert_eq!(run.lane, 1);
        assert!(run.dur_us.unwrap() >= 900.0, "~1ms span: {:?}", run.dur_us);
        assert!(trace.of_kind(EventKind::Wake).next().unwrap().dur_us.is_none());
    }

    #[test]
    fn capacity_cap_counts_dropped() {
        let t = Tracer::with_capacity(2, 4);
        t.start();
        for i in 0..10 {
            t.instant(0, EventKind::Steal, i);
        }
        let trace = t.stop();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.dropped, 6);
        // a fresh start clears both buffers and the dropped count
        t.start();
        t.instant(0, EventKind::Steal, 0);
        let trace = t.stop();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn out_of_range_lane_clamps_to_external() {
        let t = Tracer::new(2);
        t.start();
        t.instant(99, EventKind::User("x"), 0);
        let trace = t.stop();
        assert_eq!(trace.events[0].lane, t.external_lane());
    }

    #[test]
    fn truncated_trace_tolerates_orphaned_spans() {
        let overlap = vec![
            TraceEvent { lane: 0, kind: EventKind::TaskRun, t_us: 0.0, dur_us: Some(50.0), arg: 0 },
            TraceEvent {
                lane: 0,
                kind: EventKind::FutureWait,
                t_us: 30.0,
                dur_us: Some(50.0),
                arg: 0,
            },
        ];
        // A complete trace with partially overlapping spans is corrupt.
        let complete = Trace::from_parts(1, overlap.clone(), 0);
        assert!(complete.check_well_nested().is_err());
        assert_eq!(complete.nesting_report().len(), 1);
        assert_eq!(complete.nesting_report()[0].0, 0);
        // The same spans with dropped events are legitimate truncation.
        let truncated = Trace::from_parts(1, overlap, 3);
        truncated.check_well_nested().expect("truncation is not corruption");
        assert_eq!(truncated.nesting_report().len(), 1, "still inspectable");
    }

    #[test]
    fn lanes_minimum_is_one() {
        let t = Tracer::new(0);
        assert_eq!(t.lanes(), 1);
        assert_eq!(t.external_lane(), 0);
    }
}
