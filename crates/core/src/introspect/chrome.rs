//! Exporters: Chrome trace-event JSON and a plain-text counter dump.
//!
//! [`chrome_trace_json`] emits the [Trace Event Format] consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): spans as
//! `ph:"X"` complete events (`ts`/`dur` in microseconds), instants as
//! `ph:"i"` thread-scoped events, plus `ph:"M"` metadata naming each
//! locality (pid) and worker (tid). Traces from several localities are
//! aligned onto one timeline using each trace's monotonic epoch, so
//! halo-parcel arrivals on locality 1 line up against compute spans on
//! locality 0.
//!
//! JSON is written by hand — the workspace deliberately carries no JSON
//! dependency — and pinned by a golden-file test.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::time::Instant;

use super::counters::CounterSnapshot;
use super::events::Trace;

/// Render traces (one per locality, keyed by pid) as Chrome trace-event
/// JSON. Lane `lanes-1` of each trace is labelled `external`; the rest
/// are `worker#N`.
pub fn chrome_trace_json(traces: &[(u32, Trace)]) -> String {
    let min_epoch: Option<Instant> = traces.iter().map(|(_, t)| t.epoch).min();
    let mut lines: Vec<String> = Vec::new();
    for (pid, trace) in traces {
        lines.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"locality#{pid}\"}}}}"
        ));
        for lane in 0..trace.lanes {
            let lname = if lane == trace.lanes - 1 {
                "external".to_string()
            } else {
                format!("worker#{lane}")
            };
            lines.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{lane},\
                 \"args\":{{\"name\":\"{lname}\"}}}}"
            ));
        }
        let offset_us = min_epoch
            .map(|e| trace.epoch.saturating_duration_since(e).as_secs_f64() * 1e6)
            .unwrap_or(0.0);
        for ev in &trace.events {
            let ts = ev.t_us + offset_us;
            let name = escape_json(ev.kind.name());
            let cat = ev.kind.category();
            let (lane, arg) = (ev.lane, ev.arg);
            match ev.dur_us {
                Some(dur) => lines.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts:.3},\
                     \"dur\":{dur:.3},\"pid\":{pid},\"tid\":{lane},\"args\":{{\"arg\":{arg}}}}}"
                )),
                None => lines.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"ts\":{ts:.3},\
                     \"s\":\"t\",\"pid\":{pid},\"tid\":{lane},\"args\":{{\"arg\":{arg}}}}}"
                )),
            }
        }
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Render a counter snapshot as an aligned plain-text table, one
/// counter per line, sorted by path.
pub fn render_counters(snap: &CounterSnapshot) -> String {
    let width = snap
        .iter()
        .map(|(p, _)| p.to_string().len())
        .max()
        .unwrap_or(0);
    let mut out = format!("counters @ t={:.1} us ({} counters)\n", snap.t_us, snap.len());
    for (p, v) in snap.iter() {
        let path = p.to_string();
        out.push_str(&format!("  {path:<width$}  {v}\n"));
    }
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::introspect::counters::{CounterPath, Instance};
    use crate::introspect::events::{EventKind, TraceEvent};

    /// Minimal JSON syntax checker (the workspace has no JSON crate):
    /// validates the full grammar shape we emit — objects, arrays,
    /// strings with escapes, numbers, booleans, null.
    fn assert_valid_json(s: &str) {
        let bytes = s.as_bytes();
        let end = parse_value(bytes, skip_ws(bytes, 0));
        let end = skip_ws(bytes, end);
        assert_eq!(end, bytes.len(), "trailing garbage after JSON value");
    }

    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        i
    }

    fn parse_value(b: &[u8], i: usize) -> usize {
        assert!(i < b.len(), "unexpected end of JSON");
        match b[i] {
            b'{' => parse_seq(b, i, b'}', true),
            b'[' => parse_seq(b, i, b']', false),
            b'"' => parse_string(b, i),
            b't' => expect(b, i, b"true"),
            b'f' => expect(b, i, b"false"),
            b'n' => expect(b, i, b"null"),
            b'-' | b'0'..=b'9' => parse_number(b, i),
            c => panic!("unexpected byte {:?} at {i}", c as char),
        }
    }

    fn parse_seq(b: &[u8], mut i: usize, close: u8, keyed: bool) -> usize {
        i = skip_ws(b, i + 1);
        if b[i] == close {
            return i + 1;
        }
        loop {
            if keyed {
                i = parse_string(b, i);
                i = skip_ws(b, i);
                assert_eq!(b[i], b':', "expected ':' at {i}");
                i = skip_ws(b, i + 1);
            }
            i = skip_ws(b, parse_value(b, i));
            match b[i] {
                b',' => i = skip_ws(b, i + 1),
                c if c == close => return i + 1,
                c => panic!("expected ',' or close, got {:?} at {i}", c as char),
            }
        }
    }

    fn parse_string(b: &[u8], i: usize) -> usize {
        assert_eq!(b[i], b'"', "expected string at {i}");
        let mut i = i + 1;
        while b[i] != b'"' {
            if b[i] == b'\\' {
                i += 1;
            }
            i += 1;
        }
        i + 1
    }

    fn parse_number(b: &[u8], mut i: usize) -> usize {
        if b[i] == b'-' {
            i += 1;
        }
        let start = i;
        while i < b.len() && matches!(b[i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            i += 1;
        }
        assert!(i > start, "empty number at {start}");
        i
    }

    fn expect(b: &[u8], i: usize, word: &[u8]) -> usize {
        assert_eq!(&b[i..i + word.len()], word);
        i + word.len()
    }

    fn golden_trace() -> Trace {
        let ev = |lane, kind, t_us, dur_us, arg| TraceEvent {
            lane,
            kind,
            t_us,
            dur_us,
            arg,
        };
        Trace::from_parts(
            3,
            vec![
                ev(0, EventKind::TaskRun, 100.0, Some(50.5), 7),
                ev(1, EventKind::Steal, 110.25, None, 0),
                ev(2, EventKind::ParcelSend, 112.5, None, 18497),
                ev(1, EventKind::FutureWait, 115.0, Some(10.0), 0),
                ev(0, EventKind::HaloExchange, 160.125, Some(2.25), 3),
            ],
            0,
        )
    }

    #[test]
    fn golden_file_pins_schema() {
        let json = chrome_trace_json(&[(0, golden_trace())]);
        let golden = include_str!("golden_trace.json");
        assert_eq!(json, golden, "Chrome-trace schema drifted from golden file");
    }

    #[test]
    fn emitted_json_is_valid() {
        let json = chrome_trace_json(&[(0, golden_trace()), (1, golden_trace())]);
        assert_valid_json(&json);
        // every schema field the format requires is present
        for field in ["\"ph\":\"X\"", "\"ph\":\"i\"", "\"ph\":\"M\"", "\"ts\":", "\"dur\":",
            "\"pid\":1", "\"tid\":2", "\"name\":\"task-run\"", "\"args\":"]
        {
            assert!(json.contains(field), "missing {field} in output");
        }
    }

    #[test]
    fn empty_trace_list_is_valid_json() {
        let json = chrome_trace_json(&[]);
        assert_valid_json(&json);
        assert!(json.contains("\"traceEvents\":["));
    }

    #[test]
    fn user_event_names_are_escaped() {
        let t = Trace::from_parts(
            1,
            vec![TraceEvent {
                lane: 0,
                kind: EventKind::User("weird\"name\\here"),
                t_us: 1.0,
                dur_us: None,
                arg: 0,
            }],
            0,
        );
        let json = chrome_trace_json(&[(0, t)]);
        assert_valid_json(&json);
        assert!(json.contains("weird\\\"name\\\\here"));
    }

    #[test]
    fn golden_trace_is_well_nested() {
        golden_trace().check_well_nested().unwrap();
        // and a partial overlap is caught
        let bad = Trace::from_parts(
            1,
            vec![
                TraceEvent {
                    lane: 0,
                    kind: EventKind::TaskRun,
                    t_us: 0.0,
                    dur_us: Some(10.0),
                    arg: 0,
                },
                TraceEvent {
                    lane: 0,
                    kind: EventKind::TaskRun,
                    t_us: 5.0,
                    dur_us: Some(10.0),
                    arg: 0,
                },
            ],
            0,
        );
        assert!(bad.check_well_nested().is_err());
    }

    #[test]
    fn counter_dump_is_aligned_and_sorted() {
        let snap = CounterSnapshot::from_entries(
            1234.5,
            vec![
                (
                    CounterPath::new("threads", 0, Instance::Total, "count/cumulative"),
                    42,
                ),
                (CounterPath::new("parcels", 0, Instance::Total, "count/sent"), 7),
            ],
        );
        let text = render_counters(&snap);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("t=1234.5 us"));
        // sorted: parcels before threads
        assert!(lines[1].contains("/parcels{locality#0/total}/count/sent"));
        assert!(lines[2].contains("/threads{locality#0/total}/count/cumulative"));
        assert!(lines[1].trim_end().ends_with('7'));
    }
}
