//! HPX-style performance-counter registry with hierarchical paths,
//! interval snapshots and a background sampler.
//!
//! Counter names follow the HPX convention
//! `/{object}{locality#L/instance}/{counter-name}`, e.g.
//! `/threads{locality#0/worker#3}/count/stolen` or
//! `/parcels{locality#1/total}/count/sent`. A [`CounterRegistry`] maps
//! each path to a probe closure; [`CounterRegistry::snapshot`] evaluates
//! every probe into an immutable [`CounterSnapshot`], and two snapshots
//! taken at different times subtract into an interval delta
//! ([`CounterSnapshot::delta`]). [`CounterSampler`] automates that on a
//! background thread, producing a [`SampleSeries`] of snapshots at a
//! fixed cadence — the moral equivalent of
//! `hpx --hpx:print-counter-interval`.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Which instance of an object a counter describes: the locality-wide
/// aggregate (`total`) or a single worker thread (`worker#N`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Instance {
    /// Aggregate over the whole locality.
    Total,
    /// A single scheduler worker, by index.
    Worker(usize),
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instance::Total => write!(f, "total"),
            Instance::Worker(w) => write!(f, "worker#{w}"),
        }
    }
}

/// A hierarchical counter name in HPX path syntax:
/// `/{object}{locality#L/instance}/{name}`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CounterPath {
    /// Counter object — `threads`, `parcels`, `lcos`, ...
    pub object: String,
    /// Locality the counter lives on.
    pub locality: u32,
    /// Instance dimension: locality total or a single worker.
    pub instance: Instance,
    /// Counter name below the instance, e.g. `count/stolen`.
    pub name: String,
}

impl CounterPath {
    /// Build a path from its four components.
    pub fn new(
        object: impl Into<String>,
        locality: u32,
        instance: Instance,
        name: impl Into<String>,
    ) -> Self {
        CounterPath {
            object: object.into(),
            locality,
            instance,
            name: name.into(),
        }
    }

    /// Parse the HPX textual form produced by `Display`, e.g.
    /// `/threads{locality#0/worker#3}/count/stolen`.
    pub fn parse(s: &str) -> Result<CounterPath, String> {
        let rest = s
            .strip_prefix('/')
            .ok_or_else(|| format!("counter path must start with '/': {s:?}"))?;
        let brace = rest
            .find('{')
            .ok_or_else(|| format!("missing '{{' in counter path {s:?}"))?;
        let object = &rest[..brace];
        let after = &rest[brace + 1..];
        let close = after
            .find('}')
            .ok_or_else(|| format!("missing '}}' in counter path {s:?}"))?;
        let inst_str = &after[..close];
        let name = after[close + 1..]
            .strip_prefix('/')
            .ok_or_else(|| format!("missing counter name in {s:?}"))?;
        if object.is_empty() || name.is_empty() {
            return Err(format!("empty object or name in counter path {s:?}"));
        }
        let (loc_str, worker_str) = inst_str
            .split_once('/')
            .ok_or_else(|| format!("instance must be locality#L/<inst> in {s:?}"))?;
        let locality: u32 = loc_str
            .strip_prefix("locality#")
            .ok_or_else(|| format!("instance must start with locality# in {s:?}"))?
            .parse()
            .map_err(|e| format!("bad locality number in {s:?}: {e}"))?;
        let instance = if worker_str == "total" {
            Instance::Total
        } else if let Some(w) = worker_str.strip_prefix("worker#") {
            Instance::Worker(
                w.parse()
                    .map_err(|e| format!("bad worker number in {s:?}: {e}"))?,
            )
        } else {
            return Err(format!("unknown instance {worker_str:?} in {s:?}"));
        };
        Ok(CounterPath::new(object, locality, instance, name))
    }
}

impl fmt::Display for CounterPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "/{}{{locality#{}/{}}}/{}",
            self.object, self.locality, self.instance, self.name
        )
    }
}

/// Probe closure evaluated at snapshot time.
type Probe = Box<dyn Fn() -> u64 + Send + Sync>;

/// A set of named counters that can be snapshotted atomically enough
/// for rate computation (each probe is an atomic load; the set is read
/// in one pass without blocking writers).
pub struct CounterRegistry {
    counters: Mutex<Vec<(CounterPath, Probe)>>,
    epoch: Instant,
}

impl Default for CounterRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl CounterRegistry {
    /// Empty registry; snapshot timestamps are relative to this call.
    pub fn new() -> Self {
        CounterRegistry {
            counters: Mutex::new(Vec::new()),
            epoch: Instant::now(),
        }
    }

    /// Register `probe` under `path`.
    ///
    /// # Panics
    /// Panics if `path` is already registered — duplicate registration
    /// is a programming error (two subsystems claiming one name).
    pub fn register(&self, path: CounterPath, probe: impl Fn() -> u64 + Send + Sync + 'static) {
        let mut counters = self.counters.lock();
        assert!(
            !counters.iter().any(|(p, _)| *p == path),
            "duplicate counter registration: {path}"
        );
        counters.push((path, Box::new(probe)));
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.counters.lock().len()
    }

    /// True when no counters are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evaluate every probe into a sorted, timestamped snapshot.
    pub fn snapshot(&self) -> CounterSnapshot {
        let t_us = self.epoch.elapsed().as_secs_f64() * 1e6;
        let entries = self
            .counters
            .lock()
            .iter()
            .map(|(p, probe)| (p.clone(), probe()))
            .collect();
        CounterSnapshot::from_entries(t_us, entries)
    }
}

/// Values of every registered counter at one point in time, sorted by
/// path for deterministic rendering and diffing.
#[derive(Clone, Debug, Default)]
pub struct CounterSnapshot {
    /// Microseconds since the registry (or series) epoch.
    pub t_us: f64,
    entries: Vec<(CounterPath, u64)>,
}

impl CounterSnapshot {
    /// Build a snapshot from raw entries (used by the registry and by
    /// simulators emitting the same schema). Entries are sorted by path.
    pub fn from_entries(t_us: f64, mut entries: Vec<(CounterPath, u64)>) -> Self {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        CounterSnapshot { t_us, entries }
    }

    /// Iterate `(path, value)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&CounterPath, u64)> {
        self.entries.iter().map(|(p, v)| (p, *v))
    }

    /// Number of counters in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot holds no counters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Value of the counter at `path`, if present.
    pub fn get(&self, path: &CounterPath) -> Option<u64> {
        self.entries
            .binary_search_by(|(p, _)| p.cmp(path))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Interval delta `self - earlier`, counter by counter (saturating;
    /// counters absent from `earlier` keep their full value).
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|(p, v)| (p.clone(), v.saturating_sub(earlier.get(p).unwrap_or(0))))
            .collect();
        CounterSnapshot::from_entries(self.t_us, entries)
    }

    /// Merge several snapshots (e.g. one per locality) into one; paths
    /// are expected to be disjoint across inputs. The merged timestamp
    /// is the max of the inputs.
    pub fn merge<I: IntoIterator<Item = CounterSnapshot>>(snaps: I) -> CounterSnapshot {
        let mut t_us = 0.0f64;
        let mut entries = Vec::new();
        for s in snaps {
            t_us = t_us.max(s.t_us);
            entries.extend(s.entries);
        }
        CounterSnapshot::from_entries(t_us, entries)
    }
}

/// Background thread snapshotting a [`CounterRegistry`] at a fixed
/// interval into a [`SampleSeries`].
pub struct CounterSampler {
    stop: Arc<AtomicBool>,
    samples: Arc<Mutex<Vec<CounterSnapshot>>>,
    handle: thread::JoinHandle<()>,
}

impl CounterSampler {
    /// Start sampling `registry` every `interval`. One snapshot is
    /// taken immediately; a final one is taken on [`stop`](Self::stop).
    pub fn start(registry: Arc<CounterRegistry>, interval: Duration) -> CounterSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let samples = Arc::new(Mutex::new(vec![registry.snapshot()]));
        let handle = {
            let stop = stop.clone();
            let samples = samples.clone();
            thread::Builder::new()
                .name("px-sampler".into())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        thread::sleep(interval);
                        samples.lock().push(registry.snapshot());
                    }
                })
                .expect("spawn counter sampler thread")
        };
        CounterSampler {
            stop,
            samples,
            handle,
        }
    }

    /// Stop the sampler thread and return the collected series.
    pub fn stop(self) -> SampleSeries {
        self.stop.store(true, Ordering::Release);
        self.handle.join().expect("join counter sampler thread");
        let samples = std::mem::take(&mut *self.samples.lock());
        SampleSeries { samples }
    }
}

/// Time series of counter snapshots produced by a [`CounterSampler`].
#[derive(Clone, Debug, Default)]
pub struct SampleSeries {
    /// Snapshots in sampling order.
    pub samples: Vec<CounterSnapshot>,
}

impl SampleSeries {
    /// Number of snapshots in the series.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the series holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Per-interval rate (events per second) of the counter at `path`,
    /// as `(t_us of interval end, rate)` pairs. Zero-width, reversed or
    /// non-finite intervals (duplicate or garbage timestamps, as a
    /// simulator emitting snapshots might produce) are skipped rather
    /// than yielding NaN/Inf rates.
    pub fn rates(&self, path: &CounterPath) -> Vec<(f64, f64)> {
        self.samples
            .windows(2)
            .filter_map(|w| {
                let dt_s = (w[1].t_us - w[0].t_us) / 1e6;
                // NaN fails every comparison, so test finiteness
                // explicitly: `dt_s <= 0.0` alone lets NaN through.
                if !dt_s.is_finite() || dt_s <= 0.0 {
                    return None;
                }
                let dv = w[1].get(path)?.saturating_sub(w[0].get(path)?);
                Some((w[1].t_us, dv as f64 / dt_s))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn path_display_roundtrip() {
        for p in [
            CounterPath::new("threads", 0, Instance::Worker(3), "count/stolen"),
            CounterPath::new("threads", 2, Instance::Total, "count/cumulative"),
            CounterPath::new("parcels", 1, Instance::Total, "count/sent"),
            CounterPath::new("threads", 0, Instance::Worker(11), "time/busy-ns"),
        ] {
            let s = p.to_string();
            assert_eq!(CounterPath::parse(&s).unwrap(), p, "roundtrip of {s}");
        }
        assert_eq!(
            CounterPath::new("threads", 0, Instance::Worker(3), "count/stolen").to_string(),
            "/threads{locality#0/worker#3}/count/stolen"
        );
    }

    #[test]
    fn path_parse_rejects_malformed() {
        for bad in [
            "threads{locality#0/total}/x",
            "/threads/count/x",
            "/threads{locality#0}/x",
            "/threads{loc#0/total}/x",
            "/threads{locality#0/worker}/x",
            "/threads{locality#0/total}",
            "/{locality#0/total}/x",
        ] {
            assert!(CounterPath::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn registry_snapshot_and_delta() {
        let reg = CounterRegistry::new();
        let v = Arc::new(AtomicU64::new(7));
        let probe = v.clone();
        let path = CounterPath::new("threads", 0, Instance::Total, "count/test");
        reg.register(path.clone(), move || probe.load(Ordering::Relaxed));
        reg.register(
            CounterPath::new("threads", 0, Instance::Worker(0), "count/test"),
            || 1,
        );
        assert_eq!(reg.len(), 2);

        let s0 = reg.snapshot();
        assert_eq!(s0.get(&path), Some(7));
        v.store(19, Ordering::Relaxed);
        let s1 = reg.snapshot();
        assert!(s1.t_us >= s0.t_us);
        let d = s1.delta(&s0);
        assert_eq!(d.get(&path), Some(12));
        // the constant counter deltas to zero
        assert_eq!(
            d.get(&CounterPath::new(
                "threads",
                0,
                Instance::Worker(0),
                "count/test"
            )),
            Some(0)
        );
    }

    #[test]
    #[should_panic(expected = "duplicate counter registration")]
    fn duplicate_registration_panics() {
        let reg = CounterRegistry::new();
        let p = CounterPath::new("threads", 0, Instance::Total, "count/x");
        reg.register(p.clone(), || 0);
        reg.register(p, || 1);
    }

    #[test]
    fn snapshots_sorted_and_mergeable() {
        let a = CounterSnapshot::from_entries(
            5.0,
            vec![
                (CounterPath::new("threads", 1, Instance::Total, "b"), 2),
                (CounterPath::new("threads", 1, Instance::Total, "a"), 1),
            ],
        );
        let b = CounterSnapshot::from_entries(
            9.0,
            vec![(CounterPath::new("threads", 0, Instance::Total, "a"), 3)],
        );
        let m = CounterSnapshot::merge([a, b]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.t_us, 9.0);
        let paths: Vec<String> = m.iter().map(|(p, _)| p.to_string()).collect();
        let mut sorted = paths.clone();
        sorted.sort();
        assert_eq!(paths, sorted, "merged snapshot is path-sorted");
    }

    #[test]
    fn rates_skip_degenerate_intervals() {
        let path = CounterPath::new("threads", 0, Instance::Total, "count/x");
        let snap = |t_us: f64, v: u64| {
            CounterSnapshot::from_entries(t_us, vec![(path.clone(), v)])
        };
        // Duplicate timestamps (zero width), reversed time, and
        // non-finite timestamps must all be skipped — no NaN/Inf rates.
        let series = SampleSeries {
            samples: vec![
                snap(0.0, 0),
                snap(1_000_000.0, 10),    // ok: 10/s
                snap(1_000_000.0, 20),    // zero-width
                snap(500_000.0, 30),      // reversed
                snap(f64::NAN, 40),       // NaN start of next window too
                snap(2_000_000.0, 50),    // window starts at NaN -> skipped
                snap(3_000_000.0, 60),    // ok: 10/s
            ],
        };
        let rates = series.rates(&path);
        assert_eq!(rates.len(), 2, "only the two clean intervals: {rates:?}");
        for (t, r) in &rates {
            assert!(t.is_finite() && r.is_finite(), "finite: ({t}, {r})");
            assert!((r - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sampler_collects_series_and_rates() {
        let reg = Arc::new(CounterRegistry::new());
        let v = Arc::new(AtomicU64::new(0));
        let probe = v.clone();
        let path = CounterPath::new("threads", 0, Instance::Total, "count/ticks");
        reg.register(path.clone(), move || probe.load(Ordering::Relaxed));

        let sampler = CounterSampler::start(reg, Duration::from_millis(2));
        for _ in 0..10 {
            v.fetch_add(100, Ordering::Relaxed);
            thread::sleep(Duration::from_millis(2));
        }
        let series = sampler.stop();
        assert!(series.len() >= 3, "got {} samples", series.len());
        // timestamps strictly increase
        for w in series.samples.windows(2) {
            assert!(w[1].t_us > w[0].t_us);
        }
        let rates = series.rates(&path);
        assert!(!rates.is_empty());
        assert!(
            rates.iter().any(|&(_, r)| r > 0.0),
            "some interval saw a positive rate: {rates:?}"
        );
    }
}
