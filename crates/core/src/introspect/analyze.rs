//! Critical-path analysis and per-worker time attribution over traces.
//!
//! The paper's central claim — halo latency is *hidden* under interior
//! compute on a good fabric and *exposed* on a slow one — is a statement
//! about where wall-clock time on each worker goes and what bounds the
//! makespan. This module turns a recorded [`Trace`] (native, or the DES
//! simulator's via `perfsim::des::simulate_traced`) into exactly those
//! quantities:
//!
//! * [`analyze`] — per-lane **time attribution**: every microsecond of
//!   the trace window is assigned to compute, parcel handling, exposed
//!   wait, steal, park or idle, using the *self time* of each span (its
//!   duration minus its children's), so categories are disjoint and the
//!   conservation identity `wall ≈ compute + parcel + exposed_wait +
//!   steal + park + idle` holds per lane. Compute that runs *nested
//!   inside* a wait span (help-execution) is additionally reported as
//!   `hidden_wait_us` — the latency the runtime overlapped — which is a
//!   subset of `compute_us`, not a separate term of the identity.
//! * **Critical path**: the innermost-active segments of every lane form
//!   an interval set; walking backwards from the last-finishing segment
//!   to the latest-finishing predecessor (the classic last-finisher
//!   heuristic) yields the longest dependency chain across workers and
//!   localities, with a per-kind breakdown of what the makespan is made
//!   of. On a DES trace (cores execute their chains serially, all tasks
//!   ready at t=0) the chain coverage equals the simulated makespan,
//!   which is what validates the analyzer against ground truth.
//! * **Parcel in-flight time**: `ParcelSend` instants are matched to
//!   `ParcelRecv` span starts per action id in FIFO order across the
//!   epoch-aligned traces, estimating the network time of each parcel.
//!
//! Lanes whose spans are not well nested (possible when the tracer
//! dropped events at its capacity cap) are flagged `truncated` and
//! attributed best-effort rather than rejected.

use super::events::{EventKind, Trace};
use super::hist::LatencyHistogram;

/// Timestamp slack (µs) absorbing f64 rounding of trace clocks.
const EPS: f64 = 1e-3;

/// Where one lane's wall time went, in microseconds. All category
/// fields except `hidden_wait_us` are disjoint self-times that sum
/// (with `idle_us`) to `wall_us` on a well-nested lane.
#[derive(Clone, Debug)]
pub struct LaneAttribution {
    /// Locality the lane's trace came from.
    pub locality: u32,
    /// Lane index within the trace (worker index; the last lane is the
    /// external lane for runtime traces).
    pub lane: usize,
    /// True for the trace's last lane (non-worker threads).
    pub external: bool,
    /// Width of the global trace window, µs (same for every lane).
    pub wall_us: f64,
    /// Task execution self-time.
    pub compute_us: f64,
    /// Parcel handler self-time.
    pub parcel_us: f64,
    /// Wait self-time (future-wait and halo-exchange spans with nothing
    /// help-executed under them): latency the runtime failed to hide.
    pub exposed_wait_us: f64,
    /// Task/parcel self-time nested under a wait span: latency hidden by
    /// help-execution. A subset of `compute_us`/`parcel_us`, reported
    /// separately; not an extra term of the conservation identity.
    pub hidden_wait_us: f64,
    /// Successful-steal probe self-time.
    pub steal_us: f64,
    /// Parked-in-scheduler self-time.
    pub park_us: f64,
    /// Application (`User`) span self-time.
    pub other_us: f64,
    /// Window time not covered by any span on this lane.
    pub idle_us: f64,
    /// Successful steals by this lane (span or instant events).
    pub steals: usize,
    /// Spans on this lane were not well nested (events were dropped or
    /// clipped); attribution is best-effort.
    pub truncated: bool,
}

impl LaneAttribution {
    /// Sum of the disjoint categories plus idle — the left side of the
    /// conservation identity.
    pub fn accounted_us(&self) -> f64 {
        self.compute_us
            + self.parcel_us
            + self.exposed_wait_us
            + self.steal_us
            + self.park_us
            + self.other_us
            + self.idle_us
    }

    /// `|accounted - wall| / wall` — 0 means every microsecond of the
    /// window is attributed exactly once.
    pub fn conservation_error(&self) -> f64 {
        if self.wall_us <= 0.0 {
            return 0.0;
        }
        (self.accounted_us() - self.wall_us).abs() / self.wall_us
    }
}

/// One link of the critical-path chain: a span self-interval during
/// which its lane's innermost activity bounded the makespan.
#[derive(Clone, Copy, Debug)]
pub struct PathSegment {
    /// Locality of the lane.
    pub locality: u32,
    /// Lane index.
    pub lane: usize,
    /// Kind of the span whose self-time this interval is.
    pub kind: EventKind,
    /// Aligned start, µs.
    pub start_us: f64,
    /// Aligned end, µs.
    pub end_us: f64,
}

/// The longest dependency chain found by the last-finisher walk.
#[derive(Clone, Debug, Default)]
pub struct CriticalPath {
    /// Chain links in time order.
    pub segments: Vec<PathSegment>,
    /// Total time covered by the chain, µs.
    pub covered_us: f64,
    /// Window width (≈ the makespan the chain should explain), µs.
    pub makespan_us: f64,
    /// Chain time by event-kind name, largest first.
    pub by_kind: Vec<(&'static str, f64)>,
}

impl CriticalPath {
    /// `covered / makespan`: 1.0 means the chain explains the whole
    /// makespan (serial DES lanes); lower means idle gaps the heuristic
    /// could not attribute.
    pub fn coverage(&self) -> f64 {
        if self.makespan_us <= 0.0 {
            return 1.0;
        }
        (self.covered_us / self.makespan_us).min(1.0)
    }
}

/// Matched parcel send→receive flight-time statistics.
#[derive(Clone, Debug, Default)]
pub struct ParcelFlight {
    /// Send/receive pairs matched (per action id, FIFO in time).
    pub matched: usize,
    /// Sends with no matching receive in the trace window.
    pub unmatched_sends: usize,
    /// Mean in-flight time, µs.
    pub mean_us: f64,
    /// 50th percentile in-flight time, µs.
    pub p50_us: f64,
    /// 99th percentile in-flight time, µs.
    pub p99_us: f64,
}

/// Full analysis of a set of per-locality traces.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Global window width, µs (first span start to last span end
    /// across all localities, epochs aligned).
    pub wall_us: f64,
    /// Per-lane attribution, in (locality, lane) order.
    pub lanes: Vec<LaneAttribution>,
    /// The longest dependency chain.
    pub critical_path: CriticalPath,
    /// Parcel in-flight statistics.
    pub parcels: ParcelFlight,
    /// Total events dropped by the tracers (capacity caps).
    pub dropped: usize,
}

impl Analysis {
    /// Worker (non-external) lanes.
    pub fn worker_lanes(&self) -> impl Iterator<Item = &LaneAttribution> {
        self.lanes.iter().filter(|l| !l.external)
    }

    /// Sum of exposed wait over worker lanes, µs — the latency the
    /// runtime failed to hide. Shrinks as compute grain grows.
    pub fn exposed_wait_us(&self) -> f64 {
        self.worker_lanes().map(|l| l.exposed_wait_us).sum()
    }

    /// Sum of hidden (overlapped) wait over worker lanes, µs.
    pub fn hidden_wait_us(&self) -> f64 {
        self.worker_lanes().map(|l| l.hidden_wait_us).sum()
    }

    /// Worst conservation error over well-nested worker lanes.
    pub fn max_conservation_error(&self) -> f64 {
        self.worker_lanes()
            .filter(|l| !l.truncated)
            .map(|l| l.conservation_error())
            .fold(0.0, f64::max)
    }
}

fn is_wait(kind: EventKind) -> bool {
    matches!(kind, EventKind::FutureWait | EventKind::HaloExchange)
}

/// A span open on the sweep stack.
struct Open {
    end: f64,
    kind: EventKind,
    /// Interior position up to which this span's time is attributed
    /// (to children or to emitted self segments).
    cursor: f64,
}

struct LaneSweep<'a> {
    att: LaneAttribution,
    segments: &'a mut Vec<PathSegment>,
    wait_depth: usize,
}

impl LaneSweep<'_> {
    /// Attribute `[from, to]` as self-time of a span of `kind`.
    fn emit(&mut self, kind: EventKind, from: f64, to: f64) {
        let d = to - from;
        if d <= 0.0 {
            return;
        }
        match kind {
            EventKind::TaskRun => {
                self.att.compute_us += d;
                if self.wait_depth > 0 {
                    self.att.hidden_wait_us += d;
                }
            }
            EventKind::ParcelRecv => {
                self.att.parcel_us += d;
                if self.wait_depth > 0 {
                    self.att.hidden_wait_us += d;
                }
            }
            EventKind::FutureWait | EventKind::HaloExchange => self.att.exposed_wait_us += d,
            EventKind::Steal => self.att.steal_us += d,
            EventKind::Park => self.att.park_us += d,
            _ => self.att.other_us += d,
        }
        self.segments.push(PathSegment {
            locality: self.att.locality,
            lane: self.att.lane,
            kind,
            start_us: from,
            end_us: to,
        });
    }
}

/// Sweep one lane's spans (sorted by start, wider-first on ties),
/// attributing every span's self-time and emitting the lane's
/// innermost-active segments.
fn sweep_lane(
    mut att: LaneAttribution,
    spans: &[(f64, f64, EventKind)],
    window: (f64, f64),
    segments: &mut Vec<PathSegment>,
) -> LaneAttribution {
    let mut sweep = LaneSweep { att, segments, wait_depth: 0 };
    let mut stack: Vec<Open> = Vec::new();
    let mut top_cover_end = window.0;

    let close_until = |sweep: &mut LaneSweep, stack: &mut Vec<Open>, t: f64| {
        while let Some(top) = stack.last() {
            if top.end <= t + EPS {
                let popped = stack.pop().unwrap();
                if is_wait(popped.kind) {
                    sweep.wait_depth -= 1;
                }
                sweep.emit(popped.kind, popped.cursor, popped.end);
                if let Some(parent) = stack.last_mut() {
                    parent.cursor = parent.cursor.max(popped.end);
                }
            } else {
                break;
            }
        }
    };

    for &(start, raw_end, kind) in spans {
        let mut end = raw_end.max(start);
        close_until(&mut sweep, &mut stack, start);
        match stack.last_mut() {
            None => {
                if start > top_cover_end + EPS {
                    sweep.att.idle_us += start - top_cover_end;
                } else if start < top_cover_end - EPS {
                    // Overlapping top-level spans: a truncated lane.
                    sweep.att.truncated = true;
                }
                top_cover_end = top_cover_end.max(end);
            }
            Some(top) => {
                if start > top.cursor + EPS {
                    let (k, from) = (top.kind, top.cursor);
                    sweep.emit(k, from, start);
                }
                if end > top.end + EPS {
                    // Child sticks out of its parent (orphaned End after
                    // a ring drop): clip and flag, don't reject.
                    sweep.att.truncated = true;
                    end = top.end;
                }
                let top = stack.last_mut().unwrap();
                top.cursor = top.cursor.max(start.min(end));
            }
        }
        if is_wait(kind) {
            sweep.wait_depth += 1;
        }
        stack.push(Open { end, kind, cursor: start.min(end) });
    }
    close_until(&mut sweep, &mut stack, f64::INFINITY);
    if window.1 > top_cover_end + EPS {
        sweep.att.idle_us += window.1 - top_cover_end;
    }
    att = sweep.att;
    att
}

/// Analyze a set of `(locality, trace)` pairs (as returned by
/// `Cluster::stop_trace`, or a single simulated trace). Epochs are
/// aligned to the earliest one, exactly like the Chrome exporter.
pub fn analyze(traces: &[(u32, Trace)]) -> Analysis {
    let epoch0 = traces.iter().map(|(_, t)| t.epoch).min();
    let offset = |t: &Trace| -> f64 {
        epoch0.map_or(0.0, |e0| t.epoch.saturating_duration_since(e0).as_secs_f64() * 1e6)
    };

    // Global window across all traces.
    let mut w0 = f64::INFINITY;
    let mut w1 = f64::NEG_INFINITY;
    for (_, t) in traces {
        let off = offset(t);
        for e in &t.events {
            w0 = w0.min(e.t_us + off);
            w1 = w1.max(e.t_us + e.dur_us.unwrap_or(0.0) + off);
        }
    }
    if w0 > w1 {
        (w0, w1) = (0.0, 0.0);
    }
    let wall_us = w1 - w0;

    let mut lanes = Vec::new();
    let mut segments: Vec<PathSegment> = Vec::new();
    let mut dropped = 0;
    for (loc, t) in traces {
        dropped += t.dropped;
        for lane in 0..t.lanes {
            let mut spans: Vec<(f64, f64, EventKind)> = Vec::new();
            let mut steals = 0;
            let off = offset(t);
            for e in t.events.iter().filter(|e| e.lane == lane) {
                if e.kind == EventKind::Steal {
                    steals += 1;
                }
                if let Some(d) = e.dur_us {
                    spans.push((e.t_us + off, e.t_us + d + off, e.kind));
                }
            }
            spans.sort_by(|a, b| {
                a.0.partial_cmp(&b.0).unwrap().then(b.1.partial_cmp(&a.1).unwrap())
            });
            let att = LaneAttribution {
                locality: *loc,
                lane,
                external: lane + 1 == t.lanes,
                wall_us,
                compute_us: 0.0,
                parcel_us: 0.0,
                exposed_wait_us: 0.0,
                hidden_wait_us: 0.0,
                steal_us: 0.0,
                park_us: 0.0,
                other_us: 0.0,
                idle_us: 0.0,
                steals,
                truncated: false,
            };
            lanes.push(sweep_lane(att, &spans, (w0, w1), &mut segments));
        }
    }

    // The external lane's blocking wait (the main thread parked on the
    // final future) always ends at the makespan, so it would shadow the
    // worker-level chain. It is an observer of the result, not a cause:
    // drop external waits from candidacy. Help-executed work on the
    // external lane (TaskRun spans) stays eligible.
    let ext: std::collections::HashSet<(u32, usize)> = lanes
        .iter()
        .filter(|l| l.external)
        .map(|l| (l.locality, l.lane))
        .collect();
    let path_cands: Vec<PathSegment> = segments
        .iter()
        .filter(|s| !(is_wait(s.kind) && ext.contains(&(s.locality, s.lane))))
        .copied()
        .collect();
    let critical_path = walk_critical_path(&path_cands, wall_us);
    let parcels = match_parcels(traces, &offset);

    Analysis { wall_us, lanes, critical_path, parcels, dropped }
}

/// Last-finisher chain walk over the innermost-active segments.
fn walk_critical_path(segments: &[PathSegment], makespan_us: f64) -> CriticalPath {
    // Parks are idle by definition: the critical path hops lanes
    // instead of passing through a sleeping worker.
    let mut cands: Vec<&PathSegment> = segments
        .iter()
        .filter(|s| s.kind != EventKind::Park && s.end_us - s.start_us > 2.0 * EPS)
        .collect();
    cands.sort_by(|a, b| a.end_us.partial_cmp(&b.end_us).unwrap());

    let mut chain: Vec<PathSegment> = Vec::new();
    if let Some(last) = cands.last() {
        chain.push(**last);
        let mut cursor = last.start_us;
        loop {
            // Latest-finishing segment that ended before the chain head
            // started — its completion is what plausibly enabled it.
            let idx = cands.partition_point(|s| s.end_us <= cursor + EPS);
            if idx == 0 {
                break;
            }
            let pred = cands[idx - 1];
            chain.push(*pred);
            if pred.start_us >= cursor - EPS {
                break; // zero-progress guard
            }
            cursor = pred.start_us;
        }
        chain.reverse();
    }

    let covered_us: f64 = chain.iter().map(|s| s.end_us - s.start_us).sum();
    let mut by_kind: Vec<(&'static str, f64)> = Vec::new();
    for s in &chain {
        let name = s.kind.name();
        match by_kind.iter_mut().find(|(n, _)| *n == name) {
            Some((_, d)) => *d += s.end_us - s.start_us,
            None => by_kind.push((name, s.end_us - s.start_us)),
        }
    }
    by_kind.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    CriticalPath { segments: chain, covered_us, makespan_us, by_kind }
}

/// FIFO-match `ParcelSend` instants to `ParcelRecv` span starts per
/// action id across all (aligned) traces.
fn match_parcels(traces: &[(u32, Trace)], offset: &dyn Fn(&Trace) -> f64) -> ParcelFlight {
    use std::collections::HashMap;
    let mut sends: HashMap<u64, Vec<f64>> = HashMap::new();
    let mut recvs: HashMap<u64, Vec<f64>> = HashMap::new();
    for (_, t) in traces {
        let off = offset(t);
        for e in &t.events {
            match e.kind {
                EventKind::ParcelSend => sends.entry(e.arg).or_default().push(e.t_us + off),
                EventKind::ParcelRecv => recvs.entry(e.arg).or_default().push(e.t_us + off),
                _ => {}
            }
        }
    }
    let mut flights: Vec<f64> = Vec::new();
    let mut total_sends = 0;
    for (action, mut s) in sends {
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        total_sends += s.len();
        let mut r = recvs.remove(&action).unwrap_or_default();
        r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (send_t, recv_t) in s.iter().zip(r.iter()) {
            flights.push((recv_t - send_t).max(0.0));
        }
    }
    flights.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let matched = flights.len();
    if matched == 0 {
        return ParcelFlight { unmatched_sends: total_sends, ..Default::default() };
    }
    let q = |q: f64| flights[(((q * matched as f64).ceil() as usize).max(1) - 1).min(matched - 1)];
    ParcelFlight {
        matched,
        unmatched_sends: total_sends - matched,
        mean_us: flights.iter().sum::<f64>() / matched as f64,
        p50_us: q(0.5),
        p99_us: q(0.99),
    }
}

/// Record every matched parcel flight time into a histogram
/// (nanoseconds), e.g. to merge a trace-derived distribution with the
/// runtime's live parcel-RTT channel.
pub fn parcel_flight_histogram(traces: &[(u32, Trace)]) -> LatencyHistogram {
    let epoch0 = traces.iter().map(|(_, t)| t.epoch).min();
    let offset = |t: &Trace| -> f64 {
        epoch0.map_or(0.0, |e0| t.epoch.saturating_duration_since(e0).as_secs_f64() * 1e6)
    };
    use std::collections::HashMap;
    let mut sends: HashMap<u64, Vec<f64>> = HashMap::new();
    let mut recvs: HashMap<u64, Vec<f64>> = HashMap::new();
    for (_, t) in traces {
        let off = offset(t);
        for e in &t.events {
            match e.kind {
                EventKind::ParcelSend => sends.entry(e.arg).or_default().push(e.t_us + off),
                EventKind::ParcelRecv => recvs.entry(e.arg).or_default().push(e.t_us + off),
                _ => {}
            }
        }
    }
    let hist = LatencyHistogram::new();
    for (action, mut s) in sends {
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut r = recvs.remove(&action).unwrap_or_default();
        r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (send_t, recv_t) in s.iter().zip(r.iter()) {
            hist.record(((recv_t - send_t).max(0.0) * 1e3) as u64);
        }
    }
    hist
}

/// Render an [`Analysis`] as an aligned plain-text report.
pub fn render_report(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== attribution (wall {:.1} us, {} lanes, {} dropped events) ==\n",
        a.wall_us,
        a.lanes.len(),
        a.dropped
    ));
    out.push_str(&format!(
        "{:<16} {:>10} {:>10} {:>10} {:>8} {:>8} {:>10} {:>10} {:>6}\n",
        "lane", "compute", "exposed-w", "hidden-w", "steal", "park", "idle", "consv-err", "steals"
    ));
    for l in &a.lanes {
        let name = if l.external {
            format!("L{} external", l.locality)
        } else {
            format!("L{} worker#{}", l.locality, l.lane)
        };
        out.push_str(&format!(
            "{:<16} {:>10.1} {:>10.1} {:>10.1} {:>8.1} {:>8.1} {:>10.1} {:>9.2}% {:>6}{}\n",
            name,
            l.compute_us + l.parcel_us,
            l.exposed_wait_us,
            l.hidden_wait_us,
            l.steal_us,
            l.park_us,
            l.idle_us,
            l.conservation_error() * 100.0,
            l.steals,
            if l.truncated { "  (truncated)" } else { "" },
        ));
    }
    let cp = &a.critical_path;
    out.push_str(&format!(
        "critical path: {} segments cover {:.1} us of {:.1} us makespan ({:.1}%)\n",
        cp.segments.len(),
        cp.covered_us,
        cp.makespan_us,
        cp.coverage() * 100.0
    ));
    for (name, d) in &cp.by_kind {
        out.push_str(&format!("  {:<14} {:>10.1} us ({:.1}% of path)\n", name, d,
            if cp.covered_us > 0.0 { d / cp.covered_us * 100.0 } else { 0.0 }));
    }
    let p = &a.parcels;
    out.push_str(&format!(
        "parcels: {} matched ({} unmatched), in-flight mean {:.1} us, p50 {:.1} us, p99 {:.1} us\n",
        p.matched, p.unmatched_sends, p.mean_us, p.p50_us, p.p99_us
    ));
    out
}

/// Side-by-side category totals of two analyses (e.g. a native run vs
/// the DES model of the same plan).
pub fn diff_report(label_a: &str, a: &Analysis, label_b: &str, b: &Analysis) -> String {
    let total = |x: &Analysis, f: &dyn Fn(&LaneAttribution) -> f64| -> f64 {
        x.lanes.iter().map(f).sum()
    };
    type Row = (&'static str, Box<dyn Fn(&LaneAttribution) -> f64>);
    let rows: Vec<Row> = vec![
        ("compute", Box::new(|l: &LaneAttribution| l.compute_us + l.parcel_us)),
        ("exposed-wait", Box::new(|l: &LaneAttribution| l.exposed_wait_us)),
        ("hidden-wait", Box::new(|l: &LaneAttribution| l.hidden_wait_us)),
        ("steal", Box::new(|l: &LaneAttribution| l.steal_us)),
        ("park", Box::new(|l: &LaneAttribution| l.park_us)),
        ("idle", Box::new(|l: &LaneAttribution| l.idle_us)),
    ];
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>14} {:>14} {:>12}\n",
        "category [us]", label_a, label_b, "delta"
    ));
    for (name, f) in &rows {
        let va = total(a, f);
        let vb = total(b, f);
        out.push_str(&format!("{name:<14} {va:>14.1} {vb:>14.1} {:>12.1}\n", va - vb));
    }
    out.push_str(&format!(
        "{:<14} {:>14.1} {:>14.1} {:>12.1}\n",
        "wall", a.wall_us, b.wall_us, a.wall_us - b.wall_us
    ));
    out.push_str(&format!(
        "{:<14} {:>13.1}% {:>13.1}% {:>12}\n",
        "path coverage",
        a.critical_path.coverage() * 100.0,
        b.critical_path.coverage() * 100.0,
        ""
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::introspect::events::TraceEvent;

    fn span(lane: usize, kind: EventKind, t0: f64, t1: f64, arg: u64) -> TraceEvent {
        TraceEvent { lane, kind, t_us: t0, dur_us: Some(t1 - t0), arg }
    }

    fn instant(lane: usize, kind: EventKind, t: f64, arg: u64) -> TraceEvent {
        TraceEvent { lane, kind, t_us: t, dur_us: None, arg }
    }

    #[test]
    fn nested_help_execution_splits_exposed_and_hidden() {
        // Lane 0: TaskRun [0,100] containing FutureWait [20,60]
        // containing a help-executed TaskRun [30,40].
        let t = Trace::from_parts(
            2,
            vec![
                span(0, EventKind::TaskRun, 0.0, 100.0, 0),
                span(0, EventKind::FutureWait, 20.0, 60.0, 0),
                span(0, EventKind::TaskRun, 30.0, 40.0, 0),
            ],
            0,
        );
        let a = analyze(&[(0, t)]);
        let l = &a.lanes[0];
        assert!(!l.truncated);
        assert!((l.compute_us - 70.0).abs() < 0.01, "outer 60 + inner 10: {}", l.compute_us);
        assert!((l.exposed_wait_us - 30.0).abs() < 0.01, "wait minus helped: {}", l.exposed_wait_us);
        assert!((l.hidden_wait_us - 10.0).abs() < 0.01, "{}", l.hidden_wait_us);
        assert!((l.idle_us - 0.0).abs() < 0.01);
        assert!(l.conservation_error() < 1e-6, "{}", l.conservation_error());
        // Lane 1 (external, empty) is all idle and still conserves.
        assert!((a.lanes[1].idle_us - 100.0).abs() < 0.01);
        assert!(a.lanes[1].conservation_error() < 1e-6);
    }

    #[test]
    fn critical_path_chains_across_lanes() {
        // Lane 0 computes [0,50], lane 1 starts right after [50,100]:
        // the chain must include both and cover the whole window.
        let t = Trace::from_parts(
            3,
            vec![
                span(0, EventKind::TaskRun, 0.0, 50.0, 0),
                span(1, EventKind::TaskRun, 50.0, 100.0, 0),
            ],
            0,
        );
        let a = analyze(&[(0, t)]);
        let cp = &a.critical_path;
        assert_eq!(cp.segments.len(), 2);
        assert_eq!(cp.segments[0].lane, 0);
        assert_eq!(cp.segments[1].lane, 1);
        assert!((cp.covered_us - 100.0).abs() < 0.01);
        assert!(cp.coverage() > 0.99);
        assert_eq!(cp.by_kind[0].0, "task-run");
    }

    #[test]
    fn park_segments_never_carry_the_path() {
        let t = Trace::from_parts(
            2,
            vec![
                span(0, EventKind::TaskRun, 0.0, 40.0, 0),
                span(1, EventKind::Park, 0.0, 100.0, 0),
            ],
            0,
        );
        let a = analyze(&[(0, t)]);
        assert!(a.critical_path.segments.iter().all(|s| s.kind != EventKind::Park));
    }

    #[test]
    fn truncated_lane_is_flagged_not_fatal() {
        // Partially overlapping spans (an orphaned pair after ring
        // drops): attribution degrades gracefully.
        let t = Trace::from_parts(
            1,
            vec![
                span(0, EventKind::TaskRun, 0.0, 50.0, 0),
                span(0, EventKind::FutureWait, 30.0, 80.0, 0),
            ],
            5,
        );
        let a = analyze(&[(0, t)]);
        assert!(a.lanes[0].truncated);
        assert_eq!(a.dropped, 5);
        assert!(a.lanes[0].compute_us > 0.0);
    }

    #[test]
    fn parcel_sends_match_receives_fifo_per_action() {
        let t = Trace::from_parts(
            2,
            vec![
                instant(0, EventKind::ParcelSend, 0.0, 7),
                instant(0, EventKind::ParcelSend, 10.0, 7),
                span(1, EventKind::ParcelRecv, 400.0, 410.0, 7),
                span(1, EventKind::ParcelRecv, 415.0, 420.0, 7),
                instant(0, EventKind::ParcelSend, 1.0, 9), // never received
            ],
            0,
        );
        let a = analyze(&[(0, t)]);
        assert_eq!(a.parcels.matched, 2);
        assert_eq!(a.parcels.unmatched_sends, 1);
        assert!((a.parcels.mean_us - 402.5).abs() < 0.01, "{}", a.parcels.mean_us);
        let h = parcel_flight_histogram(&[(0, {
            Trace::from_parts(
                2,
                vec![
                    instant(0, EventKind::ParcelSend, 0.0, 7),
                    span(1, EventKind::ParcelRecv, 400.0, 410.0, 7),
                ],
                0,
            )
        })]);
        assert_eq!(h.count(), 1);
        assert!(h.value_at_quantile(1.0) >= 400_000);
    }

    #[test]
    fn report_renders_every_section() {
        let t = Trace::from_parts(
            2,
            vec![
                span(0, EventKind::TaskRun, 0.0, 50.0, 0),
                span(0, EventKind::FutureWait, 60.0, 90.0, 0),
                instant(0, EventKind::Steal, 5.0, 1),
            ],
            0,
        );
        let a = analyze(&[(0, t)]);
        let r = render_report(&a);
        for needle in ["attribution", "critical path", "parcels:", "worker#0", "external"] {
            assert!(r.contains(needle), "missing {needle:?} in:\n{r}");
        }
        let d = diff_report("native", &a, "sim", &a);
        for needle in ["compute", "exposed-wait", "wall", "native", "sim"] {
            assert!(d.contains(needle), "missing {needle:?} in:\n{d}");
        }
    }

    #[test]
    fn empty_trace_analyzes_to_zeroes() {
        let t = Trace::from_parts(1, vec![], 0);
        let a = analyze(&[(0, t)]);
        assert_eq!(a.wall_us, 0.0);
        assert!(a.critical_path.segments.is_empty());
        assert_eq!(a.parcels.matched, 0);
        assert!(a.max_conservation_error() < 1e-9);
    }
}
