//! Mergeable log-bucketed latency histograms.
//!
//! HdrHistogram-style: values (nanoseconds) land in logarithmic buckets
//! with [`SUB_BITS`] bits of sub-bucket precision per octave, so any
//! recorded value is representable within a relative error of
//! `2^-SUB_BITS` (≈ 3.1%). Recording is one relaxed `fetch_add` on an
//! `AtomicU64` — cheap enough to leave on in production — and merging is
//! element-wise addition, which is associative and commutative, so
//! per-worker histograms combine into per-locality and cluster-wide
//! views in any order ([`LatencyHistogram::merge_from`]).
//!
//! [`LatencySet`] bundles one histogram per (channel × lane): each
//! worker records into its own lane without contention, mirroring the
//! tracer's lane layout (workers + 1 external lane). The runtime feeds
//! four channels — task latency, steal latency, future-wait and parcel
//! RTT — and registers their quantiles as HPX-path counters
//! (`/latency{locality#0/worker#3}/task/p99`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket precision bits: 2^5 = 32 sub-buckets per octave, bounding
/// the relative quantile error at 1/32 ≈ 3.1%.
pub const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering the full `u64` value range at `SUB_BITS`
/// precision: 32 exact unit buckets plus 32 sub-buckets for each of the
/// 59 remaining octaves.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Bucket index of `v`: exact below `SUB`, logarithmic with `SUB`
/// sub-buckets per octave above.
#[inline]
fn bucket_index(v: u64) -> usize {
    let msb = 63 - (v | 1).leading_zeros();
    if msb < SUB_BITS {
        v as usize
    } else {
        let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        (msb - SUB_BITS + 1) as usize * SUB + sub
    }
}

/// Lowest value mapping to bucket `idx`.
///
/// Total over every valid index: top-octave buckets sit right below
/// `u64::MAX`, so all arithmetic here is kept saturating — the octave
/// base `2^63` plus the sub-bucket offset stays below `2^64`, but the
/// intermediate forms are one shift away from wrapping.
fn bucket_low(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = (idx / SUB) as u32; // >= 1
    let msb = octave + SUB_BITS - 1;
    let sub = (idx % SUB) as u64;
    (1u64 << msb).saturating_add(sub << (msb - SUB_BITS))
}

/// Highest value mapping to bucket `idx` (the "highest equivalent
/// value" reported for quantiles, giving a one-sided error bound).
///
/// The top bucket's width term makes `low + width` equal `2^64` before
/// the `- 1`, so the width is computed as `2^(msb-SUB_BITS) - 1` first
/// and added saturating: the last bucket tops out at exactly
/// `u64::MAX` instead of wrapping.
fn bucket_high(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let msb = (idx / SUB) as u32 + SUB_BITS - 1;
    bucket_low(idx).saturating_add((1u64 << (msb - SUB_BITS)) - 1)
}

/// A lock-free log-bucketed histogram of `u64` values (nanoseconds by
/// convention). Concurrent `record` calls are safe; reads are
/// best-effort snapshots (exact once writers quiesce).
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one value. One relaxed `fetch_add`; never allocates.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Value at quantile `q` in `[0, 1]`: the highest equivalent value
    /// of the bucket where the cumulative count reaches `ceil(q *
    /// count)`. Within `2^-SUB_BITS` relative error of the true
    /// quantile; 0 for an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_high(idx);
            }
        }
        bucket_high(NUM_BUCKETS - 1)
    }

    /// Bucket-midpoint-weighted mean (within bucket resolution of the
    /// true mean); 0.0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        let mut n = 0u64;
        let mut sum = 0.0f64;
        for (idx, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                n += c;
                sum += c as f64 * (bucket_low(idx) as f64 + bucket_high(idx) as f64) / 2.0;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Highest equivalent value of the top non-empty bucket.
    pub fn max_value(&self) -> u64 {
        for idx in (0..NUM_BUCKETS).rev() {
            if self.buckets[idx].load(Ordering::Relaxed) > 0 {
                return bucket_high(idx);
            }
        }
        0
    }

    /// Add every bucket of `other` into `self`. Element-wise addition:
    /// associative and commutative, so distributed merge trees produce
    /// identical results regardless of shape.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let v = theirs.load(Ordering::Relaxed);
            if v > 0 {
                mine.fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    /// The merge of several histograms, as a new histogram.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a LatencyHistogram>) -> LatencyHistogram {
        let out = LatencyHistogram::new();
        for p in parts {
            out.merge_from(p);
        }
        out
    }

    /// Snapshot of all bucket counts (for equality checks and tests).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

/// Latency channels the runtime records into a [`LatencySet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyChannel {
    /// Wall time of one task execution.
    Task,
    /// Time a successful steal spent probing victims.
    Steal,
    /// Time blocked on an LCO (includes help-executed work).
    FutureWait,
    /// Round-trip time of a response-carrying parcel.
    ParcelRtt,
}

impl LatencyChannel {
    /// Every channel, in registration order.
    pub const ALL: [LatencyChannel; 4] = [
        LatencyChannel::Task,
        LatencyChannel::Steal,
        LatencyChannel::FutureWait,
        LatencyChannel::ParcelRtt,
    ];

    /// Stable name used in counter paths (`/latency{...}/task/p99`).
    pub fn name(&self) -> &'static str {
        match self {
            LatencyChannel::Task => "task",
            LatencyChannel::Steal => "steal",
            LatencyChannel::FutureWait => "future-wait",
            LatencyChannel::ParcelRtt => "parcel-rtt",
        }
    }
}

const CHANNELS: usize = LatencyChannel::ALL.len();

/// Per-lane histogram bundle: one [`LatencyHistogram`] per (channel ×
/// lane), laid out like the tracer's lanes (one per worker plus one
/// external lane), so each worker records without touching another
/// worker's cache lines.
pub struct LatencySet {
    lanes: Vec<[LatencyHistogram; CHANNELS]>,
}

impl LatencySet {
    /// A set with `lanes` lanes (at least one).
    pub fn new(lanes: usize) -> LatencySet {
        LatencySet {
            lanes: (0..lanes.max(1)).map(|_| std::array::from_fn(|_| LatencyHistogram::new())).collect(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Record `value_ns` on `lane` (clamped to the last lane, which
    /// collects non-worker threads, mirroring the tracer).
    #[inline]
    pub fn record(&self, channel: LatencyChannel, lane: usize, value_ns: u64) {
        let lane = lane.min(self.lanes.len() - 1);
        self.lanes[lane][channel as usize].record(value_ns);
    }

    /// One lane's histogram for `channel`.
    pub fn lane(&self, channel: LatencyChannel, lane: usize) -> &LatencyHistogram {
        &self.lanes[lane.min(self.lanes.len() - 1)][channel as usize]
    }

    /// The merge of every lane's histogram for `channel`.
    pub fn merged(&self, channel: LatencyChannel) -> LatencyHistogram {
        LatencyHistogram::merged(self.lanes.iter().map(|l| &l[channel as usize]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64: deterministic value streams without a rand dep.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn index_and_bounds_are_consistent() {
        // Exhaustive below the exact range, spot checks across octaves,
        // and the extremes.
        let mut probes: Vec<u64> = (0..1024).collect();
        let mut rng = Rng(7);
        probes.extend((0..10_000).map(|_| rng.next()));
        probes.extend([u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1]);
        for v in probes {
            let idx = bucket_index(v);
            assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
            assert!(bucket_low(idx) <= v && v <= bucket_high(idx),
                "v={v} not in [{}, {}] (idx {idx})", bucket_low(idx), bucket_high(idx));
        }
        // Buckets tile the value range without gaps.
        for idx in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_high(idx) + 1, bucket_low(idx + 1), "gap after bucket {idx}");
        }
        assert_eq!(bucket_high(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        for q in [0.0, 0.5, 1.0] {
            let v = h.value_at_quantile(q);
            assert!(v < 32, "exact range: q={q} -> {v}");
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.value_at_quantile(1.0), 31);
    }

    fn random_hist(seed: u64, n: usize) -> (LatencyHistogram, Vec<u64>) {
        let h = LatencyHistogram::new();
        let mut rng = Rng(seed);
        let mut vals = Vec::with_capacity(n);
        for _ in 0..n {
            // Mixed magnitudes: exercise several octaves.
            let v = rng.next() % (1 << (8 + (rng.next() % 24)));
            h.record(v);
            vals.push(v);
        }
        (h, vals)
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, _) = random_hist(1, 5_000);
        let (b, _) = random_hist(2, 3_000);
        let (c, _) = random_hist(3, 7_000);

        // (a ⊕ b) ⊕ c
        let ab = LatencyHistogram::merged([&a, &b]);
        let ab_c = LatencyHistogram::merged([&ab, &c]);
        // a ⊕ (b ⊕ c)
        let bc = LatencyHistogram::merged([&b, &c]);
        let a_bc = LatencyHistogram::merged([&a, &bc]);
        assert_eq!(ab_c.bucket_counts(), a_bc.bucket_counts(), "associative");

        // a ⊕ b == b ⊕ a
        let ba = LatencyHistogram::merged([&b, &a]);
        assert_eq!(ab.bucket_counts(), ba.bucket_counts(), "commutative");

        assert_eq!(ab_c.count(), a.count() + b.count() + c.count());
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let (h, mut vals) = random_hist(42, 50_000);
        vals.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let true_q = vals[(((q * vals.len() as f64).ceil() as usize).max(1) - 1).min(vals.len() - 1)];
            let got = h.value_at_quantile(q);
            // The reported value is the top of the true value's bucket:
            // never below the true quantile, and at most one bucket width
            // (2^-SUB_BITS relative) above it.
            assert!(got >= true_q, "q={q}: {got} < true {true_q}");
            let bound = true_q as f64 * (1.0 + 1.0 / SUB as f64) + 1.0;
            assert!((got as f64) <= bound, "q={q}: {got} vs true {true_q} (bound {bound})");
        }
    }

    #[test]
    fn mean_tracks_true_mean() {
        let (h, vals) = random_hist(9, 20_000);
        let true_mean = vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64;
        let got = h.mean();
        assert!((got - true_mean).abs() / true_mean < 1.0 / SUB as f64 + 1e-3,
            "mean {got} vs true {true_mean}");
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.max_value(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.value_at_quantile(1.0), u64::MAX);
    }

    mod bucket_totality {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(512))]

            // Bounds are ordered and contain their value over the FULL
            // u64 range — this is the property the wrapping bucket_high
            // violated for top-octave values (>= 2^63).
            #[test]
            fn bounds_contain_value_full_range(v in any::<u64>()) {
                let idx = bucket_index(v);
                prop_assert!(idx < NUM_BUCKETS);
                prop_assert!(bucket_low(idx) <= bucket_high(idx));
                prop_assert!(bucket_low(idx) <= v && v <= bucket_high(idx));
            }

            #[test]
            fn bounds_are_ordered_for_every_index(idx in 0usize..NUM_BUCKETS) {
                prop_assert!(bucket_low(idx) <= bucket_high(idx));
                // Bounds round-trip through the index function.
                prop_assert_eq!(bucket_index(bucket_low(idx)), idx);
                prop_assert_eq!(bucket_index(bucket_high(idx)), idx);
            }

            #[test]
            fn record_and_quantile_are_total(v in any::<u64>()) {
                let h = LatencyHistogram::new();
                h.record(v);
                let top = h.value_at_quantile(1.0);
                prop_assert!(top >= v);
                prop_assert!(h.max_value() >= v);
            }
        }
    }

    #[test]
    fn latency_set_records_per_lane_and_merges() {
        let set = LatencySet::new(3);
        set.record(LatencyChannel::Task, 0, 100);
        set.record(LatencyChannel::Task, 1, 200);
        set.record(LatencyChannel::Steal, 1, 300);
        set.record(LatencyChannel::Task, 99, 400); // clamps to last lane
        assert_eq!(set.lane(LatencyChannel::Task, 0).count(), 1);
        assert_eq!(set.lane(LatencyChannel::Task, 2).count(), 1);
        assert_eq!(set.merged(LatencyChannel::Task).count(), 3);
        assert_eq!(set.merged(LatencyChannel::Steal).count(), 1);
        assert_eq!(set.merged(LatencyChannel::FutureWait).count(), 0);
    }
}
