//! The runtime: a pool of OS worker threads executing lightweight tasks.
//!
//! One [`Runtime`] corresponds to one HPX locality's thread-manager: a set
//! of workers (one per "processing unit", pinned logically via
//! [`crate::task::ScheduleHint`]) draining a shared [`crate::sched::Scheduler`].
//! Blocking waits issued *from* a worker (future `get`, latch `wait`,
//! algorithm joins) never park the OS thread — they **help-execute** other
//! ready tasks until their condition is met, which is how HPX keeps cores
//! busy while user code blocks on LCOs (the "increased asynchrony" the
//! paper's Section III-A credits for resource utilization).

use crate::introspect::{
    prometheus_text, CounterRegistry, CounterSnapshot, EventKind, LatencyChannel, LatencySet,
    MetricsServer, Tracer,
};
use crate::lcos::future::{Future, Promise};
use crate::perf::{Counters, WorkerStat};
use crate::sched::{Scheduler, SchedulerPolicy};
use crate::task::{Priority, ScheduleHint, Task};
use crate::topology::Topology;
use parking_lot::{Condvar, Mutex, RwLock};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

thread_local! {
    static CURRENT: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

#[derive(Clone)]
struct WorkerCtx {
    core: Arc<Core>,
    index: usize,
}

/// Shared runtime state: what worker threads and futures need to run and
/// help-execute tasks. Kept separate from [`Runtime`] so worker threads do
/// not keep the runtime alive in a reference cycle.
pub(crate) struct Core {
    pub(crate) sched: Scheduler,
    /// Tasks spawned and not yet finished (queued + running).
    outstanding: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cond: Condvar,
    pub(crate) counters: Counters,
    /// Per-worker execution stats feeding the per-worker counter paths.
    pub(crate) worker_stats: Vec<WorkerStat>,
    /// Structured event recorder shared with the scheduler and the
    /// legacy `TaskTrace` facade.
    pub(crate) tracer: Arc<Tracer>,
    /// Always-on per-worker latency histograms (task, steal,
    /// future-wait, parcel-RTT), shared with the scheduler and cluster.
    pub(crate) latency: Arc<LatencySet>,
    /// Chaos hook: when installed, every task execution asks the
    /// injector for a fate (run / panic / stall). Always compiled in;
    /// the flag keeps the uninstalled hot path to one relaxed load.
    fault: RwLock<Option<Arc<crate::resilience::FaultInjector>>>,
    fault_enabled: AtomicBool,
}

impl Core {
    /// Execute `task`, accounting and catching panics. Panics inside raw
    /// spawned tasks are recorded (and printed) rather than tearing down
    /// the worker; value-returning tasks route panics through their
    /// promise instead (see [`Runtime::async_task`]).
    pub(crate) fn run_task(&self, task: Task, worker: usize) {
        let fate = if self.fault_enabled.load(Ordering::Relaxed) {
            self.fault
                .read()
                .as_ref()
                .map_or(crate::resilience::TaskFate::Run, |inj| inj.next_fate())
        } else {
            crate::resilience::TaskFate::Run
        };
        let start = std::time::Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            match fate {
                crate::resilience::TaskFate::Run => {}
                crate::resilience::TaskFate::Stall(d) => std::thread::sleep(d),
                // Fires outside the task's own promise wrapper: an
                // `async_task` future observes `BrokenPromise`, which the
                // replay combinators treat as retryable.
                crate::resilience::TaskFate::Panic => panic!("injected fault: task panic"),
            }
            task.run()
        }));
        let end = std::time::Instant::now();
        self.tracer.span(worker, EventKind::TaskRun, start, end, 0);
        self.latency.record(
            LatencyChannel::Task,
            worker,
            end.duration_since(start).as_nanos() as u64,
        );
        if let Some(ws) = self.worker_stats.get(worker) {
            ws.tasks_executed.fetch_add(1, Ordering::Relaxed);
            ws.busy_ns
                .fetch_add(end.duration_since(start).as_nanos() as u64, Ordering::Relaxed);
        }
        // `tasks_executed` counts successful completions only, so the
        // conservation identity `spawned == executed + panicked` holds
        // once the runtime is idle.
        if result.is_ok() {
            self.counters.tasks_executed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.tasks_panicked.fetch_add(1, Ordering::Relaxed);
        }
        if self.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.idle_lock.lock();
            self.idle_cond.notify_all();
        }
        if let Err(payload) = result {
            let msg = crate::util::panic_message(&*payload);
            eprintln!("parallex: task panicked: {msg}");
        }
    }

    /// Try to run one ready task as worker `index`. Returns false if no
    /// work was available.
    pub(crate) fn run_one(&self, index: usize) -> bool {
        match self.sched.pop(index) {
            Some(t) => {
                self.run_task(t, index);
                true
            }
            None => false,
        }
    }

    pub(crate) fn spawn(self: &Arc<Self>, task: Task) {
        self.counters.tasks_spawned.fetch_add(1, Ordering::Relaxed);
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        let from_worker = current_worker_on(self).map(|ctx| ctx.index);
        self.sched.push(task, from_worker);
    }
}

fn current_worker_on(core: &Arc<Core>) -> Option<WorkerCtx> {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .filter(|ctx| Arc::ptr_eq(&ctx.core, core))
            .cloned()
    })
}

/// Help-execute tasks (when called from a worker of `core`) or yield, until
/// `done()` returns true. This is the universal blocking primitive behind
/// future `get`, latch `wait`, etc.
pub(crate) fn help_until(core: Option<&Arc<Core>>, mut done: impl FnMut() -> bool) {
    if done() {
        return;
    }
    // Time the blocking wait: it always feeds the future-wait latency
    // histogram and becomes a FutureWait span when tracing is on
    // (help-executed tasks nest inside it).
    let t0 = core.map(|_| std::time::Instant::now());
    let ctx = core.and_then(current_worker_on);
    let lane = ctx.as_ref().map(|c| c.index);
    match ctx {
        Some(ctx) => {
            let mut spins = 0u32;
            while !done() {
                if ctx.core.run_one(ctx.index) {
                    spins = 0;
                } else {
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
        None => {
            // Not a worker: plain exponential-backoff yield wait.
            let mut spins = 0u32;
            while !done() {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::sleep(Duration::from_micros(20));
                }
            }
        }
    }
    if let (Some(core), Some(t0)) = (core, t0) {
        let end = std::time::Instant::now();
        let lane = lane.unwrap_or_else(|| core.tracer.external_lane());
        core.latency.record(
            LatencyChannel::FutureWait,
            lane,
            end.duration_since(t0).as_nanos() as u64,
        );
        core.tracer.span(lane, EventKind::FutureWait, t0, end, 0);
    }
}

/// Builder for a [`Runtime`] (HPX's command-line/config equivalent).
pub struct RuntimeBuilder {
    workers: usize,
    policy: SchedulerPolicy,
    numa_domains: usize,
    thread_name: String,
    locality: u32,
    trace_capacity: usize,
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        RuntimeBuilder {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            policy: SchedulerPolicy::LocalPriority,
            numa_domains: 1,
            thread_name: "parallex-worker".to_string(),
            locality: 0,
            trace_capacity: crate::introspect::events::DEFAULT_LANE_CAPACITY,
        }
    }
}

impl RuntimeBuilder {
    /// Number of worker OS threads (HPX `--hpx:threads`).
    pub fn worker_threads(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one worker");
        self.workers = n;
        self
    }

    /// Scheduling policy (HPX `--hpx:queuing`).
    pub fn scheduler(mut self, p: SchedulerPolicy) -> Self {
        self.policy = p;
        self
    }

    /// Number of emulated NUMA domains the workers are spread over (drives
    /// the topology used by the block executor).
    pub fn numa_domains(mut self, d: usize) -> Self {
        assert!(d > 0);
        self.numa_domains = d;
        self
    }

    /// Worker thread name prefix.
    pub fn thread_name(mut self, name: impl Into<String>) -> Self {
        self.thread_name = name.into();
        self
    }

    /// Locality id used in counter paths and trace pids (set by
    /// [`crate::locality::Cluster`]; standalone runtimes are locality 0).
    pub fn locality_id(mut self, id: u32) -> Self {
        self.locality = id;
        self
    }

    /// Per-lane event capacity of the structured tracer (events past the
    /// cap are dropped and counted, bounding trace memory).
    pub fn trace_capacity(mut self, events_per_lane: usize) -> Self {
        assert!(events_per_lane > 0, "trace capacity must be positive");
        self.trace_capacity = events_per_lane;
        self
    }

    /// Start the workers and return the runtime.
    pub fn build(self) -> Runtime {
        let topology = Topology::uniform(self.workers, self.numa_domains.min(self.workers));
        // One lane per worker plus one for external (non-worker) threads.
        let tracer = Arc::new(Tracer::with_capacity(self.workers + 1, self.trace_capacity));
        // Histogram lanes mirror the tracer's: one per worker plus one
        // external lane for non-worker threads.
        let latency = Arc::new(LatencySet::new(self.workers + 1));
        let core = Arc::new(Core {
            sched: Scheduler::with_topology(self.workers, self.policy, &topology),
            outstanding: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cond: Condvar::new(),
            counters: Counters::default(),
            worker_stats: (0..self.workers).map(|_| WorkerStat::default()).collect(),
            tracer: tracer.clone(),
            latency: latency.clone(),
            fault: RwLock::new(None),
            fault_enabled: AtomicBool::new(false),
        });
        core.sched.attach_tracer(tracer.clone());
        core.sched.attach_latency(latency);
        let registry = Arc::new(CounterRegistry::new());
        crate::perf::register_runtime_counters(&registry, self.locality, &core);
        let threads = (0..self.workers)
            .map(|i| {
                let core = core.clone();
                std::thread::Builder::new()
                    .name(format!("{}-{}", self.thread_name, i))
                    .spawn(move || worker_loop(core, i))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Runtime {
            inner: Arc::new(RuntimeInner {
                legacy_trace: crate::trace::TaskTrace::with_tracer(tracer),
                core,
                topology,
                threads: Mutex::new(threads),
                timer: Mutex::new(None),
                registry,
                locality: self.locality,
            }),
        }
    }
}

/// Idle backoff ladder: spin (cheap, catches work within ~100ns), then
/// yield the timeslice, then park on the scheduler's eventcount with no
/// timeout. The counter is deliberately NOT reset after a fruitless park:
/// a worker that parked once and found nothing re-parks immediately, so an
/// idle runtime settles at ~0% CPU instead of cycling through the spin
/// phase on every spurious wake.
const IDLE_SPINS: u32 = 64;
const IDLE_YIELDS: u32 = 16;

fn worker_loop(core: Arc<Core>, index: usize) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some(WorkerCtx { core: core.clone(), index });
    });
    let mut idle = 0u32;
    loop {
        if core.run_one(index) {
            idle = 0;
            continue;
        }
        if core.sched.is_shutdown() && !core.sched.has_queued() {
            break;
        }
        if idle < IDLE_SPINS {
            std::hint::spin_loop();
            idle += 1;
        } else if idle < IDLE_SPINS + IDLE_YIELDS {
            std::thread::yield_now();
            idle += 1;
        } else {
            core.sched.wait_for_work(index);
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
}

struct RuntimeInner {
    core: Arc<Core>,
    topology: Topology,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Lazily started timer thread backing `spawn_after` / `sleep`.
    timer: Mutex<Option<Arc<crate::parcel::TimerWheel>>>,
    /// HPX-style counter registry, pre-populated with this runtime's
    /// counters at hierarchical paths.
    registry: Arc<CounterRegistry>,
    /// Locality id used in counter paths and trace pids.
    locality: u32,
    /// Compatibility facade over `core.tracer` (see [`crate::trace`]).
    legacy_trace: crate::trace::TaskTrace,
}

impl RuntimeInner {
    fn shutdown(&self) {
        self.core.sched.signal_shutdown();
        let mut threads = self.threads.lock();
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for RuntimeInner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A running task pool. Cheap to clone; the workers stop when the last
/// clone is dropped or [`Runtime::shutdown`] is called.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

impl Runtime {
    /// Start a runtime with defaults (one worker per host CPU).
    pub fn new() -> Runtime {
        Runtime::builder().build()
    }

    /// Configure a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.core.sched.workers()
    }

    /// The emulated topology (worker → NUMA domain map).
    pub fn topology(&self) -> &Topology {
        &self.inner.topology
    }

    /// Runtime performance counters (HPX performance-counter analogue).
    pub fn counters(&self) -> &Counters {
        &self.inner.core.counters
    }

    /// A point-in-time snapshot of all runtime counters, including the
    /// scheduler's steal statistics.
    pub fn perf_snapshot(&self) -> crate::perf::Snapshot {
        self.inner.core.counters.snapshot(&self.inner.core.sched)
    }

    /// The task timeline recorder (disabled until
    /// [`crate::trace::TaskTrace::start`] is called). Legacy facade over
    /// [`Runtime::tracer`].
    pub fn task_trace(&self) -> &crate::trace::TaskTrace {
        &self.inner.legacy_trace
    }

    /// The structured event tracer (see [`crate::introspect`]): typed
    /// spans/instants for task runs, steals, parks/wakes, LCO waits and
    /// parcel traffic, recorded into per-worker bounded buffers.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.core.tracer
    }

    /// The HPX-style counter registry for this runtime, pre-populated
    /// with `/threads{...}`, `/parcels{...}` and `/lcos{...}` counters.
    /// Share it with a [`crate::introspect::CounterSampler`] for
    /// interval sampling.
    pub fn counter_registry(&self) -> &Arc<CounterRegistry> {
        &self.inner.registry
    }

    /// Snapshot every registered counter (see
    /// [`crate::introspect::CounterSnapshot::delta`] for interval rates).
    pub fn counter_snapshot(&self) -> CounterSnapshot {
        self.inner.registry.snapshot()
    }

    /// Locality id this runtime reports under in counter paths and
    /// trace pids (0 unless set by a cluster).
    pub fn locality_id(&self) -> u32 {
        self.inner.locality
    }

    /// The always-on mergeable latency histograms (task, steal,
    /// future-wait, parcel-RTT), one lane per worker plus an external
    /// lane. Quantiles are also registered as `/latency{...}` counters.
    pub fn latency_histograms(&self) -> &Arc<LatencySet> {
        &self.inner.core.latency
    }

    /// Serve this runtime's counter registry (including latency
    /// quantiles) in Prometheus text format on a std-only TCP listener.
    /// Bind `"127.0.0.1:0"` for an ephemeral port and read it back with
    /// [`MetricsServer::local_addr`]; the endpoint stops when the
    /// returned server is dropped or [`MetricsServer::stop`]ped.
    pub fn serve_metrics<A: std::net::ToSocketAddrs>(
        &self,
        addr: A,
    ) -> std::io::Result<MetricsServer> {
        let registry = self.inner.registry.clone();
        MetricsServer::bind(addr, Arc::new(move || prometheus_text(&registry.snapshot())))
    }

    pub(crate) fn core(&self) -> &Arc<Core> {
        &self.inner.core
    }

    /// Fire-and-forget spawn (HPX `hpx::apply`).
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.spawn_task(Task::new(f));
    }

    /// Spawn a pre-built task (with priority/hint).
    pub fn spawn_task(&self, task: Task) {
        self.inner.core.spawn(task);
    }

    /// Spawn with a placement hint.
    pub fn spawn_hinted(&self, hint: ScheduleHint, f: impl FnOnce() + Send + 'static) {
        self.spawn_task(Task::new(f).with_hint(hint));
    }

    /// Spawn returning a future of the result (HPX `hpx::async`). Panics in
    /// `f` are captured into the future as [`crate::error::Error::TaskPanicked`].
    pub fn async_task<T: Send + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Future<T> {
        self.async_task_with(Priority::Normal, ScheduleHint::None, f)
    }

    /// [`Runtime::async_task`] with explicit priority and hint.
    pub fn async_task_with<T: Send + 'static>(
        &self,
        priority: Priority,
        hint: ScheduleHint,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> Future<T> {
        let mut promise = Promise::with_core(self.inner.core.clone());
        let future = promise.future();
        let task = Task::new(move || match catch_unwind(AssertUnwindSafe(f)) {
            Ok(v) => promise.set_value(v),
            Err(p) => promise.set_error(crate::error::Error::TaskPanicked(
                crate::util::panic_message(&*p),
            )),
        })
        .with_priority(priority)
        .with_hint(hint);
        self.spawn_task(task);
        future
    }

    /// Create an unfulfilled promise whose continuations will be scheduled
    /// on this runtime.
    pub fn make_promise<T: Send + 'static>(&self) -> Promise<T> {
        Promise::with_core(self.inner.core.clone())
    }

    /// A future that is already ready (HPX `make_ready_future`).
    pub fn make_ready_future<T: Send + 'static>(&self, v: T) -> Future<T> {
        let mut p = self.make_promise();
        let f = p.future();
        p.set_value(v);
        f
    }

    /// Block until no spawned task remains (queued or running). Safe to
    /// call from a worker: it help-executes.
    pub fn wait_idle(&self) {
        let core = self.inner.core.clone();
        help_until(Some(&core), || {
            core.outstanding.load(Ordering::Acquire) == 0
        });
    }

    /// Tasks spawned and not yet finished.
    pub fn outstanding(&self) -> usize {
        self.inner.core.outstanding.load(Ordering::Acquire)
    }

    /// Stop the workers (idempotent). Queued tasks are drained first.
    pub fn shutdown(&self) {
        self.inner.shutdown();
    }

    fn timer(&self) -> Arc<crate::parcel::TimerWheel> {
        let mut guard = self.inner.timer.lock();
        guard
            .get_or_insert_with(|| Arc::new(crate::parcel::TimerWheel::new()))
            .clone()
    }

    /// Spawn `f` as a task after `delay` (HPX timed execution,
    /// `hpx::make_timed_task`-style).
    pub fn spawn_after(&self, delay: Duration, f: impl FnOnce() + Send + 'static) {
        let core = self.inner.core.clone();
        self.timer().schedule(delay, move || {
            core.spawn(Task::new(f));
        });
    }

    /// A future that becomes ready after `delay` without occupying a
    /// worker while waiting.
    pub fn sleep(&self, delay: Duration) -> Future<()> {
        let mut p = self.make_promise();
        let f = p.future();
        self.timer().schedule(delay, move || p.set_value(()));
        f
    }

    /// Index of the current worker thread if the caller is one of this
    /// runtime's workers.
    pub fn current_worker(&self) -> Option<usize> {
        current_worker_on(&self.inner.core).map(|c| c.index)
    }

    /// Install (or with `None`, remove) a chaos
    /// [`crate::resilience::FaultInjector`]: every subsequent task
    /// execution asks it whether to run, panic or stall. Cfg-free — the
    /// cost when uninstalled is one relaxed atomic load per task.
    pub fn set_fault_injector(&self, inj: Option<Arc<crate::resilience::FaultInjector>>) {
        let enabled = inj.is_some();
        *self.inner.core.fault.write() = inj;
        self.inner.core.fault_enabled.store(enabled, Ordering::Release);
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn spawn_runs_tasks() {
        let rt = Runtime::builder().worker_threads(2).build();
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let n = n.clone();
            rt.spawn(move || {
                n.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.wait_idle();
        assert_eq!(n.load(Ordering::Relaxed), 100);
        rt.shutdown();
    }

    #[test]
    fn async_task_returns_value() {
        let rt = Runtime::builder().worker_threads(2).build();
        let f = rt.async_task(|| 7 * 6);
        assert_eq!(f.get(), 42);
        rt.shutdown();
    }

    #[test]
    fn async_task_panic_becomes_error() {
        let rt = Runtime::builder().worker_threads(1).build();
        let f = rt.async_task(|| -> i32 { panic!("boom") });
        match f.try_get() {
            Err(crate::error::Error::TaskPanicked(m)) => assert!(m.contains("boom")),
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
        rt.shutdown();
    }

    #[test]
    fn nested_spawn_from_worker() {
        let rt = Runtime::builder().worker_threads(2).build();
        let rt2 = rt.clone();
        let f = rt.async_task(move || {
            let inner = rt2.async_task(|| 10);
            inner.get() + 1
        });
        assert_eq!(f.get(), 11);
        rt.shutdown();
    }

    #[test]
    fn deeply_nested_gets_do_not_deadlock_on_one_worker() {
        // A single worker must help-execute through a chain of dependent
        // tasks rather than deadlocking.
        let rt = Runtime::builder().worker_threads(1).build();
        fn chain(rt: &Runtime, depth: usize) -> usize {
            if depth == 0 {
                return 0;
            }
            let rt2 = rt.clone();
            let f = rt.async_task(move || chain(&rt2, depth - 1) + 1);
            f.get()
        }
        assert_eq!(chain(&rt, 20), 20);
        rt.shutdown();
    }

    #[test]
    fn wait_idle_from_external_thread() {
        let rt = Runtime::builder().worker_threads(4).build();
        let n = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let n = n.clone();
            rt.spawn(move || {
                n.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.wait_idle();
        assert_eq!(rt.outstanding(), 0);
        assert_eq!(n.load(Ordering::Relaxed), 1000);
        rt.shutdown();
    }

    #[test]
    fn counters_track_spawn_and_execute() {
        let rt = Runtime::builder().worker_threads(2).build();
        for _ in 0..10 {
            rt.spawn(|| {});
        }
        rt.wait_idle();
        let snap = rt.counters().snapshot(&rt.inner.core.sched);
        assert!(snap.tasks_spawned >= 10);
        assert!(snap.tasks_executed >= 10);
        rt.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let rt = Runtime::builder().worker_threads(1).build();
        rt.shutdown();
        rt.shutdown();
    }

    #[test]
    fn current_worker_identity() {
        let rt = Runtime::builder().worker_threads(2).build();
        assert_eq!(rt.current_worker(), None, "external thread is not a worker");
        let rt2 = rt.clone();
        let f = rt.async_task(move || rt2.current_worker());
        let idx = f.get();
        assert!(idx.is_some());
        assert!(idx.unwrap() < 2);
        rt.shutdown();
    }

    #[test]
    fn spawn_after_fires_later() {
        let rt = Runtime::builder().worker_threads(2).build();
        let hit = Arc::new(AtomicUsize::new(0));
        let h2 = hit.clone();
        let t = crate::util::HighResolutionTimer::new();
        rt.spawn_after(Duration::from_millis(10), move || {
            h2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hit.load(Ordering::SeqCst), 0, "not yet");
        while hit.load(Ordering::SeqCst) == 0 && t.elapsed() < 2.0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(hit.load(Ordering::SeqCst), 1);
        assert!(t.elapsed() >= 0.009, "{}", t.elapsed());
        rt.shutdown();
    }

    #[test]
    fn sleep_future_completes_after_delay() {
        let rt = Runtime::builder().worker_threads(1).build();
        let t = crate::util::HighResolutionTimer::new();
        let f = rt.sleep(Duration::from_millis(8));
        assert!(!f.is_ready());
        f.get();
        assert!(t.elapsed() >= 0.007, "{}", t.elapsed());
        rt.shutdown();
    }

    #[test]
    fn sleep_composes_with_then() {
        let rt = Runtime::builder().worker_threads(2).build();
        let f = rt.sleep(Duration::from_millis(5)).then(|()| 99);
        assert_eq!(f.get(), 99);
        rt.shutdown();
    }

    #[test]
    fn pinned_tasks_run_on_their_worker() {
        let rt = Runtime::builder().worker_threads(3).build();
        for pin in 0..3 {
            let rt2 = rt.clone();
            let f = rt.async_task_with(Priority::Normal, ScheduleHint::Pinned(pin), move || {
                rt2.current_worker().unwrap()
            });
            assert_eq!(f.get(), pin);
        }
        rt.shutdown();
    }

    #[test]
    fn busy_workers_receive_no_wake_syscalls() {
        use std::sync::atomic::AtomicBool;
        // Occupy every worker with a spinning task, then spawn a burst of
        // work: with zero parked workers the sleeper count is zero, so no
        // push may issue a condvar notify (no syscall-level wake).
        let rt = Runtime::builder().worker_threads(2).build();
        let release = Arc::new(AtomicBool::new(false));
        let running = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            let release = release.clone();
            let running = running.clone();
            rt.spawn(move || {
                running.fetch_add(1, Ordering::SeqCst);
                while !release.load(Ordering::SeqCst) {
                    std::hint::spin_loop();
                }
            });
        }
        while running.load(Ordering::SeqCst) < 2 {
            std::thread::yield_now();
        }
        let wakes_before = rt.core().sched.stat_wakes.load(Ordering::SeqCst);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let hits = hits.clone();
            rt.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        let wakes_after = rt.core().sched.stat_wakes.load(Ordering::SeqCst);
        assert_eq!(
            wakes_after, wakes_before,
            "pushes while all workers are busy must not notify"
        );
        release.store(true, Ordering::SeqCst);
        rt.wait_idle();
        assert_eq!(hits.load(Ordering::SeqCst), 100);
        rt.shutdown();
    }
}
