//! Length-prefixed binary framing for [`Parcel`]s on the wire.
//!
//! HPX's TCP parcelport ships each parcel as a fixed header plus the
//! serialized payload; this is our equivalent. The header is versioned so
//! the format can evolve, and every field is little-endian:
//!
//! ```text
//! offset  size  field
//!      0     2  magic  b"PX"
//!      2     1  version (currently 2)
//!      3     1  flags   (bit 0: response token present)
//!      4     4  source locality          u32
//!      8     4  dest locality            u32
//!     12     4  dest GID origin          u32
//!     16     8  dest GID lid             u64
//!     24     4  action id                u32
//!     28     8  response token           u64 (0 when flags bit 0 clear)
//!     36     4  payload length           u32
//!     40     4  payload checksum         u32 (FNV-1a over the payload)
//!     44     …  payload bytes
//! ```
//!
//! Version 2 extended the v1 header with the payload checksum, so wire
//! corruption that leaves the framing intact is still rejected instead
//! of silently delivering damaged bytes.
//!
//! [`decode`] is *total*: any byte slice either yields a parcel, asks for
//! more bytes ([`DecodeError::Incomplete`]), or is rejected as
//! [`DecodeError::Malformed`] — it never panics, so a hostile or corrupt
//! stream cannot crash the reader loop.

use super::Parcel;
use crate::agas::Gid;
use bytes::Bytes;

/// First two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"PX";

/// Current frame format version (2: payload checksum added).
pub const VERSION: u8 = 2;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 44;

/// Upper bound on a single parcel's payload (64 MiB). A corrupt length
/// field must not make the reader allocate unboundedly.
pub const MAX_PAYLOAD: usize = 64 << 20;

const FLAG_HAS_TOKEN: u8 = 0b0000_0001;

/// FNV-1a 32-bit hash — the payload checksum. Not cryptographic; it
/// exists to catch accidental wire corruption, and being 4 lines of
/// code beats vendoring a CRC table.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    fnv1a32_with(0x811C_9DC5, bytes)
}

/// Continue an FNV-1a 32-bit hash from `state` — lets callers checksum
/// logically concatenated byte ranges without copying them together
/// (the reliable layer hashes its carrier header and the payload this
/// way).
pub fn fnv1a32_with(state: u32, bytes: &[u8]) -> u32 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Why a byte slice failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Not enough bytes yet; `need` is the total frame length once known
    /// (or [`HEADER_LEN`] while the header itself is short). Read more
    /// and retry.
    Incomplete {
        /// Total bytes the frame needs from the start of the slice.
        need: usize,
    },
    /// The bytes can never form a valid frame (bad magic, unknown
    /// version, reserved flags, oversized payload). The connection should
    /// be dropped.
    Malformed(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Incomplete { need } => write!(f, "incomplete frame: need {need} bytes"),
            DecodeError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Total encoded size of `parcel` (header + payload).
pub fn encoded_len(parcel: &Parcel) -> usize {
    HEADER_LEN + parcel.payload.len()
}

/// Append the wire encoding of `parcel` to `out`.
///
/// # Panics
/// Panics if the payload exceeds [`MAX_PAYLOAD`] — callers construct
/// payloads locally, so an oversized one is a programming error.
pub fn encode(parcel: &Parcel, out: &mut Vec<u8>) {
    assert!(
        parcel.payload.len() <= MAX_PAYLOAD,
        "parcel payload {} exceeds MAX_PAYLOAD",
        parcel.payload.len()
    );
    out.reserve(encoded_len(parcel));
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(if parcel.response_token.is_some() { FLAG_HAS_TOKEN } else { 0 });
    out.extend_from_slice(&parcel.source.to_le_bytes());
    out.extend_from_slice(&parcel.dest_locality.to_le_bytes());
    out.extend_from_slice(&parcel.dest.origin.to_le_bytes());
    out.extend_from_slice(&parcel.dest.lid.to_le_bytes());
    out.extend_from_slice(&parcel.action.to_le_bytes());
    out.extend_from_slice(&parcel.response_token.unwrap_or(0).to_le_bytes());
    out.extend_from_slice(&(parcel.payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a32(&parcel.payload).to_le_bytes());
    out.extend_from_slice(&parcel.payload);
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
}

fn read_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

/// Try to decode one frame from the front of `buf`.
///
/// On success returns the parcel and the number of bytes consumed, so a
/// reader loop can `drain(..consumed)` and try again on the remainder.
pub fn decode(buf: &[u8]) -> Result<(Parcel, usize), DecodeError> {
    if buf.len() < HEADER_LEN {
        // Validate what we can see so garbage fails fast instead of
        // stalling in "need more bytes" forever.
        if !buf.is_empty() && buf[0] != MAGIC[0] {
            return Err(DecodeError::Malformed(format!("bad magic byte {:#04x}", buf[0])));
        }
        if buf.len() >= 2 && buf[..2] != MAGIC {
            return Err(DecodeError::Malformed("bad magic".into()));
        }
        if buf.len() >= 3 && buf[2] != VERSION {
            return Err(DecodeError::Malformed(format!("unsupported version {}", buf[2])));
        }
        return Err(DecodeError::Incomplete { need: HEADER_LEN });
    }
    if buf[..2] != MAGIC {
        return Err(DecodeError::Malformed("bad magic".into()));
    }
    if buf[2] != VERSION {
        return Err(DecodeError::Malformed(format!("unsupported version {}", buf[2])));
    }
    let flags = buf[3];
    if flags & !FLAG_HAS_TOKEN != 0 {
        return Err(DecodeError::Malformed(format!("reserved flag bits set: {flags:#04x}")));
    }
    let payload_len = read_u32(buf, 36) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(DecodeError::Malformed(format!(
            "payload length {payload_len} exceeds cap {MAX_PAYLOAD}"
        )));
    }
    let total = HEADER_LEN + payload_len;
    if buf.len() < total {
        return Err(DecodeError::Incomplete { need: total });
    }
    let expected = read_u32(buf, 40);
    let actual = fnv1a32(&buf[HEADER_LEN..total]);
    if actual != expected {
        return Err(DecodeError::Malformed(format!(
            "payload checksum mismatch: header says {expected:#010x}, payload hashes to {actual:#010x}"
        )));
    }
    let token = read_u64(buf, 28);
    let has_token = flags & FLAG_HAS_TOKEN != 0;
    if !has_token && token != 0 {
        return Err(DecodeError::Malformed("token bytes set without token flag".into()));
    }
    let parcel = Parcel {
        source: read_u32(buf, 4),
        dest_locality: read_u32(buf, 8),
        dest: Gid { origin: read_u32(buf, 12), lid: read_u64(buf, 16) },
        action: read_u32(buf, 24),
        payload: Bytes::from(buf[HEADER_LEN..total].to_vec()),
        response_token: has_token.then_some(token),
    };
    Ok((parcel, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(token: Option<u64>, payload: &[u8]) -> Parcel {
        Parcel {
            source: 3,
            dest_locality: 7,
            dest: Gid { origin: 7, lid: 0xDEAD_BEEF },
            action: 0x4841,
            payload: Bytes::from(payload.to_vec()),
            response_token: token,
        }
    }

    fn assert_same(a: &Parcel, b: &Parcel) {
        assert_eq!(a.source, b.source);
        assert_eq!(a.dest_locality, b.dest_locality);
        assert_eq!(a.dest, b.dest);
        assert_eq!(a.action, b.action);
        assert_eq!(a.payload, b.payload);
        assert_eq!(a.response_token, b.response_token);
    }

    #[test]
    fn roundtrip_with_and_without_token() {
        for token in [None, Some(0u64), Some(u64::MAX)] {
            let p = sample(token, b"hello halo");
            let mut buf = Vec::new();
            encode(&p, &mut buf);
            assert_eq!(buf.len(), encoded_len(&p));
            let (back, used) = decode(&buf).unwrap();
            assert_eq!(used, buf.len());
            assert_same(&p, &back);
        }
    }

    #[test]
    fn empty_payload_roundtrips() {
        let p = sample(None, b"");
        let mut buf = Vec::new();
        encode(&p, &mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        let (back, used) = decode(&buf).unwrap();
        assert_eq!(used, HEADER_LEN);
        assert_same(&p, &back);
    }

    #[test]
    fn truncation_asks_for_more() {
        let p = sample(Some(5), b"0123456789");
        let mut buf = Vec::new();
        encode(&p, &mut buf);
        for cut in 0..buf.len() {
            match decode(&buf[..cut]) {
                Err(DecodeError::Incomplete { need }) => assert!(need > cut),
                other => panic!("cut {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn two_frames_back_to_back_decode_in_order() {
        let a = sample(None, b"first");
        let b = sample(Some(9), b"second");
        let mut buf = Vec::new();
        encode(&a, &mut buf);
        encode(&b, &mut buf);
        let (got_a, used_a) = decode(&buf).unwrap();
        assert_same(&a, &got_a);
        let (got_b, used_b) = decode(&buf[used_a..]).unwrap();
        assert_same(&b, &got_b);
        assert_eq!(used_a + used_b, buf.len());
    }

    #[test]
    fn bad_magic_is_malformed() {
        let mut buf = Vec::new();
        encode(&sample(None, b"x"), &mut buf);
        buf[0] = b'Q';
        assert!(matches!(decode(&buf), Err(DecodeError::Malformed(_))));
        // … even with only one byte visible
        assert!(matches!(decode(b"Q"), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn wrong_version_is_malformed() {
        let mut buf = Vec::new();
        encode(&sample(None, b"x"), &mut buf);
        buf[2] = 99;
        assert!(matches!(decode(&buf), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn reserved_flags_are_malformed() {
        let mut buf = Vec::new();
        encode(&sample(None, b"x"), &mut buf);
        buf[3] = 0b1000_0000;
        assert!(matches!(decode(&buf), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn oversized_payload_length_is_malformed_not_oom() {
        let mut buf = Vec::new();
        encode(&sample(None, b"x"), &mut buf);
        buf[36..40].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&buf), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn flipped_payload_bit_fails_the_checksum() {
        let mut buf = Vec::new();
        encode(&sample(Some(3), b"precious payload"), &mut buf);
        for (byte, bit) in [(HEADER_LEN, 0), (HEADER_LEN + 7, 5), (buf.len() - 1, 7)] {
            let mut bad = buf.clone();
            bad[byte] ^= 1 << bit;
            match decode(&bad) {
                Err(DecodeError::Malformed(m)) => assert!(m.contains("checksum"), "{m}"),
                other => panic!("corrupt byte {byte}: {other:?}"),
            }
        }
        decode(&buf).expect("pristine frame still decodes");
    }

    #[test]
    fn corrupted_checksum_field_is_malformed() {
        let mut buf = Vec::new();
        encode(&sample(None, b"x"), &mut buf);
        buf[40] ^= 0xFF;
        assert!(matches!(decode(&buf), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn fnv1a32_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a32(b""), 0x811C_9DC5);
        assert_eq!(fnv1a32(b"a"), 0xE40C_292C);
        assert_eq!(fnv1a32(b"foobar"), 0xBF9C_F968);
    }
}
