//! The TCP parcelport: real sockets, framing, and parcel coalescing.
//!
//! Modeled on HPX's TCP parcelport as deployed on commodity clusters
//! (the Raspberry Pi study that accompanies the paper's platform line):
//! each ordered pair of localities gets one TCP connection, owned by the
//! *sender*. A per-peer writer thread drains a bounded byte queue and
//! **coalesces** every frame queued within a small window into a single
//! `write` — on loopback and gigabit-class links the syscall/packet
//! overhead of many tiny active messages dominates, and batching them is
//! what makes AMT halo traffic viable. A flush happens when either
//!
//! * the queued bytes reach [`TcpConfig::coalesce_max_bytes`], or
//! * the oldest queued frame has waited [`TcpConfig::coalesce_max_delay`].
//!
//! Inbound, an accept thread performs a 4-byte hello handshake (the
//! connecting locality announces its id) and spawns a reader that
//! re-frames the byte stream via [`frame::decode`] and forwards each
//! parcel to the [`PortSink`]. EOF or an I/O error on a peer's stream
//! surfaces as [`PortEvent::PeerLost`], and all queued/future sends to
//! that peer fail with [`Error::PeerLost`] — callers never hang on a
//! dead node.

use super::frame;
use super::{Parcel, Parcelport, PortEvent, PortSink};
use crate::error::{Error, Result};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for [`TcpParcelport`].
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Flush the coalescing buffer once this many bytes are queued.
    pub coalesce_max_bytes: usize,
    /// Flush once the oldest queued frame has waited this long.
    pub coalesce_max_delay: Duration,
    /// Backpressure bound: [`Parcelport::send`] blocks while a peer's
    /// queue holds this many bytes.
    pub queue_capacity_bytes: usize,
    /// Connection attempts before giving up on a peer.
    pub connect_attempts: u32,
    /// Initial retry backoff (doubles per attempt, capped at 200 ms,
    /// jittered ±25% per sleep to avoid synchronized reconnect storms).
    pub connect_backoff: Duration,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            coalesce_max_bytes: 16 << 10,
            coalesce_max_delay: Duration::from_micros(200),
            queue_capacity_bytes: 4 << 20,
            connect_attempts: 20,
            connect_backoff: Duration::from_millis(1),
        }
    }
}

impl TcpConfig {
    /// A configuration with coalescing effectively disabled: every parcel
    /// is written as soon as the writer thread sees it (the baseline the
    /// coalescing benchmark compares against).
    pub fn uncoalesced() -> TcpConfig {
        TcpConfig {
            coalesce_max_bytes: 1,
            coalesce_max_delay: Duration::ZERO,
            ..TcpConfig::default()
        }
    }
}

#[derive(Default)]
struct Stats {
    parcels_sent: AtomicU64,
    parcels_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    writes: AtomicU64,
}

/// The sender-side queue for one peer.
struct PeerQueue {
    /// Encoded frames awaiting the writer thread.
    buf: Vec<u8>,
    /// Length of each queued frame, in order; the writer uses these to
    /// split a drained batch into write units.
    lens: Vec<usize>,
    /// Parcels those bytes represent.
    frames: usize,
    /// When the oldest queued frame arrived (the coalescing clock).
    first_at: Option<Instant>,
    closed: bool,
}

struct PeerShared {
    state: Mutex<PeerQueue>,
    /// Wakes the writer when frames arrive or the queue closes.
    ready: Condvar,
    /// Wakes blocked senders when the writer drains the queue.
    space: Condvar,
}

struct Peer {
    id: u32,
    shared: Arc<PeerShared>,
    writer: Mutex<Option<std::thread::JoinHandle<()>>>,
}

struct Inner {
    local_id: u32,
    cfg: TcpConfig,
    sink: PortSink,
    peers: RwLock<HashMap<u32, Arc<Peer>>>,
    shutdown: AtomicBool,
    /// Set once any connection dies; parcels toward that peer can never
    /// arrive, so exact sent-vs-received accounting is off the table.
    peer_lost: AtomicBool,
    stats: Stats,
}

impl Inner {
    /// Mark the outgoing queue to `peer` closed so senders fail fast.
    fn close_peer_queue(&self, peer: u32) {
        if let Some(p) = self.peers.read().get(&peer) {
            let mut q = p.shared.state.lock();
            q.closed = true;
            p.shared.ready.notify_all();
            p.shared.space.notify_all();
        }
    }

    fn emit(&self, ev: PortEvent) {
        if !self.shutdown.load(Ordering::Acquire) {
            (self.sink)(ev);
        }
    }

    fn mark_peer_lost(&self) {
        self.peer_lost.store(true, Ordering::Release);
    }
}

/// Accepted inbound streams and their reader threads, shared with the
/// accept loop so shutdown can sever and join them.
type ReaderRegistry = Arc<Mutex<Vec<(TcpStream, std::thread::JoinHandle<()>)>>>;

/// A [`Parcelport`] over TCP; see the module docs for the design.
pub struct TcpParcelport {
    inner: Arc<Inner>,
    listener_addr: SocketAddr,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
    readers: ReaderRegistry,
}

impl TcpParcelport {
    /// Bind a listener for `local_id` on `addr` (use port 0 for an
    /// OS-assigned port, then [`TcpParcelport::local_addr`]) and start
    /// the accept loop. Inbound parcels and peer losses go to `sink`.
    pub fn bind(
        local_id: u32,
        addr: SocketAddr,
        sink: PortSink,
        cfg: TcpConfig,
    ) -> std::io::Result<Arc<TcpParcelport>> {
        let listener = TcpListener::bind(addr)?;
        let listener_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            local_id,
            cfg,
            sink,
            peers: RwLock::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            peer_lost: AtomicBool::new(false),
            stats: Stats::default(),
        });
        let readers: ReaderRegistry = Arc::new(Mutex::new(Vec::new()));
        let port = Arc::new(TcpParcelport {
            inner: inner.clone(),
            listener_addr,
            accept: Mutex::new(None),
            readers: readers.clone(),
        });
        let accept = std::thread::Builder::new()
            .name(format!("px-tcp-accept{local_id}"))
            .spawn(move || accept_loop(listener, inner, readers))
            .expect("failed to spawn parcelport accept thread");
        *port.accept.lock() = Some(accept);
        Ok(port)
    }

    /// The address peers should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener_addr
    }

    /// This port's locality id.
    pub fn local_id(&self) -> u32 {
        self.inner.local_id
    }

    /// Establish the outgoing connection to `peer_id` at `addr`, with
    /// bounded retry/backoff (the peer's listener may not be up yet).
    /// Each sleep is jittered ±25% from a PRNG seeded by the
    /// (local, peer) pair, so peers that start retrying in lockstep —
    /// e.g. a whole rack reconnecting after a switch blip — desynchronize
    /// instead of thundering-herd on the same instant.
    pub fn connect_peer(&self, peer_id: u32, addr: SocketAddr) -> Result<()> {
        let cfg = &self.inner.cfg;
        let mut backoff = cfg.connect_backoff;
        let mut jitter = crate::resilience::SplitMix64::new(
            ((self.inner.local_id as u64) << 32) | peer_id as u64,
        );
        let mut last_err = String::new();
        let mut stream = None;
        for _ in 0..cfg.connect_attempts.max(1) {
            if self.inner.shutdown.load(Ordering::Acquire) {
                return Err(Error::RuntimeShutDown);
            }
            match TcpStream::connect(addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => {
                    last_err = e.to_string();
                    let scale = 0.75 + 0.5 * jitter.next_f64(); // ±25%
                    std::thread::sleep(backoff.mul_f64(scale));
                    backoff = (backoff * 2).min(Duration::from_millis(200));
                }
            }
        }
        let mut stream = stream.ok_or_else(|| {
            Error::Io(format!("connect to locality {peer_id} at {addr}: {last_err}"))
        })?;
        let _ = stream.set_nodelay(true);
        // Hello: announce who is on this end of the connection.
        stream
            .write_all(&self.inner.local_id.to_le_bytes())
            .map_err(|e| Error::Io(format!("hello to locality {peer_id}: {e}")))?;
        let shared = Arc::new(PeerShared {
            state: Mutex::new(PeerQueue {
                buf: Vec::new(),
                lens: Vec::new(),
                frames: 0,
                first_at: None,
                closed: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        let inner = self.inner.clone();
        let shared2 = shared.clone();
        let writer = std::thread::Builder::new()
            .name(format!("px-tcp-w{}-{}", self.inner.local_id, peer_id))
            .spawn(move || writer_loop(stream, peer_id, shared2, inner))
            .expect("failed to spawn parcelport writer thread");
        let peer = Arc::new(Peer { id: peer_id, shared, writer: Mutex::new(Some(writer)) });
        self.inner.peers.write().insert(peer_id, peer);
        Ok(())
    }

    /// Parcels handed to [`Parcelport::send`] so far.
    pub fn parcels_sent(&self) -> u64 {
        self.inner.stats.parcels_sent.load(Ordering::Relaxed)
    }

    /// Parcels decoded off the wire so far.
    pub fn parcels_received(&self) -> u64 {
        self.inner.stats.parcels_received.load(Ordering::Relaxed)
    }

    /// Whether any peer connection has ever died. Once true, cluster-wide
    /// `parcels_sent == parcels_received` can no longer be expected: frames
    /// queued toward the dead peer will never be decoded.
    pub fn any_peer_lost(&self) -> bool {
        self.inner.peer_lost.load(Ordering::Acquire)
    }

    /// Bytes read off the wire so far.
    pub fn bytes_received(&self) -> u64 {
        self.inner.stats.bytes_received.load(Ordering::Relaxed)
    }

    /// Sever the connection state for `peer` as if it died: close the
    /// outgoing queue (senders get [`Error::PeerLost`]) and shut the
    /// inbound streams down. Used by tests and fault injection.
    pub fn drop_peer(&self, peer: u32) {
        self.inner.mark_peer_lost();
        self.inner.close_peer_queue(peer);
    }
}

impl Parcelport for TcpParcelport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn send(&self, parcel: Parcel) -> Result<()> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(Error::RuntimeShutDown);
        }
        let dest = parcel.dest_locality;
        let peer = self
            .inner
            .peers
            .read()
            .get(&dest)
            .cloned()
            .ok_or(Error::UnknownLocality(dest))?;
        let cfg = &self.inner.cfg;
        let mut q = peer.shared.state.lock();
        // Backpressure: block while the peer's queue is full, failing if
        // the connection dies while we wait.
        while !q.closed && q.buf.len() >= cfg.queue_capacity_bytes {
            peer.shared.space.wait_for(&mut q, Duration::from_millis(50));
            if self.inner.shutdown.load(Ordering::Acquire) {
                return Err(Error::RuntimeShutDown);
            }
        }
        if q.closed {
            return Err(Error::PeerLost(peer.id));
        }
        if q.first_at.is_none() {
            q.first_at = Some(Instant::now());
        }
        let before = q.buf.len();
        frame::encode(&parcel, &mut q.buf);
        let len = q.buf.len() - before;
        q.lens.push(len);
        q.frames += 1;
        drop(q);
        peer.shared.ready.notify_one();
        self.inner.stats.parcels_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn pending(&self) -> usize {
        self.inner
            .peers
            .read()
            .values()
            .map(|p| p.shared.state.lock().frames)
            .sum()
    }

    fn bytes_sent(&self) -> u64 {
        self.inner.stats.bytes_sent.load(Ordering::Relaxed)
    }

    fn writes(&self) -> u64 {
        self.inner.stats.writes.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Close every outgoing queue and join the writers (they flush
        // what's already queued, then drop their streams).
        let peers: Vec<Arc<Peer>> = self.inner.peers.read().values().cloned().collect();
        for peer in &peers {
            let mut q = peer.shared.state.lock();
            q.closed = true;
            drop(q);
            peer.shared.ready.notify_all();
            peer.shared.space.notify_all();
        }
        for peer in &peers {
            if let Some(t) = peer.writer.lock().take() {
                let _ = t.join();
            }
        }
        // Unblock the accept loop with a throwaway connection, then join.
        let _ = TcpStream::connect(self.listener_addr);
        if let Some(t) = self.accept.lock().take() {
            let _ = t.join();
        }
        // Force blocked readers out of `read` and join them.
        let readers = std::mem::take(&mut *self.readers.lock());
        for (stream, thread) in readers {
            let _ = stream.shutdown(Shutdown::Both);
            let _ = thread.join();
        }
    }
}

impl Drop for TcpParcelport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    inner: Arc<Inner>,
    readers: ReaderRegistry,
) {
    for conn in listener.incoming() {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(mut stream) = conn else { continue };
        // Hello handshake: the 4-byte id of the connecting locality.
        let mut hello = [0u8; 4];
        if stream.read_exact(&mut hello).is_err() {
            continue;
        }
        let peer_id = u32::from_le_bytes(hello);
        let _ = stream.set_nodelay(true);
        let Ok(registered) = stream.try_clone() else { continue };
        let inner2 = inner.clone();
        let reader = std::thread::Builder::new()
            .name(format!("px-tcp-r{}-{}", inner.local_id, peer_id))
            .spawn(move || reader_loop(stream, peer_id, inner2))
            .expect("failed to spawn parcelport reader thread");
        readers.lock().push((registered, reader));
    }
}

fn reader_loop(mut stream: TcpStream, peer_id: u32, inner: Arc<Inner>) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 << 10];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        inner.stats.bytes_received.fetch_add(n as u64, Ordering::Relaxed);
        buf.extend_from_slice(&chunk[..n]);
        loop {
            match frame::decode(&buf) {
                Ok((parcel, used)) => {
                    buf.drain(..used);
                    // Emit before counting: once `parcels_received` matches
                    // the sender's `parcels_sent`, every parcel is
                    // guaranteed to have reached the sink (the cluster's
                    // idle check relies on this ordering).
                    inner.emit(PortEvent::Deliver(parcel));
                    inner.stats.parcels_received.fetch_add(1, Ordering::Relaxed);
                }
                Err(frame::DecodeError::Incomplete { .. }) => break,
                Err(frame::DecodeError::Malformed(m)) => {
                    eprintln!(
                        "parallex: dropping corrupt connection from locality {peer_id}: {m}"
                    );
                    let _ = stream.shutdown(Shutdown::Both);
                    inner.close_peer_queue(peer_id);
                    inner.mark_peer_lost();
                    inner.emit(PortEvent::PeerLost(peer_id));
                    return;
                }
            }
        }
    }
    // EOF or I/O error: the peer is gone. Fail our sends toward it and
    // tell the owner so pending responses resolve instead of hanging.
    inner.close_peer_queue(peer_id);
    inner.mark_peer_lost();
    inner.emit(PortEvent::PeerLost(peer_id));
}

fn writer_loop(mut stream: TcpStream, peer_id: u32, shared: Arc<PeerShared>, inner: Arc<Inner>) {
    loop {
        let (batch, lens) = {
            let mut q = shared.state.lock();
            loop {
                if q.buf.is_empty() {
                    if q.closed {
                        return;
                    }
                    shared.ready.wait_for(&mut q, Duration::from_millis(50));
                    continue;
                }
                // Coalescing window: hold small frames until the size or
                // time threshold trips (or the queue is closing).
                let deadline = q.first_at.expect("non-empty queue has a first_at")
                    + inner.cfg.coalesce_max_delay;
                if q.closed
                    || q.buf.len() >= inner.cfg.coalesce_max_bytes
                    || Instant::now() >= deadline
                {
                    break;
                }
                shared.ready.wait_until(&mut q, deadline);
            }
            let batch = std::mem::take(&mut q.buf);
            let lens = std::mem::take(&mut q.lens);
            q.frames = 0;
            q.first_at = None;
            shared.space.notify_all();
            (batch, lens)
        };
        // Split the drained batch into write units: whole frames packed
        // greedily up to `coalesce_max_bytes` per physical write (always
        // at least one frame per unit, so oversized frames still go out).
        let mut units: Vec<usize> = Vec::new();
        let mut unit = 0usize;
        for len in &lens {
            if unit > 0 && unit + len > inner.cfg.coalesce_max_bytes {
                units.push(unit);
                unit = 0;
            }
            unit += len;
        }
        if unit > 0 {
            units.push(unit);
        }
        let mut start = 0usize;
        for unit_len in units {
            if stream.write_all(&batch[start..start + unit_len]).is_err() {
                inner.close_peer_queue(peer_id);
                inner.mark_peer_lost();
                inner.emit(PortEvent::PeerLost(peer_id));
                return;
            }
            inner.stats.writes.fetch_add(1, Ordering::Relaxed);
            inner.stats.bytes_sent.fetch_add(unit_len as u64, Ordering::Relaxed);
            start += unit_len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agas::Gid;
    use bytes::Bytes;
    use std::sync::mpsc;

    fn parcel(dest: u32, payload: &[u8]) -> Parcel {
        Parcel {
            source: 0,
            dest_locality: dest,
            dest: Gid { origin: dest, lid: 1 },
            action: 7,
            payload: Bytes::from(payload.to_vec()),
            response_token: None,
        }
    }

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    /// Two ports wired A→B; returns (A, B, receiver of B's events).
    fn pair(cfg: TcpConfig) -> (Arc<TcpParcelport>, Arc<TcpParcelport>, mpsc::Receiver<PortEvent>) {
        let (tx, rx) = mpsc::channel();
        let sink_b: PortSink = Arc::new(move |ev| {
            let _ = tx.send(ev);
        });
        let sink_a: PortSink = Arc::new(|_| {});
        let a = TcpParcelport::bind(0, loopback(), sink_a, cfg.clone()).unwrap();
        let b = TcpParcelport::bind(1, loopback(), sink_b, cfg).unwrap();
        a.connect_peer(1, b.local_addr()).unwrap();
        (a, b, rx)
    }

    fn recv_parcels(rx: &mpsc::Receiver<PortEvent>, n: usize) -> Vec<Parcel> {
        let mut got = Vec::new();
        while got.len() < n {
            match rx.recv_timeout(Duration::from_secs(5)).expect("parcel arrives") {
                PortEvent::Deliver(p) => got.push(p),
                PortEvent::PeerLost(l) => panic!("unexpected peer loss of {l}"),
            }
        }
        got
    }

    #[test]
    fn parcels_cross_a_real_socket_in_order() {
        let (a, b, rx) = pair(TcpConfig::default());
        for i in 0..20u8 {
            a.send(parcel(1, &[i; 32])).unwrap();
        }
        let got = recv_parcels(&rx, 20);
        for (i, p) in got.iter().enumerate() {
            assert_eq!(p.payload[0], i as u8, "in-order delivery");
            assert_eq!(p.action, 7);
        }
        assert_eq!(a.parcels_sent(), 20);
        assert_eq!(b.parcels_received(), 20);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn coalescing_flushes_on_size_threshold() {
        // Timer threshold far away: only the size threshold can flush.
        let cfg = TcpConfig {
            coalesce_max_bytes: 4 * (frame::HEADER_LEN + 8),
            coalesce_max_delay: Duration::from_secs(10),
            ..TcpConfig::default()
        };
        let (a, b, rx) = pair(cfg);
        for i in 0..16u8 {
            a.send(parcel(1, &[i; 8])).unwrap();
        }
        recv_parcels(&rx, 16);
        let writes = a.writes();
        assert!(writes >= 1, "at least one flush");
        assert!(writes < 16, "coalescing must batch frames, got {writes} writes for 16 parcels");
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn coalescing_flushes_on_timer_threshold() {
        // Size threshold unreachable: only the timer can flush.
        let cfg = TcpConfig {
            coalesce_max_bytes: 1 << 20,
            coalesce_max_delay: Duration::from_millis(30),
            ..TcpConfig::default()
        };
        let (a, b, rx) = pair(cfg);
        let t0 = Instant::now();
        for i in 0..3u8 {
            a.send(parcel(1, &[i; 8])).unwrap();
        }
        recv_parcels(&rx, 3);
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "frames should have been held for the coalescing window"
        );
        assert_eq!(a.writes(), 1, "one batch for all frames queued in the window");
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn sends_to_unknown_peer_are_typed_errors() {
        let (a, b, _rx) = pair(TcpConfig::default());
        assert!(matches!(a.send(parcel(9, b"x")), Err(Error::UnknownLocality(9))));
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn peer_death_surfaces_as_peer_lost() {
        let (a, b, _rx) = pair(TcpConfig::default());
        // B also connects back to A so A has an inbound stream from B
        // whose EOF announces B's death.
        b.connect_peer(0, a.local_addr()).unwrap();
        a.send(parcel(1, b"before")).unwrap();
        b.shutdown();
        // Eventually the writer or a fresh send observes the dead peer.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match a.send(parcel(1, b"after")) {
                Err(Error::PeerLost(1)) => break,
                Ok(_) | Err(_) => {
                    assert!(Instant::now() < deadline, "send never failed with PeerLost");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        a.shutdown();
    }
}
