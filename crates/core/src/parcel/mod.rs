//! The parcel subsystem: active messages.
//!
//! A [`Parcel`] carries an action id, a destination GID and a serialized
//! payload; delivering it *spawns a task at the data* (the "message-driven
//! computation" pillar of ParalleX, Fig. 1's Parcelport box). Within one
//! process, localities exchange parcels through shared memory; an optional
//! [`DelayFn`] injects per-parcel network latency so the distributed
//! experiments of the paper's Fig. 3 run against a modeled interconnect
//! (see `parallex-netsim`).

pub mod frame;
pub mod serialize;
pub mod tcp;

use crate::agas::Gid;
use crate::error::{Error, Result};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies a registered action (HPX action registration).
pub type ActionId = u32;

/// Reserved action id used internally to deliver responses to
/// [`crate::locality::Locality::async_action_raw`] calls.
pub const RESPONSE_ACTION: ActionId = 0;

/// An active message.
#[derive(Clone, Debug)]
pub struct Parcel {
    /// Locality the parcel was sent from.
    pub source: u32,
    /// Locality the parcel is addressed to (resolved from the GID at send
    /// time).
    pub dest_locality: u32,
    /// Object the action applies to.
    pub dest: Gid,
    /// Which action to run.
    pub action: ActionId,
    /// Serialized argument.
    pub payload: Bytes,
    /// If set, the handler's return bytes are sent back as a
    /// [`RESPONSE_ACTION`] parcel carrying this token.
    pub response_token: Option<u64>,
}

impl Parcel {
    /// Wire size estimate (header + payload), used by the network model.
    pub fn wire_bytes(&self) -> usize {
        // source + dest_locality + gid + action + token
        4 + 4 + 16 + 4 + 9 + self.payload.len()
    }
}

/// Handler type: runs *at the destination locality* with the target GID
/// and payload; returns response bytes.
pub type ActionFn =
    Arc<dyn Fn(&Arc<crate::locality::Locality>, Gid, &[u8]) -> Result<Vec<u8>> + Send + Sync>;

/// Cluster-wide action table (HPX registers actions at static-init time;
/// we register at cluster construction).
#[derive(Default)]
pub struct ActionRegistry {
    actions: RwLock<HashMap<ActionId, (ActionFn, &'static str)>>,
}

impl ActionRegistry {
    /// Empty registry.
    pub fn new() -> ActionRegistry {
        ActionRegistry::default()
    }

    /// Register `f` under `id`.
    ///
    /// # Panics
    /// Panics on id 0 (reserved) or duplicate registration, both of which
    /// are programming errors.
    pub fn register(
        &self,
        id: ActionId,
        name: &'static str,
        f: impl Fn(&Arc<crate::locality::Locality>, Gid, &[u8]) -> Result<Vec<u8>>
            + Send
            + Sync
            + 'static,
    ) {
        assert_ne!(id, RESPONSE_ACTION, "action id 0 is reserved for responses");
        let prev = self.actions.write().insert(id, (Arc::new(f), name));
        assert!(prev.is_none(), "action id {id} registered twice");
    }

    /// Look up an action.
    pub fn get(&self, id: ActionId) -> Result<ActionFn> {
        self.actions
            .read()
            .get(&id)
            .map(|(f, _)| f.clone())
            .ok_or(Error::UnknownAction(id))
    }

    /// Human-readable name for diagnostics.
    pub fn name(&self, id: ActionId) -> Option<&'static str> {
        self.actions.read().get(&id).map(|(_, n)| *n)
    }

    /// Number of registered actions.
    pub fn len(&self) -> usize {
        self.actions.read().len()
    }

    /// Whether no actions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Computes the simulated network delay for a parcel (`None` ⇒ deliver
/// immediately, same-process shared memory).
pub type DelayFn = Arc<dyn Fn(&Parcel) -> Duration + Send + Sync>;

/// What a parcelport hands to its owner: inbound parcels and peer-loss
/// notifications.
#[derive(Debug)]
pub enum PortEvent {
    /// A parcel arrived and should enter the delivery path.
    Deliver(Parcel),
    /// The connection to this peer locality is gone; outstanding requests
    /// to it will never be answered.
    PeerLost(u32),
}

/// Sink invoked by a parcelport for every [`PortEvent`]; must be cheap
/// and non-blocking (ports call it from reader threads).
pub type PortSink = Arc<dyn Fn(PortEvent) + Send + Sync>;

/// A transport that moves parcels between localities — Fig. 1's
/// "Parcelport" box. Two implementations exist: the zero-copy in-process
/// handoff ([`InProcessParcelport`]) used by a single-process
/// [`crate::locality::Cluster`], and the real socket transport
/// ([`tcp::TcpParcelport`]) with framing and coalescing.
pub trait Parcelport: Send + Sync {
    /// Transport name for diagnostics ("inproc", "tcp").
    fn name(&self) -> &'static str;

    /// Queue `parcel` for delivery to `parcel.dest_locality`. May block
    /// briefly for backpressure; fails with
    /// [`Error::PeerLost`](crate::error::Error::PeerLost) once the peer
    /// is unreachable.
    fn send(&self, parcel: Parcel) -> Result<()>;

    /// Parcels accepted by [`Parcelport::send`] but not yet handed to the
    /// wire (or the sink) — `Cluster::wait_idle` polls this.
    fn pending(&self) -> usize;

    /// Total payload+header bytes put on the wire so far.
    fn bytes_sent(&self) -> u64;

    /// Number of physical writes issued — with coalescing this is
    /// (often much) smaller than the number of parcels sent.
    fn writes(&self) -> u64;

    /// Stop accepting sends and release transport resources.
    fn shutdown(&self);
}

/// The in-process parcelport: hands every parcel straight to the sink on
/// the caller's thread — the shared-memory "transport" a single-process
/// cluster uses.
pub struct InProcessParcelport {
    sink: PortSink,
    parcels: std::sync::atomic::AtomicU64,
    bytes: std::sync::atomic::AtomicU64,
}

impl InProcessParcelport {
    /// Wrap `sink` as a parcelport.
    pub fn new(sink: PortSink) -> InProcessParcelport {
        InProcessParcelport {
            sink,
            parcels: std::sync::atomic::AtomicU64::new(0),
            bytes: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl Parcelport for InProcessParcelport {
    fn name(&self) -> &'static str {
        "inproc"
    }

    fn send(&self, parcel: Parcel) -> Result<()> {
        use std::sync::atomic::Ordering;
        self.parcels.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(parcel.wire_bytes() as u64, Ordering::Relaxed);
        (self.sink)(PortEvent::Deliver(parcel));
        Ok(())
    }

    fn pending(&self) -> usize {
        0 // delivery is synchronous
    }

    fn bytes_sent(&self) -> u64 {
        self.bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn writes(&self) -> u64 {
        // One "write" per parcel: nothing coalesces in shared memory.
        self.parcels.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn shutdown(&self) {}
}

type Deferred = Box<dyn FnOnce() + Send + 'static>;

/// Handle to a deferred item scheduled on a [`TimerWheel`].
#[derive(Debug)]
pub struct TimerToken(u64);

struct TimerState {
    queue: BinaryHeap<Reverse<(Instant, u64)>>,
    items: HashMap<u64, Deferred>,
    /// Items popped from `items` but still running on the timer thread.
    /// Counted by `pending()` so an idle check can't observe zero while a
    /// delayed parcel is mid-delivery (popped, delivery task not yet
    /// spawned).
    executing: usize,
    next_seq: u64,
    shutdown: bool,
}

/// A timer thread delivering deferred closures at their due time — the
/// "wire" that delays parcels by the modeled network latency.
pub struct TimerWheel {
    state: Arc<(Mutex<TimerState>, Condvar)>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TimerWheel {
    /// Start the timer thread.
    pub fn new() -> TimerWheel {
        let state = Arc::new((
            Mutex::new(TimerState {
                queue: BinaryHeap::new(),
                items: HashMap::new(),
                executing: 0,
                next_seq: 0,
                shutdown: false,
            }),
            Condvar::new(),
        ));
        let state2 = state.clone();
        let thread = std::thread::Builder::new()
            .name("parallex-timer".into())
            .spawn(move || Self::run(state2))
            .expect("failed to spawn timer thread");
        TimerWheel { state, thread: Some(thread) }
    }

    fn run(state: Arc<(Mutex<TimerState>, Condvar)>) {
        let (lock, cond) = &*state;
        loop {
            let mut due: Vec<Deferred> = Vec::new();
            {
                let mut st = lock.lock();
                loop {
                    if st.shutdown && st.queue.is_empty() {
                        if due.is_empty() {
                            return;
                        }
                        // Flush already-collected items before exiting.
                        break;
                    }
                    let now = Instant::now();
                    match st.queue.peek() {
                        // Due — or cancelled, in which case pop it now so
                        // shutdown never waits out a dead deadline.
                        Some(Reverse((t, seq))) if *t <= now || !st.items.contains_key(seq) => {
                            let Reverse((_, seq)) = st.queue.pop().unwrap();
                            if let Some(item) = st.items.remove(&seq) {
                                due.push(item);
                            }
                        }
                        Some(Reverse((t, _))) => {
                            let t = *t;
                            if !due.is_empty() {
                                break;
                            }
                            cond.wait_until(&mut st, t);
                        }
                        None => {
                            if !due.is_empty() {
                                break;
                            }
                            cond.wait_for(&mut st, Duration::from_millis(50));
                        }
                    }
                }
                st.executing += due.len();
            }
            let ran = due.len();
            for item in due {
                item();
            }
            lock.lock().executing -= ran;
        }
    }

    /// Run `f` after `delay`.
    pub fn schedule(&self, delay: Duration, f: impl FnOnce() + Send + 'static) {
        let _ = self.schedule_cancelable(delay, f);
    }

    /// Run `f` after `delay`, returning a token that [`TimerWheel::cancel`]
    /// accepts (used for response timeouts, which are cancelled when the
    /// response arrives so `pending` drains promptly).
    pub fn schedule_cancelable(
        &self,
        delay: Duration,
        f: impl FnOnce() + Send + 'static,
    ) -> TimerToken {
        let (lock, cond) = &*self.state;
        let seq = {
            let mut st = lock.lock();
            let seq = st.next_seq;
            st.next_seq += 1;
            st.queue.push(Reverse((Instant::now() + delay, seq)));
            st.items.insert(seq, Box::new(f));
            seq
        };
        cond.notify_one();
        TimerToken(seq)
    }

    /// Drop a scheduled item before it fires. Returns whether it was
    /// still pending (false ⇒ it already ran or was cancelled).
    pub fn cancel(&self, token: &TimerToken) -> bool {
        let hit = self.state.0.lock().items.remove(&token.0).is_some();
        // Wake the wheel so it is not left sleeping toward a dead deadline.
        self.state.1.notify_one();
        hit
    }

    /// Pending deferred items, including any currently executing on the
    /// timer thread (a delayed parcel is "pending" until its delivery
    /// task has been handed to the destination runtime).
    pub fn pending(&self) -> usize {
        let st = self.state.0.lock();
        st.items.len() + st.executing
    }
}

impl Default for TimerWheel {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl Drop for TimerWheel {
    fn drop(&mut self) {
        {
            let mut st = self.state.0.lock();
            st.shutdown = true;
        }
        self.state.1.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn timer_runs_in_order() {
        let tw = TimerWheel::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (tag, ms) in [(2, 20u64), (1, 5)] {
            let log = log.clone();
            tw.schedule(Duration::from_millis(ms), move || log.lock().push(tag));
        }
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(*log.lock(), vec![1, 2]);
    }

    #[test]
    fn timer_zero_delay_runs_soon() {
        let tw = TimerWheel::new();
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let hits = hits.clone();
            tw.schedule(Duration::ZERO, move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        let deadline = Instant::now() + Duration::from_secs(1);
        while hits.load(Ordering::Relaxed) < 10 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn timer_drop_waits_for_pending() {
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let tw = TimerWheel::new();
            let hits = hits.clone();
            tw.schedule(Duration::from_millis(5), move || {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        } // drop joins after the queue drains
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn registry_rejects_reserved_and_duplicate_ids() {
        let reg = ActionRegistry::new();
        reg.register(1, "ping", |_, _, _| Ok(vec![]));
        assert_eq!(reg.name(1), Some("ping"));
        assert_eq!(reg.len(), 1);
        let reg_ref = std::panic::AssertUnwindSafe(&reg);
        assert!(std::panic::catch_unwind(|| {
            reg_ref.register(RESPONSE_ACTION, "bad", |_, _, _| Ok(vec![]))
        })
        .is_err());
        let reg_ref = std::panic::AssertUnwindSafe(&reg);
        assert!(
            std::panic::catch_unwind(|| reg_ref.register(1, "dup", |_, _, _| Ok(vec![]))).is_err()
        );
    }

    #[test]
    fn registry_unknown_action() {
        let reg = ActionRegistry::new();
        assert!(matches!(reg.get(42), Err(Error::UnknownAction(42))));
    }

    #[test]
    fn parcel_wire_bytes_counts_payload() {
        let p = Parcel {
            source: 0,
            dest_locality: 1,
            dest: Gid { origin: 0, lid: 1 },
            action: 1,
            payload: Bytes::from(vec![0u8; 100]),
            response_token: None,
        };
        assert!(p.wire_bytes() > 100);
        assert!(p.wire_bytes() < 200);
    }
}
