//! Compact binary serialization for parcel payloads.
//!
//! HPX ships its own serialization archive for parcel contents; this is
//! ours: a non-self-describing little-endian binary format driven by the
//! serde data model (bincode-style). Fixed-width integers and floats are
//! stored raw; sequences, maps, strings and bytes carry a `u64` length
//! prefix; enum variants carry a `u32` variant index; options carry a
//! one-byte tag. `deserialize_any` is unsupported by construction (the
//! reader must know the static type, exactly like HPX archives).

use crate::error::Error;
use serde::de::{DeserializeOwned, IntoDeserializer};
use serde::{de, ser, Serialize};
use std::fmt::Display;

/// Serialize a value to bytes.
pub fn to_bytes<T: Serialize>(value: &T) -> crate::error::Result<Vec<u8>> {
    let mut ser = BinSerializer { out: Vec::new() };
    value
        .serialize(&mut ser)
        .map_err(|e| Error::Serialization(e.to_string()))?;
    Ok(ser.out)
}

/// Deserialize a value from bytes produced by [`to_bytes`].
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> crate::error::Result<T> {
    let mut de = BinDeserializer { input: bytes };
    let v = T::deserialize(&mut de).map_err(|e| Error::Serialization(e.to_string()))?;
    if !de.input.is_empty() {
        return Err(Error::Serialization(format!(
            "{} trailing bytes after value",
            de.input.len()
        )));
    }
    Ok(v)
}

/// Serde error wrapper for this format.
#[derive(Debug)]
pub struct CodecError(String);

impl Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

struct BinSerializer {
    out: Vec<u8>,
}

impl BinSerializer {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

macro_rules! ser_fixed {
    ($name:ident, $t:ty) => {
        fn $name(self, v: $t) -> Result<(), CodecError> {
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl ser::Serializer for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }

    ser_fixed!(serialize_i8, i8);
    ser_fixed!(serialize_i16, i16);
    ser_fixed!(serialize_i32, i32);
    ser_fixed!(serialize_i64, i64);
    ser_fixed!(serialize_u8, u8);
    ser_fixed!(serialize_u16, u16);
    ser_fixed!(serialize_u32, u32);
    ser_fixed!(serialize_u64, u64);
    ser_fixed!(serialize_f32, f32);
    ser_fixed!(serialize_f64, f64);

    fn serialize_i128(self, v: i128) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_u128(self, v: u128) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| ser::Error::custom("sequences must have a known length"))?;
        self.put_len(len);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| ser::Error::custom("maps must have a known length"))?;
        self.put_len(len);
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

macro_rules! impl_seq_like {
    ($trait:path, $method:ident) => {
        impl<'a> $trait for &'a mut BinSerializer {
            type Ok = ();
            type Error = CodecError;

            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }

            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

impl_seq_like!(ser::SerializeSeq, serialize_element);
impl_seq_like!(ser::SerializeTuple, serialize_element);
impl_seq_like!(ser::SerializeTupleStruct, serialize_field);
impl_seq_like!(ser::SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

struct BinDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> BinDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(de::Error::custom(format!(
                "unexpected end of input: need {n}, have {}",
                self.input.len()
            )));
        }
        let (head, rest) = self.input.split_at(n);
        self.input = rest;
        Ok(head)
    }

    fn get_len(&mut self) -> Result<usize, CodecError> {
        let b = self.take(8)?;
        let v = u64::from_le_bytes(b.try_into().unwrap());
        usize::try_from(v).map_err(|_| de::Error::custom("length overflows usize"))
    }
}

macro_rules! de_fixed {
    ($name:ident, $visit:ident, $t:ty, $n:expr) => {
        fn $name<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let b = self.take($n)?;
            visitor.$visit(<$t>::from_le_bytes(b.try_into().unwrap()))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut BinDeserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: de::Visitor<'de>>(self, _v: V) -> Result<V::Value, CodecError> {
        Err(de::Error::custom("format is not self-describing"))
    }

    fn deserialize_bool<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(1)?;
        visitor.visit_bool(b[0] != 0)
    }

    de_fixed!(deserialize_i8, visit_i8, i8, 1);
    de_fixed!(deserialize_i16, visit_i16, i16, 2);
    de_fixed!(deserialize_i32, visit_i32, i32, 4);
    de_fixed!(deserialize_i64, visit_i64, i64, 8);
    de_fixed!(deserialize_u8, visit_u8, u8, 1);
    de_fixed!(deserialize_u16, visit_u16, u16, 2);
    de_fixed!(deserialize_u32, visit_u32, u32, 4);
    de_fixed!(deserialize_u64, visit_u64, u64, 8);
    de_fixed!(deserialize_f32, visit_f32, f32, 4);
    de_fixed!(deserialize_f64, visit_f64, f64, 8);
    de_fixed!(deserialize_i128, visit_i128, i128, 16);
    de_fixed!(deserialize_u128, visit_u128, u128, 16);

    fn deserialize_char<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(4)?;
        let v = u32::from_le_bytes(b.try_into().unwrap());
        visitor.visit_char(char::from_u32(v).ok_or_else(|| de::Error::custom("invalid char"))?)
    }

    fn deserialize_str<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        let b = self.take(len)?;
        visitor.visit_borrowed_str(
            std::str::from_utf8(b).map_err(|e| de::Error::custom(e.to_string()))?,
        )
    }

    fn deserialize_string<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let tag = self.take(1)?[0];
        match tag {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            t => Err(de::Error::custom(format!("invalid option tag {t}"))),
        }
    }

    fn deserialize_unit<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_tuple<V: de::Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted { de: self, remaining: len })
    }

    fn deserialize_tuple_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_map(Counted { de: self, remaining: len })
    }

    fn deserialize_struct<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: de::Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { de: self })
    }

    fn deserialize_identifier<V: de::Visitor<'de>>(self, _v: V) -> Result<V::Value, CodecError> {
        Err(de::Error::custom("identifiers are not stored in this format"))
    }

    fn deserialize_ignored_any<V: de::Visitor<'de>>(self, _v: V) -> Result<V::Value, CodecError> {
        Err(de::Error::custom("cannot skip values in a non-self-describing format"))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    remaining: usize,
}

impl<'de, 'a> de::SeqAccess<'de> for Counted<'a, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'de, 'a> de::MapAccess<'de> for Counted<'a, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }
}

struct EnumAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'de, 'a> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    type Variant = VariantAccess<'a, 'de>;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), CodecError> {
        let idx = {
            let b = self.de.take(4)?;
            u32::from_le_bytes(b.try_into().unwrap())
        };
        let val = seed.deserialize(idx.into_deserializer())?;
        Ok((val, VariantAccess { de: self.de }))
    }
}

struct VariantAccess<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'de, 'a> de::VariantAccess<'de> for VariantAccess<'a, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: de::Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: de::Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(42u8);
        roundtrip(-7i16);
        roundtrip(123456u32);
        roundtrip(-987654321i64);
        roundtrip(u128::MAX);
        roundtrip(3.5f32);
        roundtrip(std::f64::consts::PI);
        roundtrip('λ');
        roundtrip("hello world".to_string());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(Some(5i32));
        roundtrip(Option::<i32>::None);
        roundtrip((1u8, "two".to_string(), 3.0f64));
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        roundtrip(m);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Halo {
        step: u64,
        cells: Vec<f64>,
        from_left: bool,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Msg {
        Ping,
        Halo(Halo),
        Pair { a: u32, b: u32 },
    }

    #[test]
    fn structs_and_enums_roundtrip() {
        roundtrip(Halo { step: 3, cells: vec![0.5, 1.5], from_left: true });
        roundtrip(Msg::Ping);
        roundtrip(Msg::Halo(Halo { step: 9, cells: vec![], from_left: false }));
        roundtrip(Msg::Pair { a: 1, b: 2 });
    }

    #[test]
    fn floats_are_bit_exact() {
        let vals = vec![0.0f64, -0.0, f64::MIN_POSITIVE, f64::MAX, 1.0 / 3.0];
        let bytes = to_bytes(&vals).unwrap();
        let back: Vec<f64> = from_bytes(&bytes).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = to_bytes(&1u32).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = to_bytes(&vec![1u64, 2, 3]).unwrap();
        assert!(from_bytes::<Vec<u64>>(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn large_vec_roundtrip() {
        let v: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.25).collect();
        roundtrip(v);
    }

    #[test]
    fn wire_size_is_compact() {
        // 8-byte length prefix + n*8 payload for Vec<f64>.
        let v = vec![1.0f64; 100];
        assert_eq!(to_bytes(&v).unwrap().len(), 8 + 800);
    }
}
