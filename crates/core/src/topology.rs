//! Emulated hardware topology (the hwloc analogue).
//!
//! The paper pins one HPX worker per physical core with `hwloc-bind` and
//! allocates stencil blocks with a NUMA-aware first-touch allocator so a
//! worker always runs where its data lives (Section VII-A). This module
//! provides the logical equivalent: a map from workers to NUMA domains and
//! block-distribution helpers that the [`crate::executors::BlockExecutor`]
//! and the first-touch initialization use.

use std::ops::Range;

/// A worker → NUMA-domain map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    workers: usize,
    /// `domain_of[w]` = NUMA domain of worker `w`.
    domain_of: Vec<usize>,
    domains: usize,
}

impl Topology {
    /// Spread `workers` evenly over `domains` NUMA domains, first workers
    /// in domain 0 (matching sequential physical pinning).
    ///
    /// # Panics
    /// Panics if `domains == 0` or `domains > workers`.
    pub fn uniform(workers: usize, domains: usize) -> Topology {
        assert!(domains > 0 && domains <= workers, "bad topology: {workers} workers, {domains} domains");
        let base = workers / domains;
        let extra = workers % domains;
        let mut domain_of = Vec::with_capacity(workers);
        for d in 0..domains {
            let count = base + usize::from(d < extra);
            domain_of.extend(std::iter::repeat_n(d, count));
        }
        Topology { workers, domain_of, domains }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of NUMA domains.
    pub fn domains(&self) -> usize {
        self.domains
    }

    /// NUMA domain of a worker.
    pub fn domain_of(&self, worker: usize) -> usize {
        self.domain_of[worker]
    }

    /// Workers in a given domain.
    pub fn workers_in(&self, domain: usize) -> Vec<usize> {
        (0..self.workers).filter(|&w| self.domain_of[w] == domain).collect()
    }

    /// Split `0..items` into one contiguous block per worker (OpenMP
    /// `schedule(static)` / HPX block-allocator distribution). Blocks
    /// differ in size by at most one item.
    pub fn block_ranges(&self, items: usize) -> Vec<Range<usize>> {
        block_ranges(items, self.workers)
    }
}

/// Split `0..items` into `parts` contiguous ranges differing in length by
/// at most one (empty ranges at the tail if `parts > items`).
pub fn block_ranges(items: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0);
    let base = items / parts;
    let extra = items % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spreads_evenly() {
        let t = Topology::uniform(8, 2);
        assert_eq!(t.domain_of(0), 0);
        assert_eq!(t.domain_of(3), 0);
        assert_eq!(t.domain_of(4), 1);
        assert_eq!(t.workers_in(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn uniform_handles_remainders() {
        let t = Topology::uniform(5, 2);
        assert_eq!(t.workers_in(0).len(), 3);
        assert_eq!(t.workers_in(1).len(), 2);
    }

    #[test]
    #[should_panic]
    fn more_domains_than_workers_panics() {
        let _ = Topology::uniform(2, 3);
    }

    #[test]
    fn block_ranges_cover_everything_once() {
        let ranges = block_ranges(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn block_ranges_with_more_parts_than_items() {
        let ranges = block_ranges(2, 4);
        assert_eq!(ranges.iter().filter(|r| !r.is_empty()).count(), 2);
        assert_eq!(ranges.len(), 4);
    }

    #[test]
    fn block_ranges_sizes_differ_by_at_most_one() {
        for items in [0, 1, 7, 100, 1001] {
            for parts in [1, 2, 3, 8, 13] {
                let ranges = block_ranges(items, parts);
                let min = ranges.iter().map(|r| r.len()).min().unwrap();
                let max = ranges.iter().map(|r| r.len()).max().unwrap();
                assert!(max - min <= 1, "items={items} parts={parts}");
            }
        }
    }

    #[test]
    fn topology_block_ranges_match_worker_count() {
        let t = Topology::uniform(4, 2);
        assert_eq!(t.block_ranges(100).len(), 4);
    }
}
