//! Error types for the runtime.

use std::fmt;

/// Errors surfaced by runtime, AGAS and parcel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The runtime has been shut down and cannot accept work.
    RuntimeShutDown,
    /// A global identifier did not resolve to a live object.
    UnknownGid(u128),
    /// The destination locality does not exist.
    UnknownLocality(u32),
    /// No action registered under this id.
    UnknownAction(u32),
    /// A component could not be downcast to the requested type.
    ComponentTypeMismatch,
    /// A migration failed (e.g. the component type was never registered
    /// with a deserializer).
    MigrationFailed(String),
    /// Payload (de)serialization failed.
    Serialization(String),
    /// A promise was dropped without ever producing a value.
    BrokenPromise,
    /// The channel was closed while a receive was pending.
    ChannelClosed,
    /// A caller violated an API precondition.
    InvalidArgument(String),
    /// A task panicked; the payload's message if it was a string.
    TaskPanicked(String),
    /// A remote action failed; carries the remote error text.
    RemoteError(String),
    /// The connection to this locality was lost; outstanding requests to
    /// it will never be answered.
    PeerLost(u32),
    /// A remote call's response did not arrive within the configured
    /// response timeout.
    ResponseTimeout,
    /// A transport-level I/O failure (connect, handshake, socket setup).
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RuntimeShutDown => write!(f, "runtime has been shut down"),
            Error::UnknownGid(g) => write!(f, "unknown global id {g:#x}"),
            Error::UnknownLocality(l) => write!(f, "unknown locality {l}"),
            Error::UnknownAction(a) => write!(f, "unknown action id {a}"),
            Error::ComponentTypeMismatch => write!(f, "component type mismatch"),
            Error::MigrationFailed(m) => write!(f, "migration failed: {m}"),
            Error::Serialization(m) => write!(f, "serialization error: {m}"),
            Error::BrokenPromise => write!(f, "broken promise"),
            Error::ChannelClosed => write!(f, "channel closed"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::TaskPanicked(m) => write!(f, "task panicked: {m}"),
            Error::RemoteError(m) => write!(f, "remote action failed: {m}"),
            Error::PeerLost(l) => write!(f, "connection to locality {l} lost"),
            Error::ResponseTimeout => write!(f, "remote call response timed out"),
            Error::Io(m) => write!(f, "transport I/O error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;
