//! Parallel algorithms (HPX `hpx::parallel`): the API the paper's kernels
//! are written against (Listings 1 and 2 are `hpx::parallel::for_each`
//! over a chunked index range).
//!
//! An [`ExecutionPolicy`] selects sequential or parallel execution, the
//! chunker (auto, fixed chunk size, fixed chunk count) and the executor
//! (work-stealing [`crate::executors::ParallelExecutor`] or the NUMA-pinned
//! [`crate::executors::BlockExecutor`]). All parallel entry points join
//! their chunk tasks on a latch before returning, so they may borrow the
//! caller's data; a panic in any chunk is re-raised at the call site after
//! all chunks finish.

use crate::executors::{BlockExecutor, Executor, ParallelExecutor};
use crate::lcos::latch::Latch;
use crate::runtime::Runtime;
use crate::task::Task;
use crate::util::SendMutPtr;
use parking_lot::Mutex;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How an index range is split into chunk tasks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ChunkPolicy {
    /// 4 chunks per worker — enough slack for stealing to balance load
    /// without drowning in task overhead (HPX `auto_chunk_size` spirit).
    #[default]
    Auto,
    /// Fixed elements per chunk (HPX `static_chunk_size(n)`).
    ChunkSize(usize),
    /// Fixed number of chunks.
    NumChunks(usize),
    /// Exactly one chunk per worker (OpenMP `schedule(static)`; what the
    /// paper's NUMA-aware runs use together with the block executor).
    PerWorker,
    /// Geometrically decreasing chunks (OpenMP `schedule(guided)` / HPX
    /// `guided_chunk_size`): each chunk takes `remaining / (2 * workers)`
    /// items (at least one), giving big cache-friendly chunks early and
    /// small load-balancing chunks at the tail.
    Guided,
}

enum Mode {
    Seq,
    Par { rt: Runtime, chunk: ChunkPolicy, block: bool },
}

/// A sequential or parallel execution policy.
pub struct ExecutionPolicy {
    mode: Mode,
}

/// Parallel policy over `rt`'s workers (HPX `hpx::execution::par`).
///
/// ```
/// use parallex::prelude::*;
///
/// let rt = Runtime::builder().worker_threads(4).build();
/// let sum = par(&rt).reduce(0..1000, 0u64, |i| i as u64, |a, b| a + b);
/// assert_eq!(sum, 499_500);
/// rt.shutdown();
/// ```
pub fn par(rt: &Runtime) -> ExecutionPolicy {
    ExecutionPolicy {
        mode: Mode::Par { rt: rt.clone(), chunk: ChunkPolicy::Auto, block: false },
    }
}

/// Sequential policy (HPX `hpx::execution::seq`).
pub fn seq() -> ExecutionPolicy {
    ExecutionPolicy { mode: Mode::Seq }
}

impl ExecutionPolicy {
    /// Use a fixed chunk size.
    pub fn with_chunk_size(mut self, size: usize) -> Self {
        assert!(size > 0);
        if let Mode::Par { chunk, .. } = &mut self.mode {
            *chunk = ChunkPolicy::ChunkSize(size);
        }
        self
    }

    /// Use a fixed chunk count.
    pub fn with_chunks(mut self, n: usize) -> Self {
        assert!(n > 0);
        if let Mode::Par { chunk, .. } = &mut self.mode {
            *chunk = ChunkPolicy::NumChunks(n);
        }
        self
    }

    /// One chunk per worker.
    pub fn per_worker(mut self) -> Self {
        if let Mode::Par { chunk, .. } = &mut self.mode {
            *chunk = ChunkPolicy::PerWorker;
        }
        self
    }

    /// Geometrically decreasing chunks (guided scheduling).
    pub fn guided(mut self) -> Self {
        if let Mode::Par { chunk, .. } = &mut self.mode {
            *chunk = ChunkPolicy::Guided;
        }
        self
    }

    /// Pin chunk `i` to the worker owning block `i` (NUMA block executor).
    /// Implies deterministic placement; combine with `per_worker()` for the
    /// paper's one-block-per-core layout.
    pub fn block(mut self) -> Self {
        if let Mode::Par { block, .. } = &mut self.mode {
            *block = true;
        }
        self
    }

    /// The exact range partition this policy produces for `items`
    /// elements (what [`ExecutionPolicy::run_chunked`] will execute).
    #[allow(clippy::single_range_in_vec_init)] // Seq genuinely yields one range
    pub fn ranges_for(&self, items: usize) -> Vec<Range<usize>> {
        if items == 0 {
            return Vec::new();
        }
        match &self.mode {
            Mode::Seq => vec![0..items],
            Mode::Par { rt, chunk, .. } => {
                let w = rt.workers();
                let chunks = match *chunk {
                    ChunkPolicy::Auto => 4 * w,
                    ChunkPolicy::ChunkSize(s) => items.div_ceil(s),
                    ChunkPolicy::NumChunks(n) => n,
                    ChunkPolicy::PerWorker => w,
                    ChunkPolicy::Guided => {
                        return guided_ranges(items, w);
                    }
                };
                crate::topology::block_ranges(items, chunks.clamp(1, items))
            }
        }
    }

    /// Number of chunks this policy will create for `items` elements.
    pub fn chunk_count(&self, items: usize) -> usize {
        self.ranges_for(items).len().max(1)
    }

    /// The core primitive: run `body(range, chunk_index)` over a partition
    /// of `0..items`, in parallel under parallel policies. Returns after
    /// every chunk completed. Panics in chunks are re-raised here.
    pub fn run_chunked<F>(&self, items: usize, body: F)
    where
        F: Fn(Range<usize>, usize) + Sync,
    {
        if items == 0 {
            return;
        }
        match &self.mode {
            Mode::Seq => body(0..items, 0),
            Mode::Par { rt, block, .. } => {
                let ranges = self.ranges_for(items);
                let chunks = ranges.len();
                if chunks == 1 {
                    body(0..items, 0);
                    return;
                }
                let latch = Latch::for_runtime(rt, chunks);
                let panicked = Arc::new(AtomicBool::new(false));
                let body_ref = &body;
                for (i, range) in ranges.into_iter().enumerate() {
                    let latch2 = latch.clone();
                    let panicked2 = panicked.clone();
                    let closure: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            body_ref(range, i)
                        }));
                        if res.is_err() {
                            panicked2.store(true, Ordering::Release);
                        }
                        latch2.count_down(1);
                    });
                    // SAFETY: the closure borrows `body`, which outlives all
                    // chunk tasks because run_chunked waits on the latch
                    // before returning, and every chunk counts down exactly
                    // once (even on panic, via catch_unwind above). The
                    // lifetime erasure is therefore sound.
                    let closure: Box<dyn FnOnce() + Send + 'static> =
                        unsafe { std::mem::transmute(closure) };
                    let task = Task::new(closure);
                    if *block {
                        BlockExecutor::new(rt).execute(task, i, chunks);
                    } else {
                        ParallelExecutor::new(rt).execute(task, i, chunks);
                    }
                }
                latch.wait();
                if panicked.load(Ordering::Acquire) {
                    panic!("a chunk task panicked during a parallel algorithm");
                }
            }
        }
    }

    /// Apply `f` to every index in `range` (Listing 1's `for_each` shape).
    pub fn for_each_index<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let offset = range.start;
        let items = range.end.saturating_sub(range.start);
        self.run_chunked(items, |r, _| {
            for i in r {
                f(offset + i);
            }
        });
    }

    /// Apply `f(index, &item)` to every slice element.
    pub fn for_each<T, F>(&self, data: &[T], f: F)
    where
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        self.run_chunked(data.len(), |r, _| {
            for i in r {
                f(i, &data[i]);
            }
        });
    }

    /// Apply `f(index, &mut item)` to every slice element. Chunks receive
    /// disjoint sub-slices, so mutation is race-free.
    pub fn for_each_mut<T, F>(&self, data: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let base: SendMutPtr<T> = SendMutPtr::new(data.as_mut_ptr());
        let len = data.len();
        self.run_chunked(len, move |r, _| {
            // SAFETY: chunk ranges are disjoint and within bounds; the
            // borrow of `data` outlives the call (latch join).
            for i in r {
                let item = unsafe { &mut *base.get().add(i) };
                f(i, item);
            }
        });
    }

    /// `out[i] = f(&input[i])`.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn transform<T, U, F>(&self, input: &[T], out: &mut [U], f: F)
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        assert_eq!(input.len(), out.len(), "transform length mismatch");
        let base: SendMutPtr<U> = SendMutPtr::new(out.as_mut_ptr());
        self.run_chunked(input.len(), move |r, _| {
            for i in r {
                // SAFETY: disjoint in-bounds writes, joined before return.
                unsafe { *base.get().add(i) = f(&input[i]) };
            }
        });
    }

    /// Fill a slice with clones of `v`.
    pub fn fill<T>(&self, data: &mut [T], v: T)
    where
        T: Clone + Send + Sync,
    {
        self.for_each_mut(data, |_, x| *x = v.clone());
    }

    /// Map each index through `map` and fold with the associative `op`
    /// starting from `identity` (HPX `transform_reduce` over an index
    /// range).
    pub fn reduce<T, M, O>(&self, range: Range<usize>, identity: T, map: M, op: O) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync,
        O: Fn(T, T) -> T + Sync + Send,
    {
        let offset = range.start;
        let items = range.end.saturating_sub(range.start);
        if items == 0 {
            return identity;
        }
        let chunks = self.chunk_count(items);
        let partials: Mutex<Vec<Option<T>>> = Mutex::new(vec![None; chunks]);
        // NOTE: run_chunked uses the identical partition (ranges_for), so
        // chunk indices line up with `partials` slots.
        self.run_chunked(items, |r, ci| {
            let mut acc = identity.clone();
            for i in r {
                acc = op(acc, map(offset + i));
            }
            partials.lock()[ci] = Some(acc);
        });
        partials
            .into_inner()
            .into_iter()
            .flatten()
            .fold(identity, op)
    }

    /// Element-wise transform of two slices folded with `combine`
    /// (HPX `transform_reduce` binary form): `fold(init, combine,
    /// f(a[i], b[i]))`. The classic instance is the dot product.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn transform_reduce<A, B, T, F, O>(
        &self,
        a: &[A],
        b: &[B],
        init: T,
        combine: O,
        f: F,
    ) -> T
    where
        A: Sync,
        B: Sync,
        T: Send + Sync + Clone,
        F: Fn(&A, &B) -> T + Sync,
        O: Fn(T, T) -> T + Sync + Send,
    {
        assert_eq!(a.len(), b.len(), "transform_reduce length mismatch");
        self.reduce(0..a.len(), init, |i| f(&a[i], &b[i]), combine)
    }

    /// Dot product of two numeric slices.
    pub fn dot<T>(&self, a: &[T], b: &[T]) -> T
    where
        T: Send
            + Sync
            + Clone
            + Default
            + std::ops::Add<Output = T>
            + std::ops::Mul<Output = T>,
    {
        self.transform_reduce(a, b, T::default(), |x, y| x + y, |x, y| x.clone() * y.clone())
    }

    /// Count indices satisfying `pred`.
    pub fn count_if<P>(&self, range: Range<usize>, pred: P) -> usize
    where
        P: Fn(usize) -> bool + Sync,
    {
        self.reduce(range, 0usize, |i| usize::from(pred(i)), |a, b| a + b)
    }

    /// Inclusive prefix scan of `input` under associative `op`
    /// (three-phase: chunk sums, prefix of sums, local rescan).
    #[allow(clippy::needless_range_loop)] // index drives both input and output
    pub fn inclusive_scan<T, O>(&self, input: &[T], op: O) -> Vec<T>
    where
        T: Send + Sync + Clone,
        O: Fn(&T, &T) -> T + Sync,
    {
        let n = input.len();
        if n == 0 {
            return Vec::new();
        }
        let ranges = self.ranges_for(n);
        let chunks = ranges.len();
        // Phase 1: per-chunk totals.
        let totals: Mutex<Vec<Option<T>>> = Mutex::new(vec![None; chunks]);
        self.run_chunked(n, |r, ci| {
            if r.is_empty() {
                return;
            }
            let mut acc = input[r.start].clone();
            for i in r.start + 1..r.end {
                acc = op(&acc, &input[i]);
            }
            totals.lock()[ci] = Some(acc);
        });
        // Phase 2: exclusive prefix of chunk totals (sequential, cheap).
        let totals = totals.into_inner();
        let mut carry: Vec<Option<T>> = Vec::with_capacity(chunks);
        let mut acc: Option<T> = None;
        for t in totals {
            carry.push(acc.clone());
            if let Some(t) = t {
                acc = Some(match acc {
                    Some(a) => op(&a, &t),
                    None => t,
                });
            }
        }
        // Phase 3: rescan each chunk with its carry-in. Seed the output
        // with clones of the input so the buffer is always initialized
        // (keeps drops sound even if a chunk panics mid-write).
        let mut out: Vec<T> = input.to_vec();
        let out_base: SendMutPtr<T> = SendMutPtr::new(out.as_mut_ptr());
        let carry = &carry;
        let ranges2 = ranges;
        let op2 = &op;
        self.run_chunked(n, move |r, _| {
            // Identify the chunk this range corresponds to (ranges are the
            // same block partition).
            let ci = ranges2.iter().position(|c| *c == r).expect("same partition");
            let mut acc: Option<T> = carry[ci].clone();
            for i in r {
                let v = match &acc {
                    Some(a) => op2(a, &input[i]),
                    None => input[i].clone(),
                };
                // SAFETY: disjoint in-bounds writes, joined before return.
                unsafe { *out_base.get().add(i) = v.clone() };
                acc = Some(v);
            }
        });
        out
    }

    /// Index of the minimum element (first on ties); `None` on empty.
    pub fn min_element_index<T: PartialOrd + Sync>(&self, data: &[T]) -> Option<usize> {
        if data.is_empty() {
            return None;
        }
        Some(self.reduce(
            0..data.len(),
            0usize,
            |i| i,
            |a, b| if data[b] < data[a] { b } else { a },
        ))
    }

    /// Index of the maximum element (first on ties); `None` on empty.
    pub fn max_element_index<T: PartialOrd + Sync>(&self, data: &[T]) -> Option<usize> {
        if data.is_empty() {
            return None;
        }
        Some(self.reduce(
            0..data.len(),
            0usize,
            |i| i,
            |a, b| if data[b] > data[a] { b } else { a },
        ))
    }
}

/// Guided partition: chunk `k` takes `max(remaining / (2 * workers), 1)`
/// items.
fn guided_ranges(items: usize, workers: usize) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < items {
        let remaining = items - start;
        let len = (remaining / (2 * workers)).max(1);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn rt() -> Runtime {
        Runtime::builder().worker_threads(4).build()
    }

    #[test]
    fn seq_for_each_index_visits_all() {
        let hits = AtomicUsize::new(0);
        seq().for_each_index(5..15, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn par_for_each_index_visits_each_exactly_once() {
        let rt = rt();
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        par(&rt).for_each_index(0..1000, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        rt.shutdown();
    }

    #[test]
    fn for_each_mut_writes_disjointly() {
        let rt = rt();
        let mut data = vec![0usize; 10_000];
        par(&rt).for_each_mut(&mut data, |i, x| *x = i * 2);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i * 2));
        rt.shutdown();
    }

    #[test]
    fn empty_range_is_a_noop() {
        let rt = rt();
        par(&rt).for_each_index(0..0, |_| panic!("must not run"));
        let out: Vec<i32> = par(&rt).inclusive_scan(&[], |a: &i32, b: &i32| a + b);
        assert!(out.is_empty());
        rt.shutdown();
    }

    #[test]
    fn reduce_sums_correctly() {
        let rt = rt();
        let s = par(&rt).reduce(0..1001, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(s, 500_500);
        rt.shutdown();
    }

    #[test]
    fn reduce_matches_seq_for_various_chunkings() {
        let rt = rt();
        for policy in [
            par(&rt),
            par(&rt).with_chunk_size(7),
            par(&rt).with_chunks(3),
            par(&rt).per_worker(),
            par(&rt).block(),
            seq(),
        ] {
            let s = policy.reduce(0..777, 0u64, |i| (i * i) as u64, |a, b| a + b);
            let expect: u64 = (0..777u64).map(|i| i * i).sum();
            assert_eq!(s, expect);
        }
        rt.shutdown();
    }

    #[test]
    fn count_if_counts() {
        let rt = rt();
        let evens = par(&rt).count_if(0..100, |i| i % 2 == 0);
        assert_eq!(evens, 50);
        rt.shutdown();
    }

    #[test]
    fn transform_maps_slice() {
        let rt = rt();
        let input: Vec<i32> = (0..512).collect();
        let mut out = vec![0i64; 512];
        par(&rt).transform(&input, &mut out, |&x| (x as i64) * 3);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as i64 * 3));
        rt.shutdown();
    }

    #[test]
    fn fill_sets_every_element() {
        let rt = rt();
        let mut v = vec![0u8; 999];
        par(&rt).fill(&mut v, 7);
        assert!(v.iter().all(|&x| x == 7));
        rt.shutdown();
    }

    #[test]
    fn inclusive_scan_matches_sequential() {
        let rt = rt();
        let input: Vec<u64> = (1..=100).collect();
        let out = par(&rt).with_chunks(7).inclusive_scan(&input, |a, b| a + b);
        let mut expect = Vec::new();
        let mut acc = 0;
        for v in &input {
            acc += v;
            expect.push(acc);
        }
        assert_eq!(out, expect);
        rt.shutdown();
    }

    #[test]
    fn transform_reduce_computes_dot_product() {
        let rt = rt();
        let a: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..500).map(|i| 2.0 * i as f64).collect();
        let dot = par(&rt).dot(&a, &b);
        let want: f64 = (0..500).map(|i| (i * i * 2) as f64).sum();
        assert_eq!(dot, want);
        assert_eq!(seq().dot(&a, &b), want);
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn transform_reduce_rejects_mismatched_lengths() {
        let rt = rt();
        let _ = par(&rt).transform_reduce(&[1, 2], &[1], 0, |a, b| a + b, |x: &i32, y: &i32| x + y);
        rt.shutdown();
    }

    #[test]
    fn max_element_index_finds_max() {
        let rt = rt();
        let data = vec![3, 1, 4, 1, 5, 9, 2, 6];
        assert_eq!(par(&rt).max_element_index(&data), Some(5));
        assert_eq!(par(&rt).max_element_index::<i32>(&[]), None);
        rt.shutdown();
    }

    #[test]
    fn min_element_index_finds_first_min() {
        let rt = rt();
        let data = vec![3, 1, 4, 1, 5];
        assert_eq!(par(&rt).min_element_index(&data), Some(1), "first of the ties");
        assert_eq!(seq().min_element_index(&data), Some(1));
        assert_eq!(par(&rt).min_element_index::<i32>(&[]), None);
        rt.shutdown();
    }

    #[test]
    fn guided_ranges_decrease_and_partition() {
        let rt = Runtime::builder().worker_threads(2).build();
        let ranges = par(&rt).guided().ranges_for(1000);
        // Partition property.
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, 1000);
        // Non-increasing chunk lengths, first chunk = 1000 / (2*2).
        assert_eq!(ranges[0].len(), 250);
        assert!(ranges.windows(2).all(|w| w[0].len() >= w[1].len()));
        assert_eq!(ranges.last().unwrap().len(), 1);
        rt.shutdown();
    }

    #[test]
    fn guided_policy_computes_correctly() {
        let rt = Runtime::builder().worker_threads(3).build();
        let mut data = vec![0usize; 5000];
        par(&rt).guided().for_each_mut(&mut data, |i, x| *x = i + 1);
        assert!(data.iter().enumerate().all(|(i, &v)| v == i + 1));
        let sum = par(&rt).guided().reduce(0..5000, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(sum, 4999 * 5000 / 2);
        rt.shutdown();
    }

    #[test]
    fn chunk_count_respects_policies() {
        let rt = Runtime::builder().worker_threads(2).build();
        assert_eq!(par(&rt).chunk_count(1000), 8); // 4 per worker
        assert_eq!(par(&rt).with_chunk_size(100).chunk_count(1000), 10);
        assert_eq!(par(&rt).with_chunks(3).chunk_count(1000), 3);
        assert_eq!(par(&rt).per_worker().chunk_count(1000), 2);
        assert_eq!(par(&rt).chunk_count(2), 2, "never more chunks than items");
        assert_eq!(seq().chunk_count(1000), 1);
        rt.shutdown();
    }

    #[test]
    fn panic_in_chunk_propagates_after_join() {
        let rt = rt();
        let completed = Arc::new(AtomicUsize::new(0));
        let completed2 = completed.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par(&rt).with_chunks(8).for_each_index(0..8, |i| {
                if i == 3 {
                    panic!("chunk 3 fails");
                }
                completed2.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(completed.load(Ordering::Relaxed), 7, "other chunks still ran");
        rt.shutdown();
    }

    #[test]
    fn nested_parallel_for_each() {
        let rt = rt();
        let total = Arc::new(AtomicUsize::new(0));
        let rt2 = rt.clone();
        let total2 = total.clone();
        par(&rt).with_chunks(4).for_each_index(0..4, move |_| {
            let total3 = total2.clone();
            par(&rt2).for_each_index(0..100, move |_| {
                total3.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 400);
        rt.shutdown();
    }

    #[test]
    fn block_policy_runs_chunks_on_block_owners() {
        let rt = Runtime::builder().worker_threads(4).build();
        let owners = Arc::new(Mutex::new(vec![usize::MAX; 4]));
        let owners2 = owners.clone();
        let rt2 = rt.clone();
        par(&rt).per_worker().block().run_chunked(4, move |r, ci| {
            assert_eq!(r.len(), 1);
            owners2.lock()[ci] = rt2.current_worker().unwrap();
        });
        assert_eq!(*owners.lock(), vec![0, 1, 2, 3]);
        rt.shutdown();
    }
}
