//! Distributed 2D Jacobi — an *extension* beyond the paper.
//!
//! The paper runs its 2D stencil shared-memory only (Section V-B) and its
//! distributed experiments in 1D; combining the two — a row-block
//! distributed 2D Jacobi with halo-row parcels and compute/communication
//! overlap — is the natural next step its conclusion points toward, and
//! exercises every subsystem at once: AGAS components, parcels carrying
//! `Vec<f64>` payloads, halo mailboxes, per-locality parallel `for_each`,
//! and the same latency-hiding structure as the 1D solver:
//!
//! 1. send this block's top and bottom interior rows (step `t`),
//! 2. compute the block's interior rows (independent of halo rows),
//! 3. await the neighbour rows, finish the two edge rows, swap.

use crate::grid::ScalarGrid;
use crate::halo::HaloMailbox;
use crate::jacobi2d::jacobi_step_scalar_edges;
use parallex::agas::Gid;
use parallex::algorithms::par;
use parallex::lcos::future::{when_all, Future};
use parallex::locality::{Cluster, Locality};
use parallex::parcel::{serialize, ActionId};
use std::sync::Arc;

/// Action id of the halo-row push message.
pub const ROW_PUSH: ActionId = 0x4A32; // "J2"

/// Mailbox tag: the incoming row is the receiver's *top* halo.
pub const TAG_TOP: u8 = 0;
/// Mailbox tag: the incoming row is the receiver's *bottom* halo.
pub const TAG_BOTTOM: u8 = 1;

/// Parameters of a distributed 2D Jacobi run.
#[derive(Clone, Copy, Debug)]
pub struct Jacobi2dDistParams {
    /// Global grid width.
    pub nx: usize,
    /// Global grid height (row-block partitioned over localities).
    pub ny: usize,
    /// Time steps.
    pub steps: usize,
    /// Dirichlet boundary value around the global grid.
    pub boundary: f64,
}

impl Jacobi2dDistParams {
    /// Sanity-checked constructor.
    ///
    /// # Panics
    /// Panics on an empty grid.
    pub fn new(nx: usize, ny: usize, steps: usize) -> Self {
        assert!(nx > 0 && ny > 0, "empty grid");
        Jacobi2dDistParams { nx, ny, steps, boundary: 0.0 }
    }
}

/// Install the halo-row action on a cluster (once, before solvers).
pub fn install(cluster: &Cluster) {
    cluster.register_action(ROW_PUSH, "jacobi2d::row_push", |loc, gid, payload| {
        let (tag, step, row): (u8, u64, Vec<f64>) = serialize::from_bytes(payload)?;
        let mailbox = loc.components().get::<HaloMailbox<Vec<f64>>>(gid)?;
        mailbox.put(tag, step, row);
        Ok(Vec::new())
    });
}

/// The distributed solver: owns per-locality row mailboxes.
pub struct Jacobi2dDist {
    cluster: Cluster,
    params: Jacobi2dDistParams,
    mailbox_gids: Vec<Gid>,
}

impl Jacobi2dDist {
    /// Create solver state on a cluster where [`install`] was called.
    pub fn new(cluster: &Cluster, params: Jacobi2dDistParams) -> Jacobi2dDist {
        let mailbox_gids = (0..cluster.len())
            .map(|i| cluster.new_component(i, HaloMailbox::<Vec<f64>>::new()))
            .collect();
        Jacobi2dDist { cluster: cluster.clone(), params, mailbox_gids }
    }

    /// Row range of locality `i`.
    pub fn row_range(&self, i: usize) -> std::ops::Range<usize> {
        parallex::topology::block_ranges(self.params.ny, self.cluster.len())[i].clone()
    }

    /// Aggregate `(already_arrived, had_to_wait)` halo statistics.
    pub fn halo_stats(&self) -> (usize, usize) {
        self.mailbox_gids
            .iter()
            .map(|&gid| {
                self.cluster
                    .get_component::<HaloMailbox<Vec<f64>>>(gid)
                    .map(|m| m.take_stats())
                    .unwrap_or((0, 0))
            })
            .fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
    }

    /// Run to completion; returns the global grid row-major (`ny * nx`).
    pub fn run(&self, init: impl Fn(usize, usize) -> f64 + Send + Sync + 'static) -> Vec<f64> {
        let init = Arc::new(init);
        let n_loc = self.cluster.len();
        let drivers: Vec<Future<Vec<f64>>> = (0..n_loc)
            .map(|i| {
                let loc = self.cluster.locality(i);
                let params = self.params;
                let rows = self.row_range(i);
                let init = init.clone();
                let my_gid = self.mailbox_gids[i];
                let up_gid = (i > 0).then(|| self.mailbox_gids[i - 1]);
                let down_gid = (i + 1 < n_loc).then(|| self.mailbox_gids[i + 1]);
                let loc2 = loc.clone();
                loc.runtime().async_task(move || {
                    drive_block(&loc2, params, rows, &*init, my_gid, up_gid, down_gid)
                })
            })
            .collect();
        when_all(drivers).get().into_iter().flatten().collect()
    }
}

fn drive_block(
    loc: &Arc<Locality>,
    params: Jacobi2dDistParams,
    rows: std::ops::Range<usize>,
    init: &(dyn Fn(usize, usize) -> f64 + Send + Sync),
    my_gid: Gid,
    up_gid: Option<Gid>,
    down_gid: Option<Gid>,
) -> Vec<f64> {
    let block_ny = rows.len();
    if block_ny == 0 {
        return Vec::new();
    }
    let nx = params.nx;
    let mailbox = loc
        .components()
        .get::<HaloMailbox<Vec<f64>>>(my_gid)
        .expect("mailbox exists");
    let rt = loc.runtime().clone();
    let y0 = rows.start;
    let mut cur = ScalarGrid::from_fn(nx, block_ny, |x, y| init(x, y0 + y));
    cur.set_boundary(params.boundary);
    let mut next = ScalarGrid::zeros(nx, block_ny);
    next.set_boundary(params.boundary);
    let boundary_row = vec![params.boundary; nx];

    for t in 0..params.steps as u64 {
        // (1) Ship edge rows; they travel while the interior computes.
        // A transient transport error (reconnecting peer) retries with
        // backoff rather than killing the whole solve.
        if let Some(up) = up_gid {
            parallex::resilience::retry(3, std::time::Duration::from_millis(2), || {
                loc.apply(up, ROW_PUSH, &(TAG_BOTTOM, t, cur.interior_row(0)))
            })
            .expect("row parcel to upper neighbour");
        }
        if let Some(down) = down_gid {
            parallex::resilience::retry(3, std::time::Duration::from_millis(2), || {
                loc.apply(down, ROW_PUSH, &(TAG_TOP, t, cur.interior_row(block_ny - 1)))
            })
            .expect("row parcel to lower neighbour");
        }
        // (2) Interior rows (1..block_ny-1): independent of halo rows.
        jacobi_step_scalar_edges(&cur, &mut next, &par(&rt), false);
        // (3) Resolve halo rows, finish the edge rows.
        let top = match up_gid {
            Some(_) => mailbox.take(loc, TAG_TOP, t).get(),
            None => boundary_row.clone(),
        };
        let bottom = match down_gid {
            Some(_) => mailbox.take(loc, TAG_BOTTOM, t).get(),
            None => boundary_row.clone(),
        };
        cur.set_top_halo_row(&top);
        cur.set_bottom_halo_row(&bottom);
        jacobi_step_scalar_edges(&cur, &mut next, &par(&rt), true);
        std::mem::swap(&mut cur, &mut next);
    }
    cur.interior()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi2d::Jacobi2d;
    use parallex::algorithms::seq;

    fn run_dist(
        localities: usize,
        params: Jacobi2dDistParams,
        init: fn(usize, usize) -> f64,
    ) -> Vec<f64> {
        let cluster = Cluster::new(localities, 2);
        install(&cluster);
        let solver = Jacobi2dDist::new(&cluster, params);
        let out = solver.run(init);
        cluster.shutdown();
        out
    }

    fn run_serial(params: Jacobi2dDistParams, init: fn(usize, usize) -> f64) -> Vec<f64> {
        let mut j = Jacobi2d::new(params.nx, params.ny, params.boundary, init);
        for _ in 0..params.steps {
            j.step(&seq());
        }
        j.grid().interior()
    }

    fn spot(x: usize, y: usize) -> f64 {
        if (3..6).contains(&x) && (4..7).contains(&y) {
            50.0
        } else {
            0.0
        }
    }

    #[test]
    fn matches_shared_memory_solver_one_locality() {
        let params = Jacobi2dDistParams::new(12, 10, 8);
        let got = run_dist(1, params, spot);
        assert_eq!(got, run_serial(params, spot));
    }

    #[test]
    fn matches_shared_memory_solver_across_localities() {
        let params = Jacobi2dDistParams::new(12, 17, 12);
        let want = run_serial(params, spot);
        for localities in [2, 3, 4] {
            let got = run_dist(localities, params, spot);
            assert_eq!(got.len(), 12 * 17);
            assert_eq!(got, want, "{localities} localities");
        }
    }

    #[test]
    fn nonzero_boundary_and_uneven_blocks() {
        let mut params = Jacobi2dDistParams::new(8, 11, 9);
        params.boundary = 1.5;
        let want = run_serial(params, |x, y| (x + 2 * y) as f64 * 0.1);
        let got = run_dist(3, params, |x, y| (x + 2 * y) as f64 * 0.1);
        assert_eq!(got, want);
    }

    #[test]
    fn single_row_blocks_edge_case() {
        // As many localities as rows: every block is all edges.
        let params = Jacobi2dDistParams::new(6, 4, 6);
        let want = run_serial(params, spot);
        let got = run_dist(4, params, spot);
        assert_eq!(got, want);
    }

    #[test]
    fn chaos_transport_matches_shared_memory_solver_bitwise() {
        let params = Jacobi2dDistParams::new(10, 12, 8);
        let want = run_serial(params, spot);
        let chaos = parallex::resilience::ChaosSpec::parse(
            "seed=42,drop=5%,dup=2%,corrupt=1%,delay=1ms",
        )
        .unwrap();
        let cluster = Cluster::new_resilient(3, 2, Some(chaos));
        install(&cluster);
        let solver = Jacobi2dDist::new(&cluster, params);
        let got = solver.run(spot);
        cluster.shutdown();
        assert_eq!(got, want, "chaos run diverged from the serial solver");
    }

    #[test]
    fn works_under_network_delay() {
        let params = Jacobi2dDistParams::new(8, 12, 5);
        let cluster = Cluster::new(3, 2);
        install(&cluster);
        cluster.set_network_delay(std::sync::Arc::new(|_p| {
            std::time::Duration::from_micros(400)
        }));
        let solver = Jacobi2dDist::new(&cluster, params);
        let got = solver.run(spot);
        let (ready, parked) = solver.halo_stats();
        cluster.shutdown();
        assert_eq!(got, run_serial(params, spot));
        // 3 localities: middle has 2 neighbours, ends 1 each = 4 takes/step.
        assert_eq!(ready + parked, 4 * params.steps);
    }
}
