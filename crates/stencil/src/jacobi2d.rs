//! The shared-memory 2D Jacobi solver (Listing 2, Eq. 4).
//!
//! One time step computes, for every interior cell,
//! `next = (left + right + up + down) * 0.25`, ping-ponging between two
//! grids (`U[t % 2]` / `U[(t+1) % 2]` in the paper's code). Rows are
//! updated in parallel with `parallex`'s `for_each` under a caller-chosen
//! execution policy — exactly the structure of Listing 2 lines 25–30 —
//! and the VNS variant re-shuffles its pack halos after each row update
//! (line 18).

use crate::grid::{ScalarGrid, VnsGrid};
use parallex::algorithms::ExecutionPolicy;
use parallex::util::HighResolutionTimer;
use parallex_simd::traits::Element;
use parallex_simd::vns::VnsRow;
use parallex_simd::Pack;

/// Which data layout / vectorization strategy a run uses (the four series
/// of Figs. 4–8 are {f32, f64} × {auto (scalar), explicit (VNS)}).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JacobiLayout {
    /// Scalar row-major layout; vectorization left to the compiler.
    Scalar,
    /// Virtual Node Scheme packed layout; explicit SIMD.
    Vns,
}

/// Outcome of a timed run.
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Wall-clock of the stepped region, seconds.
    pub seconds: f64,
    /// Achieved giga lattice-site updates per second.
    pub glups: f64,
    /// Steps executed.
    pub steps: usize,
}

fn stats(nx: usize, ny: usize, steps: usize, seconds: f64) -> RunStats {
    let lups = nx as f64 * ny as f64 * steps as f64;
    RunStats { seconds, glups: lups / seconds.max(1e-12) / 1e9, steps }
}

/// One scalar Jacobi step: read `cur`, write every interior cell of
/// `next`. Rows are independent tasks under the policy.
pub fn jacobi_step_scalar<T: Element>(
    cur: &ScalarGrid<T>,
    next: &mut ScalarGrid<T>,
    policy: &ExecutionPolicy,
) {
    assert_eq!((cur.nx(), cur.ny()), (next.nx(), next.ny()));
    let nx = cur.nx();
    let quarter = T::from_f64(0.25);
    let mut rows = next.interior_rows_mut();
    policy.for_each_mut(&mut rows, |y, out_row| {
        let up = cur.raw_row(y); // halo row above interior row y
        let mid = cur.raw_row(y + 1);
        let down = cur.raw_row(y + 2);
        for x in 0..nx {
            let hx = x + 1;
            out_row[x] = (mid[hx - 1] + mid[hx + 1] + up[hx] + down[hx]) * quarter;
        }
    });
}

/// One VNS Jacobi step: identical arithmetic, packed operands, plus the
/// per-row halo shuffle.
pub fn jacobi_step_vns<T: Element, const W: usize>(
    cur: &VnsGrid<T, W>,
    next: &mut VnsGrid<T, W>,
    policy: &ExecutionPolicy,
) {
    assert_eq!((cur.nx(), cur.ny()), (next.nx(), next.ny()));
    let boundary = cur.boundary();
    let quarter = T::from_f64(0.25);
    let mut rows: Vec<&mut VnsRow<T, W>> = next.interior_rows_mut();
    policy.for_each_mut(&mut rows, |y, out_row| {
        let (up, mid, down) = cur.stencil_rows(y + 1);
        let m = mid.len() - 2;
        {
            let packs = out_row.packs_mut();
            for i in 1..=m {
                // Same operand order as the scalar kernel, lane-wise, so
                // the two layouts agree bit-for-bit.
                packs[i] = (mid[i - 1] + mid[i + 1] + up[i] + down[i]) * Pack::splat(quarter);
            }
        }
        // Listing 2 line 18: keep the pack halos consistent for the next
        // time step.
        out_row.refresh_halo(boundary, boundary);
    });
}

/// Partial scalar Jacobi step for distributed solvers: with
/// `edges = false` update only the *interior* rows (`1..ny-1`), which do
/// not read the top/bottom halo rows; with `edges = true` update only the
/// first and last interior rows, which do. Splitting the step this way is
/// what lets halo-row parcels overlap the interior update.
#[allow(clippy::needless_range_loop)] // x indexes three input rows plus the output
pub fn jacobi_step_scalar_edges<T: Element>(
    cur: &ScalarGrid<T>,
    next: &mut ScalarGrid<T>,
    policy: &ExecutionPolicy,
    edges: bool,
) {
    assert_eq!((cur.nx(), cur.ny()), (next.nx(), next.ny()));
    let nx = cur.nx();
    let ny = cur.ny();
    let quarter = T::from_f64(0.25);
    let update_row = |y: usize, out_row: &mut [T]| {
        let up = cur.raw_row(y);
        let mid = cur.raw_row(y + 1);
        let down = cur.raw_row(y + 2);
        for x in 0..nx {
            let hx = x + 1;
            out_row[x] = (mid[hx - 1] + mid[hx + 1] + up[hx] + down[hx]) * quarter;
        }
    };
    let mut rows = next.interior_rows_mut();
    if edges {
        update_row(0, rows[0]);
        if ny > 1 {
            update_row(ny - 1, rows[ny - 1]);
        }
    } else if ny > 2 {
        policy.for_each_mut(&mut rows[1..ny - 1], |k, out_row| {
            update_row(k + 1, out_row);
        });
    }
}

/// One scalar Jacobi step traversed in row *tiles* of `tile_rows` — an
/// explicitly cache-blocked variant. The paper observes that A64FX and
/// ThunderX2 get this blocking "for free" from their large cache lines
/// ("We witness results equivalent to cache blocking version of 2D
/// stencil", Section VII-B); this is that cache-blocked version, for
/// comparison benchmarks. Results are bit-identical to
/// [`jacobi_step_scalar`] — only the traversal (and hence cache reuse)
/// differs.
///
/// # Panics
/// Panics on shape mismatch or `tile_rows == 0`.
#[allow(clippy::needless_range_loop)] // x indexes three rows plus the output
pub fn jacobi_step_scalar_tiled<T: Element>(
    cur: &ScalarGrid<T>,
    next: &mut ScalarGrid<T>,
    policy: &ExecutionPolicy,
    tile_rows: usize,
) {
    assert_eq!((cur.nx(), cur.ny()), (next.nx(), next.ny()));
    assert!(tile_rows > 0, "tile_rows must be positive");
    let nx = cur.nx();
    let ny = cur.ny();
    let quarter = T::from_f64(0.25);
    let tiles = ny.div_ceil(tile_rows);
    let mut rows = next.interior_rows_mut();
    // Group mutable rows into per-tile bundles so each tile is one task.
    let mut tile_bundles: Vec<Vec<&mut [T]>> = Vec::with_capacity(tiles);
    {
        let mut rest = rows.as_mut_slice();
        while !rest.is_empty() {
            let take = tile_rows.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            // SAFETY-free trick: move the &mut row slices out via iter_mut.
            tile_bundles.push(head.iter_mut().map(|r| &mut **r).collect());
            rest = tail;
        }
    }
    policy.for_each_mut(&mut tile_bundles, |tile_idx, bundle| {
        let y0 = tile_idx * tile_rows;
        for (dy, out_row) in bundle.iter_mut().enumerate() {
            let y = y0 + dy;
            let up = cur.raw_row(y);
            let mid = cur.raw_row(y + 1);
            let down = cur.raw_row(y + 2);
            for x in 0..nx {
                let hx = x + 1;
                out_row[x] = (mid[hx - 1] + mid[hx + 1] + up[hx] + down[hx]) * quarter;
            }
        }
    });
}

/// Ping-pong runner for the scalar layout.
pub struct Jacobi2d<T: Element> {
    cur: ScalarGrid<T>,
    next: ScalarGrid<T>,
}

impl<T: Element> Jacobi2d<T> {
    /// Initialize from interior values and a Dirichlet boundary value.
    pub fn new(nx: usize, ny: usize, boundary: T, init: impl FnMut(usize, usize) -> T) -> Self {
        let mut cur = ScalarGrid::from_fn(nx, ny, init);
        cur.set_boundary(boundary);
        let mut next = ScalarGrid::zeros(nx, ny);
        next.set_boundary(boundary);
        Jacobi2d { cur, next }
    }

    /// The current-solution grid.
    pub fn grid(&self) -> &ScalarGrid<T> {
        &self.cur
    }

    /// Advance one step.
    pub fn step(&mut self, policy: &ExecutionPolicy) {
        jacobi_step_scalar(&self.cur, &mut self.next, policy);
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Advance `steps` steps, timed (the `high_resolution_timer` region of
    /// Listing 2).
    pub fn run(&mut self, steps: usize, policy: &ExecutionPolicy) -> RunStats {
        let t = HighResolutionTimer::new();
        for _ in 0..steps {
            self.step(policy);
        }
        stats(self.cur.nx(), self.cur.ny(), steps, t.elapsed())
    }
}

/// Ping-pong runner for the VNS layout.
pub struct Jacobi2dVns<T: Element, const W: usize> {
    cur: VnsGrid<T, W>,
    next: VnsGrid<T, W>,
}

impl<T: Element, const W: usize> Jacobi2dVns<T, W> {
    /// Initialize from the same inputs as [`Jacobi2d::new`] (so the two
    /// layouts can be compared cell-for-cell).
    pub fn new(nx: usize, ny: usize, boundary: T, init: impl FnMut(usize, usize) -> T) -> Self {
        let mut scalar = ScalarGrid::from_fn(nx, ny, init);
        scalar.set_boundary(boundary);
        let cur = VnsGrid::from_scalar(&scalar);
        let next = cur.clone();
        Jacobi2dVns { cur, next }
    }

    /// The current solution, unpacked.
    pub fn grid(&self) -> ScalarGrid<T> {
        self.cur.to_scalar()
    }

    /// Advance one step.
    pub fn step(&mut self, policy: &ExecutionPolicy) {
        jacobi_step_vns(&self.cur, &mut self.next, policy);
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Advance `steps` steps, timed.
    pub fn run(&mut self, steps: usize, policy: &ExecutionPolicy) -> RunStats {
        let t = HighResolutionTimer::new();
        for _ in 0..steps {
            self.step(policy);
        }
        stats(self.cur.nx(), self.cur.ny(), steps, t.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallex::algorithms::{par, seq};
    use parallex::runtime::Runtime;

    fn rt() -> Runtime {
        Runtime::builder().worker_threads(4).build()
    }

    fn hot_spot(nx: usize, ny: usize) -> impl FnMut(usize, usize) -> f64 {
        move |x, y| {
            if x == nx / 2 && y == ny / 2 {
                100.0
            } else {
                0.0
            }
        }
    }

    #[test]
    fn one_step_averages_neighbours() {
        let mut j = Jacobi2d::new(3, 3, 0.0, |x, y| if x == 1 && y == 1 { 4.0 } else { 0.0 });
        j.step(&seq());
        let g = j.grid();
        // Centre becomes the average of four zeros; the four neighbours
        // each pick up 1.0 from the old centre.
        assert_eq!(g.get(1, 1), 0.0);
        assert_eq!(g.get(0, 1), 1.0);
        assert_eq!(g.get(2, 1), 1.0);
        assert_eq!(g.get(1, 0), 1.0);
        assert_eq!(g.get(1, 2), 1.0);
        assert_eq!(g.get(0, 0), 0.0, "diagonal untouched by 5-point stencil");
    }

    #[test]
    fn seq_and_par_agree_bitwise() {
        let rt = rt();
        let mut a = Jacobi2d::new(16, 12, 1.0, hot_spot(16, 12));
        let mut b = Jacobi2d::new(16, 12, 1.0, hot_spot(16, 12));
        for _ in 0..10 {
            a.step(&seq());
            b.step(&par(&rt));
        }
        assert_eq!(a.grid().max_abs_diff(b.grid()), 0.0);
        rt.shutdown();
    }

    #[test]
    fn scalar_and_vns_agree_bitwise() {
        // The explicitly vectorized kernel must compute exactly what the
        // scalar kernel computes (same operand order lane-wise).
        let rt = rt();
        let mut s = Jacobi2d::new(16, 8, 0.5, hot_spot(16, 8));
        let mut v = Jacobi2dVns::<f64, 4>::new(16, 8, 0.5, hot_spot(16, 8));
        for _ in 0..20 {
            s.step(&par(&rt));
            v.step(&par(&rt));
        }
        assert_eq!(s.grid().max_abs_diff(&v.grid()), 0.0);
        rt.shutdown();
    }

    #[test]
    fn scalar_and_vns_agree_for_f32_and_other_widths() {
        let mut s = Jacobi2d::<f32>::new(8, 6, 0.0, |x, y| (x * y) as f32);
        let mut v2 = Jacobi2dVns::<f32, 2>::new(8, 6, 0.0, |x, y| (x * y) as f32);
        let mut v8 = Jacobi2dVns::<f32, 8>::new(8, 6, 0.0, |x, y| (x * y) as f32);
        for _ in 0..5 {
            s.step(&seq());
            v2.step(&seq());
            v8.step(&seq());
        }
        assert_eq!(s.grid().max_abs_diff(&v2.grid()), 0.0);
        assert_eq!(s.grid().max_abs_diff(&v8.grid()), 0.0);
    }

    #[test]
    fn converges_to_boundary_value() {
        // Laplace with constant boundary: the interior relaxes to the
        // boundary value.
        let mut j = Jacobi2d::<f64>::new(8, 8, 2.0, |_, _| 0.0);
        for _ in 0..2000 {
            j.step(&seq());
        }
        for y in 0..8 {
            for x in 0..8 {
                assert!((j.grid().get(x, y) - 2.0).abs() < 1e-6, "({x},{y})");
            }
        }
    }

    #[test]
    fn discrete_maximum_principle_holds() {
        // Jacobi averaging can never exceed the initial/boundary extremes.
        let mut j = Jacobi2d::new(12, 12, 0.0, hot_spot(12, 12));
        for _ in 0..50 {
            j.step(&seq());
            let vals = j.grid().interior();
            let max = vals.iter().cloned().fold(f64::MIN, f64::max);
            let min = vals.iter().cloned().fold(f64::MAX, f64::min);
            assert!(max <= 100.0 + 1e-12 && min >= 0.0);
        }
    }

    #[test]
    fn run_reports_plausible_throughput() {
        let rt = rt();
        let mut j = Jacobi2d::new(128, 64, 0.0, |_, _| 1.0);
        let stats = j.run(10, &par(&rt));
        assert_eq!(stats.steps, 10);
        assert!(stats.seconds > 0.0);
        assert!(stats.glups > 0.0);
        rt.shutdown();
    }

    #[test]
    fn block_policy_produces_same_result() {
        let rt = rt();
        let mut a = Jacobi2d::new(16, 16, 0.0, hot_spot(16, 16));
        let mut b = Jacobi2d::new(16, 16, 0.0, hot_spot(16, 16));
        for _ in 0..5 {
            a.step(&seq());
            b.step(&par(&rt).per_worker().block());
        }
        assert_eq!(a.grid().max_abs_diff(b.grid()), 0.0);
        rt.shutdown();
    }

    #[test]
    fn tiled_step_is_bit_identical_to_plain_step() {
        let rt = rt();
        for tile_rows in [1usize, 3, 8, 100] {
            let mut plain = Jacobi2d::new(16, 10, 0.25, hot_spot(16, 10));
            let mut tiled_cur = ScalarGrid::from_fn(16, 10, hot_spot(16, 10));
            tiled_cur.set_boundary(0.25);
            let mut tiled_next = ScalarGrid::zeros(16, 10);
            tiled_next.set_boundary(0.25);
            for _ in 0..6 {
                plain.step(&par(&rt));
                jacobi_step_scalar_tiled(&tiled_cur, &mut tiled_next, &par(&rt), tile_rows);
                std::mem::swap(&mut tiled_cur, &mut tiled_next);
            }
            assert_eq!(plain.grid().max_abs_diff(&tiled_cur), 0.0, "tile_rows={tile_rows}");
        }
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "tile_rows")]
    fn zero_tile_rows_rejected() {
        let cur = ScalarGrid::<f64>::zeros(4, 4);
        let mut next = ScalarGrid::<f64>::zeros(4, 4);
        jacobi_step_scalar_tiled(&cur, &mut next, &seq(), 0);
    }

    #[test]
    #[should_panic]
    fn mismatched_grids_panic() {
        let cur = ScalarGrid::<f64>::zeros(4, 4);
        let mut next = ScalarGrid::<f64>::zeros(4, 5);
        jacobi_step_scalar(&cur, &mut next, &seq());
    }
}
