//! The fully distributed 1D heat-equation solver (Listing 1, Eq. 3).
//!
//! The domain is block-partitioned over the localities of a
//! [`Cluster`]; each step a locality
//!
//! 1. **sends** its two boundary cells to its neighbours as parcels
//!    (active messages targeting the neighbour's halo-store component),
//! 2. **computes the interior** — every cell that does not need a
//!    neighbour's halo — with a parallel `for_each` on its own runtime,
//! 3. **waits** on futures for the incoming halos and finishes the two
//!    edge cells.
//!
//! Step 2 runs while the step-1 parcels are in flight, which is the
//! latency-hiding structure the paper credits for its flat weak scaling
//! ("the network latencies are aptly hidden", Section VII-A). Run the
//! cluster with a `parallex-netsim` delay function to execute against a
//! modeled interconnect.

use crate::halo::HaloMailbox;
use parallex::agas::Gid;
use parallex::algorithms::par;
use parallex::introspect::EventKind;
use parallex::lcos::future::{when_all, Future};
use parallex::locality::{Cluster, Locality};
use parallex::parcel::serialize;
use parallex::parcel::ActionId;
use std::sync::Arc;

/// Action id of the halo-push active message.
pub const HALO_PUSH: ActionId = 0x48_41; // "HA"

/// Halo-push send attempts before giving up (a transient transport
/// error — e.g. a reconnecting peer — heals within a retry or two; a
/// genuinely dead peer still fails after the last attempt).
const HALO_SEND_ATTEMPTS: usize = 3;

/// Linear backoff base between halo-push retries.
const HALO_SEND_BACKOFF: std::time::Duration = std::time::Duration::from_millis(2);

/// Which halo slot of the *receiver* a message fills.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Side {
    /// The receiver's left halo cell.
    Left,
    /// The receiver's right halo cell.
    Right,
}

/// Per-locality mailbox for incoming halo cells, keyed by (side, step):
/// a thin typed wrapper over the shared [`HaloMailbox`].
#[derive(Default)]
pub struct HaloStore {
    inner: HaloMailbox<f64>,
}

impl Side {
    fn tag(self) -> u8 {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}

impl HaloStore {
    /// Create an empty store.
    pub fn new() -> HaloStore {
        HaloStore::default()
    }

    /// Deliver a halo value (called by the parcel handler).
    pub fn put(&self, side: Side, step: u64, v: f64) {
        self.inner.put(side.tag(), step, v);
    }

    /// Future of the halo value for (side, step).
    pub fn take(&self, loc: &Locality, side: Side, step: u64) -> Future<f64> {
        self.inner.take(loc, side.tag(), step)
    }

    /// `(already_arrived, had_to_wait)` take counts — the direct measure of
    /// how well communication overlapped compute (the paper's latency
    /// hiding): a high first component means halos were in flight while
    /// the interior computed.
    pub fn take_stats(&self) -> (usize, usize) {
        self.inner.take_stats()
    }

    /// Buffered (undelivered) halo values.
    pub fn buffered(&self) -> usize {
        self.inner.buffered()
    }
}

/// Solver parameters.
#[derive(Clone, Copy, Debug)]
pub struct Heat1dParams {
    /// Total stencil points across the cluster.
    pub total_points: usize,
    /// Time steps.
    pub steps: usize,
    /// `alpha * dt / dx^2` of Eq. 3 (stability requires `r <= 0.5`).
    pub r: f64,
    /// Fixed temperature outside the left end.
    pub left_bc: f64,
    /// Fixed temperature outside the right end.
    pub right_bc: f64,
}

impl Heat1dParams {
    /// Sanity-checked constructor.
    ///
    /// # Panics
    /// Panics on an unstable `r` or an empty domain.
    pub fn new(total_points: usize, steps: usize, r: f64) -> Self {
        assert!(total_points > 0, "empty domain");
        assert!(r > 0.0 && r <= 0.5, "unstable r = {r}");
        Heat1dParams { total_points, steps, r, left_bc: 0.0, right_bc: 0.0 }
    }
}

/// Install the halo-push action on a cluster (once per cluster, before
/// constructing solvers).
pub fn install(cluster: &Cluster) {
    cluster.register_action(HALO_PUSH, "heat1d::halo_push", |loc, gid, payload| {
        let (side, step, v): (Side, u64, f64) = serialize::from_bytes(payload)?;
        let store = loc.components().get::<HaloStore>(gid)?;
        store.put(side, step, v);
        Ok(Vec::new())
    });
}

/// The distributed solver: owns the per-locality halo stores.
pub struct Heat1dSolver {
    cluster: Cluster,
    params: Heat1dParams,
    store_gids: Vec<Gid>,
}

impl Heat1dSolver {
    /// Create solver state on a cluster where [`install`] was called.
    pub fn new(cluster: &Cluster, params: Heat1dParams) -> Heat1dSolver {
        let store_gids = (0..cluster.len())
            .map(|i| cluster.new_component(i, HaloStore::new()))
            .collect();
        Heat1dSolver { cluster: cluster.clone(), params, store_gids }
    }

    /// Aggregate `(already_arrived, had_to_wait)` halo-take statistics
    /// over all localities (see [`HaloStore::take_stats`]).
    pub fn halo_stats(&self) -> (usize, usize) {
        self.store_gids
            .iter()
            .map(|&gid| {
                self.cluster
                    .get_component::<HaloStore>(gid)
                    .map(|s| s.take_stats())
                    .unwrap_or((0, 0))
            })
            .fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
    }

    /// Block range of locality `i` (contiguous block partition).
    pub fn block_range(&self, i: usize) -> std::ops::Range<usize> {
        parallex::topology::block_ranges(self.params.total_points, self.cluster.len())[i].clone()
    }

    /// Run to completion and gather the final temperature field.
    pub fn run(&self, init: impl Fn(usize) -> f64 + Send + Sync + 'static) -> Vec<f64> {
        let init = Arc::new(init);
        let n_loc = self.cluster.len();
        let drivers: Vec<Future<Vec<f64>>> = (0..n_loc)
            .map(|i| {
                let loc = self.cluster.locality(i);
                let params = self.params;
                let range = self.block_range(i);
                let init = init.clone();
                let my_gid = self.store_gids[i];
                let left_gid = (i > 0).then(|| self.store_gids[i - 1]);
                let right_gid = (i + 1 < n_loc).then(|| self.store_gids[i + 1]);
                let loc2 = loc.clone();
                loc.runtime().async_task(move || {
                    drive_partition(&loc2, params, range, &*init, my_gid, left_gid, right_gid)
                })
            })
            .collect();
        let blocks = when_all(drivers).get();
        blocks.into_iter().flatten().collect()
    }
}

/// The per-locality time-stepping loop (runs as a task on that locality).
fn drive_partition(
    loc: &Arc<Locality>,
    params: Heat1dParams,
    range: std::ops::Range<usize>,
    init: &(dyn Fn(usize) -> f64 + Send + Sync),
    my_gid: Gid,
    left_gid: Option<Gid>,
    right_gid: Option<Gid>,
) -> Vec<f64> {
    let n = range.len();
    if n == 0 {
        return Vec::new();
    }
    let store = loc
        .components()
        .get::<HaloStore>(my_gid)
        .expect("halo store exists");
    let rt = loc.runtime().clone();
    let r = params.r;
    // u[1..=n] are this block's cells; u[0] / u[n+1] are halo slots.
    let mut u: Vec<f64> = std::iter::once(0.0)
        .chain(range.clone().map(init))
        .chain(std::iter::once(0.0))
        .collect();
    let mut next = vec![0.0f64; n + 2];

    for t in 0..params.steps as u64 {
        // (1) Ship boundary cells to the neighbours; their parcels travel
        // while we compute the interior.
        if let Some(lg) = left_gid {
            parallex::resilience::retry(HALO_SEND_ATTEMPTS, HALO_SEND_BACKOFF, || {
                loc.apply(lg, HALO_PUSH, &(Side::Right, t, u[1]))
            })
            .expect("halo parcel to left neighbour");
        }
        if let Some(rg) = right_gid {
            parallex::resilience::retry(HALO_SEND_ATTEMPTS, HALO_SEND_BACKOFF, || {
                loc.apply(rg, HALO_PUSH, &(Side::Left, t, u[n]))
            })
            .expect("halo parcel to right neighbour");
        }
        // (2) Interior update (cells 2..=n-1) in parallel on this
        // locality's workers — the Listing 1 `for_each`. Small blocks run
        // serially (chunk-task overhead would dominate); both paths
        // compute identical values in identical order.
        if n > 2 {
            let u2 = &u;
            if n > 4096 {
                par(&rt).for_each_mut(&mut next[2..n], |k, out| {
                    let x = k + 2;
                    *out = u2[x] + r * (u2[x - 1] - 2.0 * u2[x] + u2[x + 1]);
                });
            } else {
                for x in 2..n {
                    next[x] = u2[x] + r * (u2[x - 1] - 2.0 * u2[x] + u2[x + 1]);
                }
            }
        }
        // (3) Resolve halos (futures — possibly already buffered) and
        // finish the edge cells. The wait is recorded as a halo-exchange
        // span whose arg packs the step and which sides actually blocked
        // — `(step << 2) | waited_left << 1 | waited_right` — so the
        // attribution engine can tell a fully hidden exchange (halo
        // already buffered when the interior finished) from an exposed
        // one without timing heuristics.
        let tracer = rt.tracer();
        let halo_start = tracer.is_enabled().then(std::time::Instant::now);
        let mut waited = 0u64;
        let left_halo = match left_gid {
            Some(_) => {
                let f = store.take(loc, Side::Left, t);
                if !f.is_ready() {
                    waited |= 0b10;
                }
                f.get()
            }
            None => params.left_bc,
        };
        let right_halo = match right_gid {
            Some(_) => {
                let f = store.take(loc, Side::Right, t);
                if !f.is_ready() {
                    waited |= 0b01;
                }
                f.get()
            }
            None => params.right_bc,
        };
        if let Some(t0) = halo_start {
            let lane = rt.current_worker().unwrap_or_else(|| tracer.external_lane());
            tracer.span(
                lane,
                EventKind::HaloExchange,
                t0,
                std::time::Instant::now(),
                (t << 2) | waited,
            );
        }
        u[0] = left_halo;
        u[n + 1] = right_halo;
        next[1] = u[1] + r * (u[0] - 2.0 * u[1] + u[2]);
        if n > 1 {
            next[n] = u[n] + r * (u[n - 1] - 2.0 * u[n] + u[n + 1]);
        }
        std::mem::swap(&mut u, &mut next);
    }
    u[1..=n].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{heat1d_reference, max_abs_diff};

    fn run_distributed(localities: usize, params: Heat1dParams, init: fn(usize) -> f64) -> Vec<f64> {
        let cluster = Cluster::new(localities, 2);
        install(&cluster);
        let solver = Heat1dSolver::new(&cluster, params);
        let out = solver.run(init);
        cluster.shutdown();
        out
    }

    fn bump(i: usize) -> f64 {
        if (20..30).contains(&i) {
            1.0
        } else {
            0.0
        }
    }

    #[test]
    fn matches_serial_reference_on_one_locality() {
        let params = Heat1dParams::new(64, 25, 0.25);
        let got = run_distributed(1, params, bump);
        let want = heat1d_reference(64, 25, 0.25, 0.0, 0.0, bump);
        assert!(max_abs_diff(&got, &want) < 1e-14);
    }

    #[test]
    fn matches_serial_reference_across_localities() {
        let params = Heat1dParams::new(64, 25, 0.25);
        let want = heat1d_reference(64, 25, 0.25, 0.0, 0.0, bump);
        for localities in [2, 3, 4] {
            let got = run_distributed(localities, params, bump);
            assert_eq!(got.len(), 64);
            assert!(
                max_abs_diff(&got, &want) < 1e-14,
                "{localities} localities: {}",
                max_abs_diff(&got, &want)
            );
        }
    }

    #[test]
    fn uneven_partitions_are_correct() {
        // 61 points over 4 localities: blocks of 16/15/15/15.
        let params = Heat1dParams::new(61, 12, 0.3);
        let got = run_distributed(4, params, |i| (i % 7) as f64);
        let want = heat1d_reference(61, 12, 0.3, 0.0, 0.0, |i| (i % 7) as f64);
        assert!(max_abs_diff(&got, &want) < 1e-13);
    }

    #[test]
    fn nonzero_boundary_conditions_propagate() {
        let n = 32usize;
        let mut params = Heat1dParams::new(n, 4000, 0.5);
        params.left_bc = 1.0;
        params.right_bc = 3.0;
        let cluster = Cluster::new(2, 2);
        install(&cluster);
        let solver = Heat1dSolver::new(&cluster, params);
        let out = solver.run(|_| 0.0);
        cluster.shutdown();
        // Steady state of the discrete heat equation is linear between the
        // BCs: u_i = left + (right-left) * (i+1) / (n+1).
        for (i, &v) in out.iter().enumerate() {
            let want = 1.0 + 2.0 * (i as f64 + 1.0) / (n as f64 + 1.0);
            assert!((v - want).abs() < 0.01, "cell {i}: {v} vs steady {want}");
        }
    }

    #[test]
    fn matches_serial_reference_over_tcp_parcelport() {
        // Same solver, but every halo crosses a real loopback socket
        // through the TCP parcelport (framing + coalescing).
        let params = Heat1dParams::new(64, 25, 0.25);
        let want = heat1d_reference(64, 25, 0.25, 0.0, 0.0, bump);
        let cluster = Cluster::new_tcp(3, 2);
        install(&cluster);
        let solver = Heat1dSolver::new(&cluster, params);
        let got = solver.run(bump);
        let wire_parcels: u64 = cluster.tcp_ports().iter().map(|p| p.parcels_sent()).sum();
        cluster.shutdown();
        assert_eq!(got.len(), 64);
        assert!(max_abs_diff(&got, &want) < 1e-14, "{}", max_abs_diff(&got, &want));
        // 25 steps × 4 inter-locality halos per step went over sockets.
        assert!(wire_parcels >= 100, "halos must cross the wire, got {wire_parcels}");
    }

    #[test]
    fn chaos_run_is_bitwise_identical_to_fault_free_run() {
        // The tentpole proof at unit scale: the same solve over a
        // transport injecting drops, dups, delays and bit-corruption
        // must produce the exact bits of the fault-free run — the
        // reliability layer heals every fault before it reaches the
        // numerics.
        let params = Heat1dParams::new(64, 25, 0.25);
        let run = |cluster: Cluster| -> Vec<f64> {
            install(&cluster);
            let solver = Heat1dSolver::new(&cluster, params);
            let out = solver.run(bump);
            cluster.shutdown();
            out
        };
        let fault_free = run(Cluster::new_tcp(3, 2));
        let chaos = parallex::resilience::ChaosSpec::parse(
            "seed=1337,drop=5%,dup=2%,corrupt=1%,delay=2ms",
        )
        .unwrap();
        let chaotic = run(Cluster::new_resilient(3, 2, Some(chaos)));
        assert_eq!(chaotic, fault_free, "chaos run diverged bitwise");
        let want = heat1d_reference(64, 25, 0.25, 0.0, 0.0, bump);
        assert!(max_abs_diff(&chaotic, &want) < 1e-14);
    }

    #[test]
    fn works_under_simulated_network_delay() {
        let params = Heat1dParams::new(48, 10, 0.25);
        let cluster = Cluster::new(3, 2);
        install(&cluster);
        cluster.set_network_delay(std::sync::Arc::new(|_p| {
            std::time::Duration::from_micros(300)
        }));
        let solver = Heat1dSolver::new(&cluster, params);
        let got = solver.run(bump);
        cluster.shutdown();
        let want = heat1d_reference(48, 10, 0.25, 0.0, 0.0, bump);
        assert!(max_abs_diff(&got, &want) < 1e-14);
    }

    #[test]
    fn halo_store_buffers_out_of_order_arrivals() {
        let store = HaloStore::new();
        store.put(Side::Left, 3, 7.5);
        assert_eq!(store.buffered(), 1);
        let cluster = Cluster::new(1, 1);
        let loc = cluster.locality(0);
        let f = store.take(&loc, Side::Left, 3);
        assert_eq!(f.get(), 7.5);
        assert_eq!(store.buffered(), 0);
        cluster.shutdown();
    }

    #[test]
    fn halo_store_waits_for_future_arrivals() {
        let store = Arc::new(HaloStore::new());
        let cluster = Cluster::new(1, 2);
        let loc = cluster.locality(0);
        let f = store.take(&loc, Side::Right, 0);
        assert!(!f.is_ready());
        store.put(Side::Right, 0, -1.25);
        assert_eq!(f.get(), -1.25);
        cluster.shutdown();
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_r_is_rejected() {
        let _ = Heat1dParams::new(10, 1, 0.6);
    }
}
