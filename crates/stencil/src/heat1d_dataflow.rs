//! Futurized shared-memory 1D heat solver — the dataflow formulation.
//!
//! This is the canonical ParalleX stencil structure from Heller, Kaiser &
//! Iglberger, "Application of the ParalleX execution model to stencil-based
//! problems" (the paper's reference [9], and HPX's `1d_stencil_4`
//! example): the domain is split into partitions, each time-step/partition
//! value is a *future*, and partition `i` at step `t+1` is a
//! `dataflow(update, left[t], middle[t], right[t])`. No loop-level
//! barriers exist — "tasks are launched arbitrarily based on the input
//! data and the DAG generated" (the paper's Section I) — so a fast
//! partition can run several steps ahead of a slow neighbour, bounded only
//! by the data dependencies.
//!
//! The block-partitioned distributed solver in [`crate::heat1d`] is the
//! production variant; this module exists to execute the *model's* DAG
//! shape literally and to exercise [`parallex::lcos::future::SharedFuture`]
//! (each partition future has up to three consumers).

use parallex::lcos::dataflow::dataflow3;
use parallex::lcos::future::{Future, SharedFuture};
use parallex::runtime::Runtime;
use std::sync::Arc;

/// One partition of the rod at one time step.
type Part = Arc<Vec<f64>>;

/// The boundary "partition" a missing neighbour contributes.
fn boundary_part(value: f64) -> Part {
    Arc::new(vec![value])
}

/// Update one partition given its neighbours at the previous step
/// (Eq. 3 per cell; `left`/`right` supply the single halo cell each).
fn update_partition(left: &[f64], mid: &[f64], right: &[f64], r: f64) -> Vec<f64> {
    let n = mid.len();
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        let l = if j == 0 { *left.last().expect("nonempty") } else { mid[j - 1] };
        let rt = if j + 1 == n { right[0] } else { mid[j + 1] };
        out.push(mid[j] + r * (l - 2.0 * mid[j] + rt));
    }
    out
}

/// Solve the heat equation with `np` partitions of `nx` cells for `steps`
/// steps, fully futurized: returns the final field (`np * nx` cells).
///
/// # Panics
/// Panics on a degenerate decomposition or unstable `r`.
pub fn heat1d_dataflow(
    rt: &Runtime,
    np: usize,
    nx: usize,
    steps: usize,
    r: f64,
    init: impl Fn(usize) -> f64,
) -> Vec<f64> {
    assert!(np > 0 && nx > 0, "degenerate decomposition");
    assert!(r > 0.0 && r <= 0.5, "unstable r = {r}");
    // Time step 0: ready futures holding the initial partitions.
    let mut current: Vec<SharedFuture<Part>> = (0..np)
        .map(|i| {
            let part: Part = Arc::new((0..nx).map(|j| init(i * nx + j)).collect());
            rt.make_ready_future(part).share()
        })
        .collect();

    for _t in 0..steps {
        let next: Vec<SharedFuture<Part>> = (0..np)
            .map(|i| {
                // Pull per-consumer futures out of the shared neighbours
                // (Arc clone — no data copy).
                let left: Future<Part> = if i == 0 {
                    rt.make_ready_future(boundary_part(0.0))
                } else {
                    current[i - 1].then(|p| p)
                };
                let mid: Future<Part> = current[i].then(|p| p);
                let right: Future<Part> = if i + 1 == np {
                    rt.make_ready_future(boundary_part(0.0))
                } else {
                    current[i + 1].then(|p| p)
                };
                dataflow3(left, mid, right, move |l: Part, m: Part, rg: Part| -> Part {
                    Arc::new(update_partition(&l, &m, &rg, r))
                })
                .share()
            })
            .collect();
        current = next;
    }

    current
        .into_iter()
        .flat_map(|sf| sf.get().as_ref().clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{heat1d_exact_sine_mode, heat1d_reference, max_abs_diff, sine_mode_init};

    fn rt() -> Runtime {
        Runtime::builder().worker_threads(4).build()
    }

    #[test]
    fn matches_serial_reference() {
        let rt = rt();
        let (np, nx, steps, r) = (6, 8, 20, 0.3);
        let init = |i: usize| ((i * 3) % 13) as f64;
        let got = heat1d_dataflow(&rt, np, nx, steps, r, init);
        let want = heat1d_reference(np * nx, steps, r, 0.0, 0.0, init);
        assert!(max_abs_diff(&got, &want) < 1e-14);
        rt.shutdown();
    }

    #[test]
    fn matches_exact_sine_decay() {
        let rt = rt();
        let (np, nx, steps, r, k) = (4, 16, 25, 0.25, 1);
        let n = np * nx;
        let got = heat1d_dataflow(&rt, np, nx, steps, r, sine_mode_init(n, k));
        for i in (0..n).step_by(7) {
            let want = heat1d_exact_sine_mode(n, k, r, steps, i);
            assert!((got[i] - want).abs() < 1e-12, "cell {i}");
        }
        rt.shutdown();
    }

    #[test]
    fn decomposition_does_not_change_the_answer() {
        let rt = rt();
        let init = |i: usize| if i == 17 { 9.0 } else { 0.0 };
        let a = heat1d_dataflow(&rt, 1, 48, 15, 0.4, init);
        let b = heat1d_dataflow(&rt, 6, 8, 15, 0.4, init);
        let c = heat1d_dataflow(&rt, 48, 1, 15, 0.4, init);
        assert!(max_abs_diff(&a, &b) < 1e-15);
        assert!(max_abs_diff(&a, &c) < 1e-15);
        rt.shutdown();
    }

    #[test]
    fn single_cell_partitions_exercise_pure_dataflow() {
        // nx = 1: every update reads both neighbours' futures; the DAG is
        // maximally fine-grained.
        let rt = rt();
        let got = heat1d_dataflow(&rt, 10, 1, 12, 0.5, |i| i as f64);
        let want = heat1d_reference(10, 12, 0.5, 0.0, 0.0, |i| i as f64);
        assert!(max_abs_diff(&got, &want) < 1e-14);
        rt.shutdown();
    }

    #[test]
    fn runs_on_a_single_worker_without_deadlock() {
        // The whole DAG must be executable by one worker through
        // continuations (no blocking cycles).
        let rt = Runtime::builder().worker_threads(1).build();
        let got = heat1d_dataflow(&rt, 4, 4, 10, 0.25, |i| (i % 3) as f64);
        let want = heat1d_reference(16, 10, 0.25, 0.0, 0.0, |i| (i % 3) as f64);
        assert!(max_abs_diff(&got, &want) < 1e-14);
        rt.shutdown();
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn unstable_r_rejected() {
        let rt = rt();
        let _ = heat1d_dataflow(&rt, 2, 4, 1, 0.9, |_| 0.0);
    }
}
