//! Task decomposition shared between real execution and the performance
//! simulator.
//!
//! Both the real 2D solver (rows chunked into `for_each` tasks) and
//! `parallex-perfsim`'s DES consume the same [`StencilPlan`]: the real
//! runner uses its ranges to submit chunk tasks, the simulator turns each
//! chunk into a simulated task of `lups * ns_per_lup` duration. Keeping
//! one decomposition guarantees the timing model and the executed code
//! agree on grain size — the quantity the paper's AMT-overhead discussion
//! revolves around.

use std::ops::Range;

/// A row-block decomposition of an `nx × ny` stencil step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StencilPlan {
    nx: usize,
    ny: usize,
    chunks: usize,
}

impl StencilPlan {
    /// Split `ny` rows into `chunks` row blocks.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(nx: usize, ny: usize, chunks: usize) -> StencilPlan {
        assert!(nx > 0 && ny > 0 && chunks > 0);
        StencilPlan { nx, ny, chunks: chunks.min(ny) }
    }

    /// Grid width.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of chunk tasks per time step.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Row ranges, one per chunk task.
    pub fn ranges(&self) -> Vec<Range<usize>> {
        parallex::topology::block_ranges(self.ny, self.chunks)
    }

    /// Lattice-site updates chunk `i` performs per step.
    pub fn chunk_lups(&self, i: usize) -> usize {
        self.ranges()[i].len() * self.nx
    }

    /// Updates per step over the whole grid.
    pub fn step_lups(&self) -> usize {
        self.nx * self.ny
    }

    /// Which chunk owns row `y`.
    pub fn chunk_of_row(&self, y: usize) -> usize {
        self.ranges()
            .iter()
            .position(|r| r.contains(&y))
            .expect("row within grid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_all_rows() {
        let p = StencilPlan::new(64, 100, 7);
        let ranges = p.ranges();
        assert_eq!(ranges.len(), 7);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 100);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 100);
    }

    #[test]
    fn chunk_lups_sum_to_step_lups() {
        let p = StencilPlan::new(128, 57, 5);
        let sum: usize = (0..p.chunks()).map(|i| p.chunk_lups(i)).sum();
        assert_eq!(sum, p.step_lups());
    }

    #[test]
    fn more_chunks_than_rows_is_clamped() {
        let p = StencilPlan::new(8, 3, 100);
        assert_eq!(p.chunks(), 3);
    }

    #[test]
    fn chunk_of_row_is_consistent_with_ranges() {
        let p = StencilPlan::new(8, 40, 6);
        for y in 0..40 {
            let c = p.chunk_of_row(y);
            assert!(p.ranges()[c].contains(&y));
        }
    }
}
