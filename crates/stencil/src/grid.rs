//! The `Grid` container of Listing 2, in both data layouts.
//!
//! [`ScalarGrid`] is a plain row-major grid with a one-cell halo ring —
//! what the auto-vectorized kernel iterates. [`VnsGrid`] stores each row
//! in the Virtual Node Scheme packed layout ([`parallex_simd::vns`]) with
//! per-row pack halos — what the explicitly vectorized kernel iterates,
//! maintaining the halos with the lane shuffle of Listing 2 line 18.

use parallex_simd::traits::Element;
use parallex_simd::vns::VnsRow;
use parallex_simd::Pack;

/// Row-major grid with a one-cell halo ring. Interior cells are addressed
/// `0..nx` × `0..ny`; the halo holds Dirichlet boundary values.
#[derive(Clone, Debug)]
pub struct ScalarGrid<T: Element> {
    nx: usize,
    ny: usize,
    /// `(ny + 2) * (nx + 2)` cells, row-major, halo included.
    data: Vec<T>,
}

impl<T: Element> ScalarGrid<T> {
    /// Grid of zeros (boundary included).
    pub fn zeros(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0);
        ScalarGrid { nx, ny, data: vec![T::ZERO; (nx + 2) * (ny + 2)] }
    }

    /// Build with an initializer over *interior* coordinates.
    pub fn from_fn(nx: usize, ny: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut g = ScalarGrid::zeros(nx, ny);
        for y in 0..ny {
            for x in 0..nx {
                g.set(x, y, f(x, y));
            }
        }
        g
    }

    /// Interior width.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior height.
    pub fn ny(&self) -> usize {
        self.ny
    }

    #[inline(always)]
    fn idx(&self, x: usize, y: usize) -> usize {
        // x, y are interior coordinates; +1 skips the halo.
        (y + 1) * (self.nx + 2) + (x + 1)
    }

    /// Read an interior cell.
    #[inline(always)]
    pub fn get(&self, x: usize, y: usize) -> T {
        self.data[self.idx(x, y)]
    }

    /// Write an interior cell.
    #[inline(always)]
    pub fn set(&mut self, x: usize, y: usize, v: T) {
        let i = self.idx(x, y);
        self.data[i] = v;
    }

    /// Read including the halo ring: coordinates shifted by one, so
    /// `(0, 0)` is the top-left halo corner.
    #[inline(always)]
    pub fn get_halo(&self, hx: usize, hy: usize) -> T {
        self.data[hy * (self.nx + 2) + hx]
    }

    /// Set every halo cell to `v` (Dirichlet boundary).
    pub fn set_boundary(&mut self, v: T) {
        let w = self.nx + 2;
        let h = self.ny + 2;
        for x in 0..w {
            self.data[x] = v;
            self.data[(h - 1) * w + x] = v;
        }
        for y in 0..h {
            self.data[y * w] = v;
            self.data[y * w + w - 1] = v;
        }
    }

    /// One full interior row including its left/right halo cells
    /// (`nx + 2` elements).
    #[inline(always)]
    pub fn row_with_halo(&self, y: usize) -> &[T] {
        let w = self.nx + 2;
        &self.data[(y + 1) * w..(y + 2) * w]
    }

    /// Raw row `hy` in halo coordinates (`0..ny + 2`), `nx + 2` elements.
    /// `raw_row(y + 1)` is interior row `y`; rows `0` and `ny + 1` are the
    /// top/bottom halo rows.
    #[inline(always)]
    pub fn raw_row(&self, hy: usize) -> &[T] {
        let w = self.nx + 2;
        &self.data[hy * w..(hy + 1) * w]
    }

    /// Overwrite the interior columns of the *top* halo row (row `-1`) —
    /// used by distributed solvers whose upper neighbour supplies it.
    ///
    /// # Panics
    /// Panics if `vals.len() != nx`.
    pub fn set_top_halo_row(&mut self, vals: &[T]) {
        assert_eq!(vals.len(), self.nx);
        self.data[1..1 + self.nx].copy_from_slice(vals);
    }

    /// Overwrite the interior columns of the *bottom* halo row (row `ny`).
    ///
    /// # Panics
    /// Panics if `vals.len() != nx`.
    pub fn set_bottom_halo_row(&mut self, vals: &[T]) {
        assert_eq!(vals.len(), self.nx);
        let w = self.nx + 2;
        let start = (self.ny + 1) * w + 1;
        self.data[start..start + self.nx].copy_from_slice(vals);
    }

    /// The interior columns of interior row `y`, as a fresh Vec (what a
    /// distributed solver ships to its neighbour).
    pub fn interior_row(&self, y: usize) -> Vec<T> {
        let w = self.nx + 2;
        let start = (y + 1) * w + 1;
        self.data[start..start + self.nx].to_vec()
    }

    /// Disjoint mutable views of every interior row (halo cells excluded),
    /// for parallel row-wise updates.
    pub fn interior_rows_mut(&mut self) -> Vec<&mut [T]> {
        let w = self.nx + 2;
        let nx = self.nx;
        let mut rest = &mut self.data[w..]; // skip the top halo row
        let mut out = Vec::with_capacity(self.ny);
        for _ in 0..self.ny {
            let (row, r) = rest.split_at_mut(w);
            out.push(&mut row[1..1 + nx]);
            rest = r;
        }
        out
    }

    /// Mutable interior row (without halo cells).
    #[inline(always)]
    pub fn row_interior_mut(&mut self, y: usize) -> &mut [T] {
        let w = self.nx + 2;
        let start = (y + 1) * w + 1;
        &mut self.data[start..start + self.nx]
    }

    /// Interior values in row-major order.
    pub fn interior(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.nx * self.ny);
        for y in 0..self.ny {
            for x in 0..self.nx {
                out.push(self.get(x, y));
            }
        }
        out
    }

    /// Max |a - b| over the interior of two same-shaped grids.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &ScalarGrid<T>) -> f64 {
        assert_eq!((self.nx, self.ny), (other.nx, other.ny));
        let mut m = 0.0f64;
        for y in 0..self.ny {
            for x in 0..self.nx {
                m = m.max((self.get(x, y).to_f64() - other.get(x, y).to_f64()).abs());
            }
        }
        m
    }
}

/// A grid whose rows are stored in the Virtual Node Scheme packed layout:
/// `ny + 2` rows (top/bottom boundary rows included), each a packed row of
/// `nx / W` interior packs plus two halo packs.
#[derive(Clone, Debug)]
pub struct VnsGrid<T: Element, const W: usize> {
    nx: usize,
    ny: usize,
    boundary: T,
    /// `ny + 2` packed rows; row 0 and row `ny + 1` are boundary rows.
    rows: Vec<VnsRow<T, W>>,
}

impl<T: Element, const W: usize> VnsGrid<T, W> {
    /// Build from a scalar grid (the interior is re-laid-out; the halo
    /// value is read from the scalar grid's boundary ring corner).
    ///
    /// # Panics
    /// Panics if `nx` is not a positive multiple of `W`.
    pub fn from_scalar(src: &ScalarGrid<T>) -> Self {
        let nx = src.nx();
        let ny = src.ny();
        assert!(nx % W == 0 && nx > 0, "nx={nx} must be a multiple of W={W}");
        let boundary = src.get_halo(0, 0);
        let mut rows = Vec::with_capacity(ny + 2);
        // Boundary rows replicate the Dirichlet value.
        let boundary_scalars = vec![boundary; nx];
        rows.push(VnsRow::from_scalars(&boundary_scalars, boundary, boundary));
        for y in 0..ny {
            let scalars: Vec<T> = (0..nx).map(|x| src.get(x, y)).collect();
            rows.push(VnsRow::from_scalars(&scalars, boundary, boundary));
        }
        rows.push(VnsRow::from_scalars(&boundary_scalars, boundary, boundary));
        VnsGrid { nx, ny, boundary, rows }
    }

    /// Interior width in scalars.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior height.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Interior packs per row.
    pub fn m(&self) -> usize {
        self.nx / W
    }

    /// The Dirichlet boundary value.
    pub fn boundary(&self) -> T {
        self.boundary
    }

    /// Packed row `y` (0 = top boundary row, `1..=ny` interior,
    /// `ny + 1` = bottom boundary row).
    #[inline(always)]
    pub fn row(&self, y: usize) -> &VnsRow<T, W> {
        &self.rows[y]
    }

    /// Mutable packed row.
    #[inline(always)]
    pub fn row_mut(&mut self, y: usize) -> &mut VnsRow<T, W> {
        &mut self.rows[y]
    }

    /// Disjoint mutable views of the `ny` interior packed rows.
    pub fn interior_rows_mut(&mut self) -> Vec<&mut VnsRow<T, W>> {
        let ny = self.ny;
        self.rows[1..=ny].iter_mut().collect()
    }

    /// Raw split access for the update kernel: packs of three consecutive
    /// rows (above / at / below interior row `y`, 1-based).
    #[inline(always)]
    #[allow(clippy::type_complexity)] // three row views, clearer inline
    pub fn stencil_rows(&self, y: usize) -> (&[Pack<T, W>], &[Pack<T, W>], &[Pack<T, W>]) {
        (self.rows[y - 1].packs(), self.rows[y].packs(), self.rows[y + 1].packs())
    }

    /// Convert back to a scalar grid (boundary ring set to the Dirichlet
    /// value).
    pub fn to_scalar(&self) -> ScalarGrid<T> {
        let mut g = ScalarGrid::zeros(self.nx, self.ny);
        g.set_boundary(self.boundary);
        for y in 0..self.ny {
            let scalars = self.rows[y + 1].to_scalars();
            for (x, v) in scalars.into_iter().enumerate() {
                g.set(x, y, v);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_set_get() {
        let mut g = ScalarGrid::<f64>::zeros(4, 3);
        assert_eq!(g.get(2, 1), 0.0);
        g.set(2, 1, 5.0);
        assert_eq!(g.get(2, 1), 5.0);
        assert_eq!((g.nx(), g.ny()), (4, 3));
    }

    #[test]
    fn from_fn_addresses_interior() {
        let g = ScalarGrid::from_fn(3, 2, |x, y| (10 * y + x) as f32);
        assert_eq!(g.get(0, 0), 0.0);
        assert_eq!(g.get(2, 1), 12.0);
    }

    #[test]
    fn boundary_ring_wraps_interior() {
        let mut g = ScalarGrid::<f64>::zeros(2, 2);
        g.set_boundary(9.0);
        assert_eq!(g.get_halo(0, 0), 9.0);
        assert_eq!(g.get_halo(3, 3), 9.0);
        assert_eq!(g.get_halo(0, 2), 9.0);
        // Interior untouched.
        assert_eq!(g.get(0, 0), 0.0);
    }

    #[test]
    fn row_views_are_consistent() {
        let mut g = ScalarGrid::<f64>::zeros(4, 2);
        g.set_boundary(1.0);
        g.set(0, 1, 7.0);
        let row = g.row_with_halo(1);
        assert_eq!(row.len(), 6);
        assert_eq!(row[0], 1.0, "left halo");
        assert_eq!(row[1], 7.0, "first interior");
        g.row_interior_mut(1)[3] = 8.0;
        assert_eq!(g.get(3, 1), 8.0);
    }

    #[test]
    fn vns_roundtrip_preserves_interior() {
        let src = ScalarGrid::from_fn(8, 5, |x, y| (y * 8 + x) as f64);
        let vns = VnsGrid::<f64, 4>::from_scalar(&src);
        assert_eq!(vns.m(), 2);
        let back = vns.to_scalar();
        assert_eq!(back.interior(), src.interior());
    }

    #[test]
    fn vns_boundary_rows_hold_dirichlet_value() {
        let mut src = ScalarGrid::<f32>::zeros(4, 2);
        src.set_boundary(3.0);
        let vns = VnsGrid::<f32, 4>::from_scalar(&src);
        assert_eq!(vns.boundary(), 3.0);
        for s in vns.row(0).to_scalars() {
            assert_eq!(s, 3.0);
        }
        for s in vns.row(3).to_scalars() {
            assert_eq!(s, 3.0);
        }
    }

    #[test]
    #[should_panic]
    fn vns_requires_multiple_of_width() {
        let src = ScalarGrid::<f64>::zeros(6, 2);
        let _ = VnsGrid::<f64, 4>::from_scalar(&src);
    }

    #[test]
    fn stencil_rows_expose_three_rows() {
        let src = ScalarGrid::from_fn(4, 3, |x, y| (y * 4 + x) as f64);
        let vns = VnsGrid::<f64, 4>::from_scalar(&src);
        let (above, at, below) = vns.stencil_rows(1);
        assert_eq!(above.len(), 3); // m + 2 halo packs
        assert_eq!(at.len(), 3);
        assert_eq!(below.len(), 3);
        // Row above interior row 1 is the boundary row (zeros).
        assert_eq!(above[1].to_array(), [0.0; 4]);
        // Below is interior row 2 of the source (values 4..8 in VNS order:
        // m = 1, so pack 0 lane v = scalar v).
        assert_eq!(below[1].to_array(), [4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn max_abs_diff_detects_differences() {
        let a = ScalarGrid::from_fn(3, 3, |_, _| 1.0f64);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(1, 1, 1.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
