//! Native STREAM (McCalpin) on the host.
//!
//! The paper uses STREAM COPY as its bandwidth reference (Fig. 2); the
//! full suite (COPY, SCALE, SUM/ADD, TRIAD) is provided for completeness.
//! One block per worker (first-touch: each worker initializes the block it
//! will stream, the same NUMA discipline the paper enforces), best
//! bandwidth over `reps` repetitions reported.

use parallex::algorithms::par;
use parallex::runtime::Runtime;
use parallex::util::HighResolutionTimer;

/// The four STREAM kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamKernel {
    /// `c[i] = a[i]` — 16 B/elem (the paper's Fig. 2 kernel).
    Copy,
    /// `b[i] = s * c[i]` — 16 B/elem.
    Scale,
    /// `c[i] = a[i] + b[i]` — 24 B/elem.
    Add,
    /// `a[i] = b[i] + s * c[i]` — 24 B/elem.
    Triad,
}

impl StreamKernel {
    /// Bytes moved per element (read + write traffic, doubles).
    pub fn bytes_per_elem(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
        }
    }

    /// Kernel name as STREAM prints it.
    pub fn name(self) -> &'static str {
        match self {
            StreamKernel::Copy => "Copy",
            StreamKernel::Scale => "Scale",
            StreamKernel::Add => "Add",
            StreamKernel::Triad => "Triad",
        }
    }

    /// All four kernels in STREAM's reporting order.
    pub const ALL: [StreamKernel; 4] =
        [StreamKernel::Copy, StreamKernel::Scale, StreamKernel::Add, StreamKernel::Triad];
}

/// Result of a STREAM measurement.
#[derive(Clone, Copy, Debug)]
pub struct StreamResult {
    /// Which kernel ran.
    pub kernel: StreamKernel,
    /// Best observed bandwidth, GB/s.
    pub best_gbs: f64,
    /// Repetitions run.
    pub reps: usize,
}

const SCALAR: f64 = 3.0;

/// Run one STREAM kernel with `elems` doubles over `reps` repetitions on
/// the runtime's workers, returning the best bandwidth (the paper reports
/// the highest of ten runs).
pub fn stream_host(rt: &Runtime, kernel: StreamKernel, elems: usize, reps: usize) -> StreamResult {
    assert!(elems > 0 && reps > 0);
    let policy = || par(rt).per_worker().block();
    // First-touch initialization with the same block distribution the
    // kernels use.
    let mut a = vec![0.0f64; elems];
    let mut b = vec![0.0f64; elems];
    let mut c = vec![0.0f64; elems];
    policy().for_each_mut(&mut a, |i, v| *v = 1.0 + (i % 7) as f64);
    policy().for_each_mut(&mut b, |i, v| *v = 2.0 + (i % 5) as f64);
    policy().for_each_mut(&mut c, |i, v| *v = 0.5 * (i % 3) as f64);

    let mut best = 0.0f64;
    for _ in 0..reps {
        let t = HighResolutionTimer::new();
        match kernel {
            StreamKernel::Copy => {
                let src = &a;
                policy().for_each_mut(&mut c, |i, v| *v = src[i]);
            }
            StreamKernel::Scale => {
                let src = &c;
                policy().for_each_mut(&mut b, |i, v| *v = SCALAR * src[i]);
            }
            StreamKernel::Add => {
                let (x, y) = (&a, &b);
                policy().for_each_mut(&mut c, |i, v| *v = x[i] + y[i]);
            }
            StreamKernel::Triad => {
                let (x, y) = (&b, &c);
                policy().for_each_mut(&mut a, |i, v| *v = x[i] + SCALAR * y[i]);
            }
        }
        let secs = t.elapsed();
        let gbs = (elems * kernel.bytes_per_elem()) as f64 / secs / 1e9;
        best = best.max(gbs);
    }
    // Spot-check the arithmetic so the loops cannot be optimized away.
    match kernel {
        StreamKernel::Copy => assert_eq!(c[elems / 2], a[elems / 2]),
        StreamKernel::Scale => assert_eq!(b[elems / 2], SCALAR * c[elems / 2]),
        StreamKernel::Add => assert_eq!(c[elems / 2], a[elems / 2] + b[elems / 2]),
        StreamKernel::Triad => assert_eq!(a[elems / 2], b[elems / 2] + SCALAR * c[elems / 2]),
    }
    StreamResult { kernel, best_gbs: best, reps }
}

/// STREAM COPY (the Fig. 2 measurement), kept as the primary entry point.
pub fn stream_copy_host(rt: &Runtime, elems: usize, reps: usize) -> StreamResult {
    stream_host(rt, StreamKernel::Copy, elems, reps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_correctly_and_reports_positive_bandwidth() {
        let rt = Runtime::builder().worker_threads(2).build();
        let r = stream_copy_host(&rt, 1 << 16, 3);
        assert!(r.best_gbs > 0.0);
        assert_eq!(r.reps, 3);
        assert_eq!(r.kernel, StreamKernel::Copy);
        rt.shutdown();
    }

    #[test]
    fn all_four_kernels_run_and_verify() {
        let rt = Runtime::builder().worker_threads(2).build();
        for k in StreamKernel::ALL {
            let r = stream_host(&rt, k, 1 << 14, 2);
            assert!(r.best_gbs > 0.0, "{:?}", k);
        }
        rt.shutdown();
    }

    #[test]
    fn triad_moves_more_bytes_than_copy() {
        assert_eq!(StreamKernel::Copy.bytes_per_elem(), 16);
        assert_eq!(StreamKernel::Triad.bytes_per_elem(), 24);
        assert_eq!(StreamKernel::ALL.len(), 4);
    }

    #[test]
    fn best_of_many_is_at_least_best_of_few() {
        // More repetitions can only raise (or keep) the best.
        let rt = Runtime::builder().worker_threads(2).build();
        let few = stream_copy_host(&rt, 1 << 14, 1);
        let many = stream_copy_host(&rt, 1 << 14, 5);
        // Not strictly guaranteed across separate calls, but with identical
        // state the 5-rep best should rarely lose by much; allow slack.
        assert!(many.best_gbs > 0.2 * few.best_gbs);
        rt.shutdown();
    }

    #[test]
    #[should_panic]
    fn zero_elems_rejected() {
        let rt = Runtime::builder().worker_threads(1).build();
        let _ = stream_copy_host(&rt, 0, 1);
    }
}
