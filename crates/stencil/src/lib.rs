//! # parallex-stencil
//!
//! The paper's two benchmark applications, implemented for real on the
//! `parallex` AMT runtime:
//!
//! * [`heat1d`] — the fully distributed 1D heat-equation solver of
//!   Listing 1 / Eq. 3: block-partitioned over the localities of a
//!   [`parallex::locality::Cluster`], halo cells shipped as parcels, and
//!   the time-stepper structured so communication overlaps interior
//!   compute (Section VII-A's latency hiding).
//! * [`jacobi2d`] — the shared-memory 2D Jacobi solver of Listing 2 /
//!   Eq. 4, written once over a generic element ([`parallex_simd::Vectorizable`])
//!   so the same kernel runs in scalar ("auto-vectorized") form and in
//!   explicit Virtual-Node-Scheme SIMD form with the halo shuffle.
//! * [`grid`] — the `Grid` container of Listing 2 with both data layouts.
//! * [`stream`] — a native STREAM COPY benchmark (the Fig. 2 measurement,
//!   runnable on the host).
//! * [`plan`] — the task decomposition shared between real execution and
//!   the `parallex-perfsim` timing model.
//! * [`verify`] — analytic solutions (exact discrete Fourier decay for the
//!   heat equation, boundary-consistency checks for Jacobi) used by the
//!   test suite.

pub mod grid;
pub mod halo;
pub mod heat1d;
pub mod heat1d_dataflow;
pub mod jacobi2d;
pub mod jacobi2d_dist;
pub mod plan;
pub mod stream;
pub mod verify;

pub use grid::{ScalarGrid, VnsGrid};
pub use heat1d::{Heat1dParams, Heat1dSolver};
pub use jacobi2d::{Jacobi2d, JacobiLayout};
pub use jacobi2d_dist::{Jacobi2dDist, Jacobi2dDistParams};
