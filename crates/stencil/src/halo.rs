//! Generic halo mailbox: per-locality buffering of tagged, time-stamped
//! neighbour data arriving as parcels.
//!
//! Both distributed solvers (1D cells, 2D rows) need the same thing:
//! `put(tag, step, value)` from the parcel handler, `take(tag, step)` as a
//! future from the time-stepper, correct under out-of-order arrival. One
//! mutex guards both maps, so a value can never land in the buffer while a
//! waiter parks (the two-lock version of this once lost halos).

use parallex::lcos::future::{Future, Promise};
use parallex::locality::Locality;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

type Key = (u8, u64);

struct MailboxState<V: Send + 'static> {
    values: HashMap<Key, V>,
    waiters: HashMap<Key, Promise<V>>,
}

/// A mailbox for neighbour data keyed by `(tag, step)`.
pub struct HaloMailbox<V: Send + 'static> {
    state: Mutex<MailboxState<V>>,
    /// `take`s whose value had already arrived (fully overlapped
    /// communication).
    ready_takes: AtomicUsize,
    /// `take`s that parked a waiter (exposed communication).
    parked_takes: AtomicUsize,
}

impl<V: Send + 'static> Default for HaloMailbox<V> {
    fn default() -> Self {
        HaloMailbox {
            state: Mutex::new(MailboxState { values: HashMap::new(), waiters: HashMap::new() }),
            ready_takes: AtomicUsize::new(0),
            parked_takes: AtomicUsize::new(0),
        }
    }
}

impl<V: Send + 'static> HaloMailbox<V> {
    /// Empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deliver a value (parcel-handler side).
    pub fn put(&self, tag: u8, step: u64, v: V) {
        let to_fulfil = {
            let mut st = self.state.lock();
            match st.waiters.remove(&(tag, step)) {
                Some(p) => Some((p, v)),
                None => {
                    st.values.insert((tag, step), v);
                    None
                }
            }
        };
        // Fulfil outside the lock: the continuation may run inline.
        if let Some((p, v)) = to_fulfil {
            p.set_value(v);
        }
    }

    /// Future of the value for `(tag, step)` (consumer side).
    pub fn take(&self, loc: &Locality, tag: u8, step: u64) -> Future<V> {
        let mut promise = loc.runtime().make_promise();
        let future = promise.future();
        let ready = {
            let mut st = self.state.lock();
            match st.values.remove(&(tag, step)) {
                Some(v) => Some(v),
                None => {
                    st.waiters.insert((tag, step), promise);
                    None
                }
            }
        };
        match ready {
            Some(v) => {
                self.ready_takes.fetch_add(1, Ordering::Relaxed);
                let mut p = loc.runtime().make_promise();
                let f = p.future();
                p.set_value(v);
                f
            }
            None => {
                self.parked_takes.fetch_add(1, Ordering::Relaxed);
                future
            }
        }
    }

    /// `(already_arrived, had_to_wait)` take counts — the direct overlap
    /// measurement behind the latency-hiding tests.
    pub fn take_stats(&self) -> (usize, usize) {
        (
            self.ready_takes.load(Ordering::Relaxed),
            self.parked_takes.load(Ordering::Relaxed),
        )
    }

    /// Buffered (delivered but unconsumed) values.
    pub fn buffered(&self) -> usize {
        self.state.lock().values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallex::locality::Cluster;

    #[test]
    fn put_then_take_is_ready() {
        let c = Cluster::new(1, 1);
        let m: HaloMailbox<Vec<f64>> = HaloMailbox::new();
        m.put(0, 7, vec![1.0, 2.0]);
        assert_eq!(m.buffered(), 1);
        let f = m.take(&c.locality(0), 0, 7);
        assert_eq!(f.get(), vec![1.0, 2.0]);
        assert_eq!(m.take_stats(), (1, 0));
        c.shutdown();
    }

    #[test]
    fn take_then_put_resolves_waiter() {
        let c = Cluster::new(1, 1);
        let m: HaloMailbox<i64> = HaloMailbox::new();
        let f = m.take(&c.locality(0), 3, 0);
        assert!(!f.is_ready());
        m.put(3, 0, -9);
        assert_eq!(f.get(), -9);
        assert_eq!(m.take_stats(), (0, 1));
        c.shutdown();
    }

    #[test]
    fn tags_and_steps_do_not_collide() {
        let c = Cluster::new(1, 1);
        let m: HaloMailbox<u32> = HaloMailbox::new();
        m.put(0, 0, 1);
        m.put(1, 0, 2);
        m.put(0, 1, 3);
        assert_eq!(m.take(&c.locality(0), 0, 1).get(), 3);
        assert_eq!(m.take(&c.locality(0), 1, 0).get(), 2);
        assert_eq!(m.take(&c.locality(0), 0, 0).get(), 1);
        c.shutdown();
    }

    #[test]
    fn concurrent_put_take_never_loses_values() {
        // The regression test for the two-lock race: hammer put/take from
        // two threads; every value must arrive.
        let c = Cluster::new(1, 2);
        let m = std::sync::Arc::new(HaloMailbox::<u64>::new());
        let loc = c.locality(0);
        const N: u64 = 2000;
        let m2 = m.clone();
        let producer = std::thread::spawn(move || {
            for s in 0..N {
                m2.put(0, s, s * 3);
            }
        });
        let mut sum = 0u64;
        for s in 0..N {
            sum += m.take(&loc, 0, s).get();
        }
        producer.join().unwrap();
        assert_eq!(sum, 3 * N * (N - 1) / 2);
        c.shutdown();
    }
}
