//! Reference solutions for the test suite.
//!
//! * [`heat1d_reference`] — straightforward serial time-stepping of Eq. 3,
//!   against which the distributed solver must agree to machine precision.
//! * [`heat1d_exact_sine_mode`] — the *exact* solution of the discrete
//!   update for a sine-mode initial condition: mode `k` decays by a
//!   constant factor per step, `λ_k = 1 - 4 r sin²(kπ / (2(N+1)))`. This
//!   pins the solver to the PDE discretization, not just to another
//!   implementation.
//! * [`jacobi_reference_step`] — serial 5-point Jacobi sweep (Eq. 4).

use crate::grid::ScalarGrid;
use parallex_simd::traits::Element;

/// Serial reference for the distributed 1D solver: `steps` updates of
/// Eq. 3 with Dirichlet BCs.
pub fn heat1d_reference(
    n: usize,
    steps: usize,
    r: f64,
    left_bc: f64,
    right_bc: f64,
    init: impl Fn(usize) -> f64,
) -> Vec<f64> {
    let mut u: Vec<f64> = (0..n).map(init).collect();
    let mut next = vec![0.0; n];
    for _ in 0..steps {
        for x in 0..n {
            let left = if x == 0 { left_bc } else { u[x - 1] };
            let right = if x + 1 == n { right_bc } else { u[x + 1] };
            next[x] = u[x] + r * (left - 2.0 * u[x] + right);
        }
        std::mem::swap(&mut u, &mut next);
    }
    u
}

/// Decay factor per step of discrete sine mode `k` on `n` interior points.
pub fn heat1d_mode_decay(n: usize, k: usize, r: f64) -> f64 {
    let theta = k as f64 * std::f64::consts::PI / (2.0 * (n as f64 + 1.0));
    1.0 - 4.0 * r * theta.sin().powi(2)
}

/// Exact value of cell `i` after `steps` updates starting from
/// `sin(kπ(i+1)/(n+1))` with zero BCs.
pub fn heat1d_exact_sine_mode(n: usize, k: usize, r: f64, steps: usize, i: usize) -> f64 {
    let lambda = heat1d_mode_decay(n, k, r);
    let x = (i as f64 + 1.0) * k as f64 * std::f64::consts::PI / (n as f64 + 1.0);
    lambda.powi(steps as i32) * x.sin()
}

/// The sine-mode initial condition matching [`heat1d_exact_sine_mode`].
pub fn sine_mode_init(n: usize, k: usize) -> impl Fn(usize) -> f64 {
    move |i| ((i as f64 + 1.0) * k as f64 * std::f64::consts::PI / (n as f64 + 1.0)).sin()
}

/// Max |a - b| over two equal-length slices.
///
/// # Panics
/// Panics on length mismatch.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// One serial Jacobi sweep (Eq. 4) as a reference for the parallel and
/// VNS kernels.
pub fn jacobi_reference_step<T: Element>(cur: &ScalarGrid<T>) -> ScalarGrid<T> {
    let mut next = cur.clone();
    let quarter = T::from_f64(0.25);
    for y in 0..cur.ny() {
        for x in 0..cur.nx() {
            let up = cur.raw_row(y);
            let mid = cur.raw_row(y + 1);
            let down = cur.raw_row(y + 2);
            let hx = x + 1;
            next.set(x, y, (mid[hx - 1] + mid[hx + 1] + up[hx] + down[hx]) * quarter);
        }
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi2d::Jacobi2d;
    use parallex::algorithms::seq;

    #[test]
    fn reference_preserves_constant_field_with_matching_bcs() {
        let out = heat1d_reference(10, 50, 0.4, 2.0, 2.0, |_| 2.0);
        for v in out {
            assert!((v - 2.0).abs() < 1e-15);
        }
    }

    #[test]
    fn sine_mode_decays_exactly() {
        let (n, k, r, steps) = (31, 1, 0.4, 40);
        let got = heat1d_reference(n, steps, r, 0.0, 0.0, sine_mode_init(n, k));
        for (i, &cell) in got.iter().enumerate() {
            let want = heat1d_exact_sine_mode(n, k, r, steps, i);
            assert!((cell - want).abs() < 1e-12, "cell {i}: {cell} vs {want}");
        }
    }

    #[test]
    fn higher_modes_decay_faster() {
        let (n, r) = (63, 0.25);
        assert!(heat1d_mode_decay(n, 3, r) < heat1d_mode_decay(n, 1, r));
        assert!(heat1d_mode_decay(n, 1, r) < 1.0);
        assert!(heat1d_mode_decay(n, 1, r) > 0.0);
    }

    #[test]
    fn jacobi_reference_matches_solver_step() {
        let mut j = Jacobi2d::new(8, 6, 0.25, |x, y| (x as f64 - y as f64) * 0.5);
        let reference = jacobi_reference_step(j.grid());
        j.step(&seq());
        assert_eq!(j.grid().max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn max_abs_diff_basics() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
