//! Per-NUMA-domain memory bandwidth saturation.
//!
//! Two observations from the paper drive this module:
//!
//! 1. **Fig. 2 (STREAM COPY)**: aggregate bandwidth rises roughly linearly
//!    with core count until each NUMA domain's memory controllers saturate,
//!    then plateaus; adding the next domain's cores raises the plateau.
//! 2. **Section VII-B (Kunpeng 916 dips)**: when some NUMA domains are
//!    fully populated and another is only partially populated, the
//!    partially populated domain becomes the *critical path* — its cores
//!    see effectively less bandwidth (first-touch pages and stolen tasks
//!    land remotely, and its controllers run at poor efficiency), so a
//!    statically balanced stencil *loses* throughput going from 32 to 40
//!    cores, recovers at 48, dips again at 56. We model this with a single
//!    per-processor penalty factor applied to the per-core bandwidth of a
//!    part-filled domain whenever at least one other domain is full.
//!
//! STREAM itself (independent per-core streams, best-of-N reported) does
//! not suffer the imbalance, so [`MemorySystem::stream_aggregate_gbs`]
//! applies no penalty, while the stencil execution model uses
//! [`MemorySystem::min_per_core_bw`], which does.

use crate::spec::Processor;

/// How many cores are active in each NUMA domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainPopulation(pub Vec<usize>);

impl DomainPopulation {
    /// Fill domains one after another (hwloc-bind physical-order pinning,
    /// which is what the paper uses): first `cores_per_domain` cores land
    /// in domain 0, the next in domain 1, and so on.
    ///
    /// # Panics
    /// Panics if `n` exceeds the node's core count.
    pub fn fill_sequential(proc: &Processor, n: usize) -> Self {
        assert!(n <= proc.total_cores(), "{n} cores > node size {}", proc.total_cores());
        let per = proc.cores_per_domain();
        let mut left = n;
        let pops = (0..proc.numa_domains)
            .map(|_| {
                let take = left.min(per);
                left -= take;
                take
            })
            .collect();
        DomainPopulation(pops)
    }

    /// Spread cores round-robin across domains (maximizes early bandwidth;
    /// provided for ablations).
    pub fn fill_balanced(proc: &Processor, n: usize) -> Self {
        assert!(n <= proc.total_cores(), "{n} cores > node size {}", proc.total_cores());
        let d = proc.numa_domains;
        let pops = (0..d).map(|i| n / d + usize::from(i < n % d)).collect();
        DomainPopulation(pops)
    }

    /// Total active cores.
    pub fn total(&self) -> usize {
        self.0.iter().sum()
    }

    /// True if any domain is filled to `full` cores.
    pub fn any_full(&self, full: usize) -> bool {
        self.0.contains(&full)
    }
}

/// Bandwidth model for one node.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    proc: Processor,
}

impl MemorySystem {
    /// Build the model for a processor.
    pub fn new(proc: &Processor) -> Self {
        MemorySystem { proc: proc.clone() }
    }

    /// The processor this models.
    pub fn processor(&self) -> &Processor {
        &self.proc
    }

    /// Aggregate bandwidth one domain sustains with `active` cores
    /// streaming: linear in cores until the controllers saturate.
    pub fn domain_stream_bw(&self, active: usize) -> f64 {
        (active as f64 * self.proc.core_bw_gbs).min(self.proc.domain_bw_gbs)
    }

    /// Node STREAM COPY bandwidth for a placement — the Fig. 2 model. Sum
    /// of per-domain saturating curves, no imbalance penalty (STREAM's
    /// arrays are first-touched by the core that streams them).
    pub fn stream_aggregate_gbs(&self, pop: &DomainPopulation) -> f64 {
        pop.0.iter().map(|&p| self.domain_stream_bw(p)).sum()
    }

    /// Convenience: STREAM bandwidth at `n` cores with sequential pinning.
    pub fn stream_at(&self, n: usize) -> f64 {
        self.stream_aggregate_gbs(&DomainPopulation::fill_sequential(&self.proc, n))
    }

    /// Per-core sustainable bandwidth in each domain for a *bulk
    /// synchronous* workload (every core gets an equal share of work and
    /// the step ends when the slowest finishes). Applies the
    /// partially-populated-domain penalty when at least one other domain is
    /// completely full — the Kunpeng-dip mechanism.
    pub fn per_core_bw(&self, pop: &DomainPopulation) -> Vec<f64> {
        let full = self.proc.cores_per_domain();
        // The imbalance penalty needs at least two saturated domains: with
        // a single full domain the fabric still has headroom to absorb the
        // part-filled domain's remote traffic (the paper observes dips at
        // 40 and 56 cores on the Kunpeng — 2 resp. 3 full domains — but not
        // in the ≤32-core region).
        let imbalanced = pop.0.iter().filter(|&&p| p == full).count() >= 2;
        pop.0
            .iter()
            .map(|&p| {
                if p == 0 {
                    return f64::INFINITY; // no cores here: never the critical path
                }
                let fair = self.proc.core_bw_gbs.min(self.proc.domain_bw_gbs / p as f64);
                if imbalanced && p < full {
                    // Critical-path core of a part-filled domain: behaves
                    // like a core of a *full* domain would, further degraded
                    // by the imbalance penalty.
                    (self.proc.domain_bw_gbs / full as f64) * self.proc.partial_domain_penalty
                } else {
                    fair
                }
            })
            .collect()
    }

    /// Bandwidth available to the slowest active core — what determines a
    /// statically-partitioned stencil's step time.
    pub fn min_per_core_bw(&self, pop: &DomainPopulation) -> f64 {
        self.per_core_bw(pop)
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }

    /// Effective node throughput-bandwidth for a bulk-synchronous kernel:
    /// `n_cores * min_per_core_bw`. This is the quantity whose dips
    /// reproduce Fig. 5's 40- and 56-core anomalies.
    pub fn effective_bsp_bw(&self, pop: &DomainPopulation) -> f64 {
        pop.total() as f64 * self.min_per_core_bw(pop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProcessorId;

    fn kunpeng() -> MemorySystem {
        MemorySystem::new(&ProcessorId::Kunpeng916.spec())
    }

    #[test]
    fn sequential_fill_packs_domains() {
        let p = ProcessorId::Kunpeng916.spec();
        assert_eq!(DomainPopulation::fill_sequential(&p, 40).0, vec![16, 16, 8, 0]);
        assert_eq!(DomainPopulation::fill_sequential(&p, 64).0, vec![16, 16, 16, 16]);
        assert_eq!(DomainPopulation::fill_sequential(&p, 5).0, vec![5, 0, 0, 0]);
    }

    #[test]
    fn balanced_fill_spreads() {
        let p = ProcessorId::Kunpeng916.spec();
        assert_eq!(DomainPopulation::fill_balanced(&p, 6).0, vec![2, 2, 1, 1]);
        assert_eq!(DomainPopulation::fill_balanced(&p, 64).0, vec![16, 16, 16, 16]);
    }

    #[test]
    #[should_panic]
    fn overfull_population_panics() {
        let p = ProcessorId::XeonE5_2660v3.spec();
        let _ = DomainPopulation::fill_sequential(&p, p.total_cores() + 1);
    }

    #[test]
    fn stream_is_monotonic_in_cores() {
        for id in ProcessorId::ALL {
            let ms = MemorySystem::new(&id.spec());
            let mut prev = 0.0;
            for n in 1..=id.spec().total_cores() {
                let bw = ms.stream_at(n);
                assert!(bw >= prev - 1e-12, "{id:?} at {n}: {bw} < {prev}");
                prev = bw;
            }
        }
    }

    #[test]
    fn stream_saturates_at_node_bandwidth() {
        for id in ProcessorId::ALL {
            let p = id.spec();
            let ms = MemorySystem::new(&p);
            let full = ms.stream_at(p.total_cores());
            assert!((full - p.node_bw_gbs()).abs() < 1e-9, "{id:?}");
        }
    }

    #[test]
    fn single_core_stream_is_core_cap() {
        for id in ProcessorId::ALL {
            let p = id.spec();
            let ms = MemorySystem::new(&p);
            assert!((ms.stream_at(1) - p.core_bw_gbs.min(p.domain_bw_gbs)).abs() < 1e-12);
        }
    }

    #[test]
    fn kunpeng_dips_at_40_and_56_cores() {
        // The headline Section VII-B anomaly: effective bulk-synchronous
        // bandwidth at 40 cores is *below* 32 cores, recovers at 48, dips
        // again at 56, recovers at 64.
        let p = ProcessorId::Kunpeng916.spec();
        let ms = kunpeng();
        let eff = |n| ms.effective_bsp_bw(&DomainPopulation::fill_sequential(&p, n));
        assert!(eff(40) < eff(32), "40-core dip: {} !< {}", eff(40), eff(32));
        assert!(eff(48) > eff(40), "48-core recovery");
        assert!(eff(56) < eff(48), "56-core dip");
        assert!(eff(64) > eff(56), "64-core recovery");
    }

    #[test]
    fn no_penalty_when_all_domains_balanced() {
        let p = ProcessorId::Kunpeng916.spec();
        let ms = kunpeng();
        // 32 cores = exactly two full domains; no partial domain exists.
        let pop = DomainPopulation::fill_sequential(&p, 32);
        let bws = ms.per_core_bw(&pop);
        assert_eq!(bws[0], bws[1]);
        assert!(bws[2].is_infinite() && bws[3].is_infinite());
    }

    #[test]
    fn per_core_bw_never_exceeds_core_cap_when_unpenalized() {
        for id in ProcessorId::ALL {
            let p = id.spec();
            let ms = MemorySystem::new(&p);
            for n in 1..=p.total_cores() {
                let pop = DomainPopulation::fill_sequential(&p, n);
                for &bw in ms.per_core_bw(&pop).iter().filter(|b| b.is_finite()) {
                    assert!(bw <= p.core_bw_gbs + 1e-12, "{id:?} n={n} bw={bw}");
                }
            }
        }
    }

    #[test]
    fn balanced_fill_never_trails_sequential_on_stream() {
        // Spreading cores over domains reaches aggregate bandwidth at
        // least as fast as packing them.
        for id in ProcessorId::ALL {
            let p = id.spec();
            let ms = MemorySystem::new(&p);
            for n in 1..=p.total_cores() {
                let seq = ms.stream_aggregate_gbs(&DomainPopulation::fill_sequential(&p, n));
                let bal = ms.stream_aggregate_gbs(&DomainPopulation::fill_balanced(&p, n));
                assert!(bal >= seq - 1e-9, "{id:?} n={n}: {bal} < {seq}");
            }
        }
    }

    #[test]
    fn populations_always_sum_to_requested_cores() {
        for id in ProcessorId::ALL {
            let p = id.spec();
            for n in 0..=p.total_cores() {
                assert_eq!(DomainPopulation::fill_sequential(&p, n).total(), n);
                assert_eq!(DomainPopulation::fill_balanced(&p, n).total(), n);
            }
        }
    }

    #[test]
    fn full_node_bsp_equals_node_bandwidth() {
        for id in ProcessorId::ALL {
            let p = id.spec();
            let ms = MemorySystem::new(&p);
            let pop = DomainPopulation::fill_sequential(&p, p.total_cores());
            let eff = ms.effective_bsp_bw(&pop);
            assert!(
                (eff - p.node_bw_gbs()).abs() < 1e-6,
                "{id:?}: {eff} vs {}",
                p.node_bw_gbs()
            );
        }
    }
}
