//! # parallex-machine
//!
//! Models of the hardware platforms the paper evaluates (Table I plus the
//! three prototype clusters of Section VI). The paper's results are all
//! explained by a small number of architectural mechanisms; this crate
//! encodes exactly those, as data plus small analytical models:
//!
//! * [`spec`] — the four processors (Intel Xeon E5-2660 v3, HiSilicon
//!   Kunpeng 916 / Hi1616, Marvell ThunderX2, Fujitsu A64FX) with clocks,
//!   core/socket/NUMA layout, vector pipelines, peak FLOP/s, cache
//!   geometry and measured-STREAM-class memory bandwidths.
//! * [`numa`] — per-NUMA-domain bandwidth saturation: how aggregate
//!   bandwidth grows with active cores (Fig. 2's plateaus) and the
//!   partially-populated-domain penalty behind the Kunpeng 916 performance
//!   dips at 40 and 56 cores (Section VII-B).
//! * [`cache`] — cache-line-driven *effective* memory traffic: the paper's
//!   observation that A64FX (256-byte lines) and ThunderX2 behave as if the
//!   5-point stencil needs only two memory transfers per lattice-site
//!   update instead of three, a "free" cache-blocking effect worth ~49 %.
//! * [`cluster`] — node + interconnect descriptions for the JUAWEI, Sage
//!   and Fujitsu A64FX prototype clusters, including the degraded Hi1616
//!   fabric that ruins the Kunpeng's distributed scaling (Fig. 3).
//!
//! Everything here is hardware description; the execution/timing models
//! that consume it live in `parallex-perfsim` and `parallex-netsim`.

pub mod cache;
pub mod cluster;
pub mod numa;
pub mod spec;

pub use cache::CacheBlocking;
pub use cluster::{ClusterSpec, NetworkSpec};
pub use numa::{DomainPopulation, MemorySystem};
pub use spec::{Processor, ProcessorId, VectorPipeline};
