//! Node + interconnect descriptions of the paper's three prototype
//! clusters (Section VI).
//!
//! The distributed 1D-stencil results (Fig. 3) depend on one property per
//! cluster: whether the network's latency can be hidden under the interior
//! compute. The paper finds it can on the Xeon, ThunderX2 and A64FX
//! systems (near-linear strong scaling, flat weak scaling) but *not* on the
//! Kunpeng 916 — "the network performance on the Hi1616 nodes is
//! unsatisfactory and the processor is not able to exploit the capabilities
//! of the InfiniBand network". We model that as a high effective
//! per-message latency, low effective bandwidth, no overlap, and a
//! congestion term that grows with node count (the paper's weak-scaling
//! times increase "significantly" with nodes).

use crate::spec::{Processor, ProcessorId};
use serde::Serialize;

/// Effective (application-visible) interconnect characteristics.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct NetworkSpec {
    /// One-way small-message latency in microseconds, as seen by the
    /// parcelport (includes software stack).
    pub latency_us: f64,
    /// Achievable point-to-point bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Whether the runtime can overlap communication with computation on
    /// this fabric (true everywhere except the Hi1616 nodes).
    pub latency_hiding: bool,
    /// Extra exposed overhead per additional node, as a fraction of the
    /// base message cost — models the congestion/jitter that makes the
    /// Kunpeng weak-scaling times grow with node count.
    pub congestion_per_node: f64,
}

impl NetworkSpec {
    /// Pure message transfer time (latency + serialization), microseconds.
    pub fn transfer_time_us(&self, bytes: usize) -> f64 {
        self.latency_us + bytes as f64 / (self.bandwidth_gbs * 1e3)
    }

    /// Message cost including the congestion term at a given node count,
    /// microseconds.
    pub fn congested_transfer_time_us(&self, bytes: usize, nodes: usize) -> f64 {
        let base = self.transfer_time_us(bytes);
        base * (1.0 + self.congestion_per_node * nodes.saturating_sub(1) as f64)
    }
}

/// One of the paper's prototype clusters: a node type plus its fabric.
#[derive(Clone, Debug, Serialize)]
pub struct ClusterSpec {
    /// Cluster display name.
    pub name: &'static str,
    /// Node processor.
    pub node: Processor,
    /// Interconnect.
    pub network: NetworkSpec,
    /// Largest node count the paper benchmarks on this system.
    pub max_nodes: usize,
}

impl ClusterSpec {
    /// The cluster a given processor was benchmarked on (Section VI).
    pub fn for_processor(id: ProcessorId) -> ClusterSpec {
        match id {
            ProcessorId::XeonE5_2660v3 => ClusterSpec {
                name: "JUAWEI (Xeon partition)",
                node: id.spec(),
                network: NetworkSpec {
                    latency_us: 2.0,
                    bandwidth_gbs: 12.0,
                    latency_hiding: true,
                    congestion_per_node: 0.0,
                },
                max_nodes: 8,
            },
            // Same InfiniBand hardware as the Xeon partition, but the
            // Hi1616 cannot drive it: high effective latency, a fraction of
            // the bandwidth, and no effective overlap.
            ProcessorId::Kunpeng916 => ClusterSpec {
                name: "JUAWEI (Kunpeng partition)",
                node: id.spec(),
                network: NetworkSpec {
                    // Effective application-level numbers: the Hi1616's
                    // software stack cannot drive the IB hardware, and the
                    // exposed per-step cost grows sharply with node count
                    // (the paper's weak-scaling blow-up).
                    latency_us: 2500.0,
                    bandwidth_gbs: 1.2,
                    latency_hiding: false,
                    congestion_per_node: 1.5,
                },
                max_nodes: 8,
            },
            ProcessorId::ThunderX2 => ClusterSpec {
                name: "Sage",
                node: id.spec(),
                network: NetworkSpec {
                    latency_us: 2.5,
                    bandwidth_gbs: 11.0,
                    latency_hiding: true,
                    congestion_per_node: 0.0,
                },
                max_nodes: 8,
            },
            // FX1000 with Tofu-D, driven through the Fujitsu-MPI-backed
            // parcelport the paper built.
            ProcessorId::A64FX => ClusterSpec {
                name: "Fujitsu A64FX prototype",
                node: id.spec(),
                network: NetworkSpec {
                    latency_us: 1.5,
                    bandwidth_gbs: 6.8,
                    latency_hiding: true,
                    congestion_per_node: 0.0,
                },
                max_nodes: 8,
            },
        }
    }

    /// The node-count sweep of Fig. 3.
    pub fn node_sweep(&self) -> Vec<usize> {
        let mut n = 1;
        let mut out = Vec::new();
        while n <= self.max_nodes {
            out.push(n);
            n *= 2;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn good_fabrics_hide_latency_kunpeng_does_not() {
        for id in ProcessorId::ALL {
            let c = ClusterSpec::for_processor(id);
            let expect_hiding = id != ProcessorId::Kunpeng916;
            assert_eq!(c.network.latency_hiding, expect_hiding, "{id:?}");
        }
    }

    #[test]
    fn transfer_time_has_latency_floor() {
        let net = ClusterSpec::for_processor(ProcessorId::XeonE5_2660v3).network;
        assert!(net.transfer_time_us(0) >= net.latency_us);
        // 1 MiB at 12 GB/s is ~87 microseconds on top of latency.
        let t = net.transfer_time_us(1 << 20);
        assert!(t > 80.0 && t < 100.0, "{t}");
    }

    #[test]
    fn congestion_grows_with_nodes_only_on_poor_fabric() {
        let bad = ClusterSpec::for_processor(ProcessorId::Kunpeng916).network;
        let good = ClusterSpec::for_processor(ProcessorId::A64FX).network;
        let b1 = bad.congested_transfer_time_us(4096, 1);
        let b8 = bad.congested_transfer_time_us(4096, 8);
        assert!(b8 > 2.0 * b1, "Kunpeng congestion should grow: {b1} -> {b8}");
        let g1 = good.congested_transfer_time_us(4096, 1);
        let g8 = good.congested_transfer_time_us(4096, 8);
        assert!((g8 - g1).abs() < 1e-9, "good fabric flat: {g1} -> {g8}");
    }

    #[test]
    fn node_sweep_is_powers_of_two() {
        let c = ClusterSpec::for_processor(ProcessorId::XeonE5_2660v3);
        assert_eq!(c.node_sweep(), vec![1, 2, 4, 8]);
    }
}
