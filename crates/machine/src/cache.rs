//! Cache-line-driven effective memory traffic for the 5-point stencil.
//!
//! Section V-B of the paper assumes the caches hold three grid rows, so
//! every lattice-site update (LUP) moves **three** elements to/from main
//! memory: 24 B/LUP for doubles, 12 B/LUP for floats — arithmetic
//! intensities of 1/24 and 1/12 LUP/B. Section VII-B then finds two
//! machines that *beat* that roofline:
//!
//! * **A64FX** (256-byte cache lines): behaves like a cache-blocked
//!   implementation needing only **two** transfers per LUP, a ~49 % boost,
//!   observed up to 32 cores (Fig. 6's "Expected Peak Max" line).
//! * **ThunderX2**: single precision always rides the large-line benefit;
//!   at ≥16 cores the measured arithmetic intensity switches to 1/8 (f32)
//!   and 1/16 (f64) LUP/B — i.e. two transfers — for the explicitly
//!   vectorized code (the paper's "interesting switch", left as an open
//!   question there; we encode the observation).
//!
//! Xeon E5 and Kunpeng 916 follow the plain three-transfer model.

use crate::spec::{Processor, ProcessorId};

/// Which inherent cache-blocking behaviour a processor exhibits on the
/// 5-point stencil.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CacheBlocking {
    /// Plain three-transfers-per-LUP behaviour (Xeon E5, Kunpeng 916).
    None,
    /// Two transfers per LUP up to the given core count, drifting back
    /// toward three beyond it (A64FX: the benefit holds to 32 cores).
    UpToCores(usize),
    /// Explicitly vectorized code switches from three to two transfers per
    /// LUP at the given core count — the paper's "interesting switch" on
    /// ThunderX2, where measured arithmetic intensity becomes 1/8 (f32) and
    /// 1/16 (f64) LUP/B at ≥16 cores for the NSIMD kernels while the
    /// auto-vectorized kernels stay at the three-transfer AI.
    VectorizedAbove(usize),
}

impl CacheBlocking {
    /// The behaviour the paper reports for each processor.
    pub fn of(id: ProcessorId) -> CacheBlocking {
        match id {
            ProcessorId::XeonE5_2660v3 | ProcessorId::Kunpeng916 => CacheBlocking::None,
            ProcessorId::A64FX => CacheBlocking::UpToCores(32),
            ProcessorId::ThunderX2 => CacheBlocking::VectorizedAbove(16),
        }
    }

    /// Effective main-memory transfers per lattice-site update for the
    /// 2D 5-point stencil.
    ///
    /// * `elem_bytes` — 4 for `f32`, 8 for `f64`.
    /// * `cores` — active core count (the TX2 switch and the A64FX limit
    ///   are core-count dependent).
    /// * `explicit_vec` — whether the kernel is explicitly vectorized
    ///   (NSIMD-style packs) as opposed to compiler-auto-vectorized.
    pub fn transfers_per_lup(self, elem_bytes: usize, cores: usize, explicit_vec: bool) -> f64 {
        match self {
            CacheBlocking::None => 3.0,
            CacheBlocking::UpToCores(limit) => {
                if cores <= limit {
                    2.0
                } else {
                    // Beyond the limit the paper's Fig. 6 results sit
                    // between the two peak lines.
                    2.5
                }
            }
            CacheBlocking::VectorizedAbove(limit) => {
                let _ = elem_bytes; // both precisions switch together on TX2
                if cores >= limit && explicit_vec {
                    2.0
                } else {
                    3.0
                }
            }
        }
    }
}

/// Bytes moved to/from main memory per lattice-site update.
pub fn bytes_per_lup(id: ProcessorId, elem_bytes: usize, cores: usize, explicit_vec: bool) -> f64 {
    CacheBlocking::of(id).transfers_per_lup(elem_bytes, cores, explicit_vec) * elem_bytes as f64
}

/// The paper's Section V-B assumption check: do `rows` rows of the grid fit
/// in the last-level cache of one NUMA domain? (The 8192-element row size
/// was chosen to make this true on all four machines.)
pub fn rows_fit_in_llc(proc: &Processor, row_elems: usize, elem_bytes: usize, rows: usize) -> bool {
    row_elems * elem_bytes * rows <= proc.llc_per_domain_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_machines_use_three_transfers() {
        for id in [ProcessorId::XeonE5_2660v3, ProcessorId::Kunpeng916] {
            for cores in [1, 16, 64] {
                for vec in [false, true] {
                    assert_eq!(CacheBlocking::of(id).transfers_per_lup(8, cores, vec), 3.0);
                    assert_eq!(CacheBlocking::of(id).transfers_per_lup(4, cores, vec), 3.0);
                }
            }
        }
    }

    #[test]
    fn paper_arithmetic_intensities() {
        // Section V-B: AI = 1/12 LUP/B (f32), 1/24 LUP/B (f64) under the
        // three-transfer assumption.
        let f32_bytes = bytes_per_lup(ProcessorId::XeonE5_2660v3, 4, 10, false);
        let f64_bytes = bytes_per_lup(ProcessorId::XeonE5_2660v3, 8, 10, false);
        assert_eq!(f32_bytes, 12.0);
        assert_eq!(f64_bytes, 24.0);
    }

    #[test]
    fn a64fx_cache_blocking_up_to_32_cores() {
        let cb = CacheBlocking::of(ProcessorId::A64FX);
        assert_eq!(cb.transfers_per_lup(8, 32, false), 2.0);
        assert_eq!(cb.transfers_per_lup(4, 12, true), 2.0);
        assert!(cb.transfers_per_lup(8, 48, false) > 2.0);
    }

    #[test]
    fn a64fx_two_transfer_boost_is_the_papers_49_percent() {
        // 3 transfers / 2 transfers = 1.5x bandwidth-bound performance:
        // the paper rounds this to "a 49% performance boost".
        let slow = 3.0;
        let fast = CacheBlocking::of(ProcessorId::A64FX).transfers_per_lup(8, 16, false);
        let boost = slow / fast - 1.0;
        assert!((boost - 0.5).abs() < 0.02);
    }

    #[test]
    fn tx2_switch_applies_to_explicit_vectorization_at_16_cores() {
        let cb = CacheBlocking::of(ProcessorId::ThunderX2);
        // Below 16 cores: plain three-transfer behaviour everywhere.
        assert_eq!(cb.transfers_per_lup(4, 8, true), 3.0);
        assert_eq!(cb.transfers_per_lup(8, 8, true), 3.0);
        // At >=16 cores the explicitly vectorized kernels switch to two
        // transfers (AI 1/8 f32, 1/16 f64); auto-vectorized code does not.
        assert_eq!(cb.transfers_per_lup(4, 16, true), 2.0);
        assert_eq!(cb.transfers_per_lup(8, 16, true), 2.0);
        assert_eq!(cb.transfers_per_lup(4, 64, false), 3.0);
        assert_eq!(cb.transfers_per_lup(8, 32, false), 3.0);
    }

    #[test]
    fn paper_row_size_fits_three_rows_everywhere() {
        // Grid row of 8192 elements: 3 rows of doubles = 192 KiB, well
        // inside every machine's LLC slice.
        for id in ProcessorId::ALL {
            assert!(rows_fit_in_llc(&id.spec(), 8192, 8, 3), "{id:?}");
        }
    }

    #[test]
    fn huge_rows_do_not_fit() {
        let xeon = ProcessorId::XeonE5_2660v3.spec();
        assert!(!rows_fit_in_llc(&xeon, 1 << 24, 8, 3));
    }
}
