//! Table I as data: the four processors under evaluation.
//!
//! Clock speeds, core counts, SMT, vector pipelines and peak FLOP/s are
//! taken verbatim from Table I of the paper. NUMA layout, cache geometry
//! and sustainable memory bandwidth are taken from the paper's Section VII
//! discussion (NUMA-domain saturation points, cache-line benefits) and the
//! STREAM COPY measurements of Fig. 2; where the paper gives no absolute
//! number the value is taken from the public literature on the same silicon
//! and flagged with a comment. All bandwidth figures are *sustained STREAM
//! COPY class* numbers, which is what the paper's roofline uses.

use serde::Serialize;

/// Identifies one of the four benchmarked processors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum ProcessorId {
    /// Intel Xeon E5-2660 v3 "Haswell" (JUAWEI cluster, x86 baseline).
    XeonE5_2660v3,
    /// HiSilicon Kunpeng 916 / Hi1616 (JUAWEI cluster).
    Kunpeng916,
    /// Marvell ThunderX2 (Sage cluster).
    ThunderX2,
    /// Fujitsu A64FX as in the FX1000 (Fujitsu prototype cluster).
    A64FX,
}

impl ProcessorId {
    /// All four processors, in the paper's Table I column order.
    pub const ALL: [ProcessorId; 4] = [
        ProcessorId::XeonE5_2660v3,
        ProcessorId::Kunpeng916,
        ProcessorId::ThunderX2,
        ProcessorId::A64FX,
    ];

    /// Full display name, as used in the figures.
    pub const fn name(self) -> &'static str {
        match self {
            ProcessorId::XeonE5_2660v3 => "Intel Xeon E5-2660 v3",
            ProcessorId::Kunpeng916 => "HiSilicon Kunpeng 916",
            ProcessorId::ThunderX2 => "Marvell ThunderX2",
            ProcessorId::A64FX => "Fujitsu (FX1000) A64FX",
        }
    }

    /// Short slug for CSV/series labels.
    pub const fn slug(self) -> &'static str {
        match self {
            ProcessorId::XeonE5_2660v3 => "xeon-e5",
            ProcessorId::Kunpeng916 => "kunpeng916",
            ProcessorId::ThunderX2 => "thunderx2",
            ProcessorId::A64FX => "a64fx",
        }
    }

    /// The full machine description.
    pub fn spec(self) -> Processor {
        Processor::of(self)
    }
}

/// SIMD pipeline configuration (Table I "Vectorization" row).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct VectorPipeline {
    /// Register width in bits (AVX2 256, NEON 128, SVE 512).
    pub width_bits: usize,
    /// Number of SIMD pipelines per core ("Double AVX2 Pipeline" = 2).
    pub pipes: usize,
    /// ISA display name.
    pub isa_name: &'static str,
}

impl VectorPipeline {
    /// `f64` lanes per register.
    pub const fn lanes_f64(&self) -> usize {
        self.width_bits / 64
    }
    /// `f32` lanes per register.
    pub const fn lanes_f32(&self) -> usize {
        self.width_bits / 32
    }
    /// Double-precision FLOPs per cycle per core assuming FMA on every
    /// pipe — reproduces Table I's "Double Precision FLOPS per cycle" row.
    pub const fn dp_flops_per_cycle(&self) -> usize {
        self.lanes_f64() * 2 * self.pipes
    }
}

/// A node-level machine description.
#[derive(Clone, Debug, Serialize)]
pub struct Processor {
    /// Which processor this is.
    pub id: ProcessorId,
    /// Core clock in GHz (Table I).
    pub clock_ghz: f64,
    /// Compute cores per socket (Table I; A64FX counts only the 48 compute
    /// cores, not the 4 helper cores, matching the paper's figures).
    pub cores_per_socket: usize,
    /// Sockets per node (Table I "Processors per node").
    pub sockets: usize,
    /// Hardware threads per core (Table I).
    pub threads_per_core: usize,
    /// SIMD configuration.
    pub vector: VectorPipeline,
    /// NUMA domains per node.
    pub numa_domains: usize,
    /// Sustained STREAM COPY bandwidth of one NUMA domain, GB/s. The
    /// node-level Fig. 2 plateau is `numa_domains *` this.
    pub domain_bw_gbs: f64,
    /// Per-core sustainable bandwidth cap, GB/s: how much one core can pull
    /// by itself (limited by outstanding misses). Sets the slope of the
    /// STREAM curve before the domain saturates.
    pub core_bw_gbs: f64,
    /// Cache line size in bytes. A64FX's 256-byte lines are the paper's
    /// explanation for its "free cache blocking" (Section VII-B).
    pub cache_line_bytes: usize,
    /// Last-level cache per NUMA domain, bytes (used by the
    /// rows-fit-in-cache check behind the 3-transfers assumption).
    pub llc_per_domain_bytes: usize,
    /// Throughput penalty multiplier applied to a *partially populated*
    /// NUMA domain while other domains are full, modelling the first-touch
    /// imbalance the paper blames for the Kunpeng dips (1.0 = no penalty).
    pub partial_domain_penalty: f64,
}

impl Processor {
    /// Build the spec for one of the four processors.
    pub fn of(id: ProcessorId) -> Processor {
        match id {
            // 2 sockets x 10 cores, 2 NUMA domains, AVX2. Sustained
            // bandwidth ~59 GB/s per socket (DDR4-2133, 4 channels).
            ProcessorId::XeonE5_2660v3 => Processor {
                id,
                clock_ghz: 2.6,
                cores_per_socket: 10,
                sockets: 2,
                threads_per_core: 2,
                vector: VectorPipeline { width_bits: 256, pipes: 2, isa_name: "AVX2" },
                numa_domains: 2,
                domain_bw_gbs: 59.0,
                core_bw_gbs: 14.0,
                cache_line_bytes: 64,
                llc_per_domain_bytes: 25 * 1024 * 1024,
                partial_domain_penalty: 0.9,
            },
            // Hi1616: 64 cores in 4 NUMA domains of 16 (2 dies x 2
            // clusters). Weak per-core memory parallelism; the paper's
            // 40-/56-core dips come from partially filled domains.
            ProcessorId::Kunpeng916 => Processor {
                id,
                clock_ghz: 2.4,
                cores_per_socket: 64,
                sockets: 1,
                threads_per_core: 1,
                vector: VectorPipeline { width_bits: 128, pipes: 1, isa_name: "NEON" },
                numa_domains: 4,
                domain_bw_gbs: 33.0,
                core_bw_gbs: 4.2,
                cache_line_bytes: 64,
                llc_per_domain_bytes: 8 * 1024 * 1024,
                partial_domain_penalty: 0.55,
            },
            // Dual-socket 32-core nodes on Sage (the Table I peak of
            // 1228 GFLOP/s = 64 cores x 2.4 GHz x 8 DP FLOP/cycle implies
            // both sockets). 8 DDR4-2666 channels per socket.
            ProcessorId::ThunderX2 => Processor {
                id,
                clock_ghz: 2.4,
                cores_per_socket: 32,
                sockets: 2,
                threads_per_core: 4,
                vector: VectorPipeline { width_bits: 128, pipes: 2, isa_name: "NEON" },
                numa_domains: 2,
                domain_bw_gbs: 110.0,
                core_bw_gbs: 9.0,
                cache_line_bytes: 64,
                llc_per_domain_bytes: 32 * 1024 * 1024,
                partial_domain_penalty: 0.85,
            },
            // 48 compute cores in 4 CMGs of 12, HBM2. GCC-compiled STREAM
            // sustains ~160 GB/s per CMG (the paper's footnote 2: higher is
            // possible only with the Fujitsu compiler's cache tricks).
            ProcessorId::A64FX => Processor {
                id,
                clock_ghz: 2.2,
                cores_per_socket: 48,
                sockets: 1,
                threads_per_core: 1,
                vector: VectorPipeline { width_bits: 512, pipes: 2, isa_name: "SVE" },
                numa_domains: 4,
                domain_bw_gbs: 160.0,
                core_bw_gbs: 28.0,
                cache_line_bytes: 256,
                llc_per_domain_bytes: 8 * 1024 * 1024,
                partial_domain_penalty: 0.9,
            },
        }
    }

    /// Total compute cores per node.
    pub fn total_cores(&self) -> usize {
        self.cores_per_socket * self.sockets
    }

    /// Cores per NUMA domain.
    pub fn cores_per_domain(&self) -> usize {
        self.total_cores() / self.numa_domains
    }

    /// Node peak double-precision GFLOP/s — reproduces Table I's "Peak
    /// Performance" row.
    pub fn peak_dp_gflops(&self) -> f64 {
        self.total_cores() as f64 * self.clock_ghz * self.vector.dp_flops_per_cycle() as f64
    }

    /// Node peak single-precision GFLOP/s.
    pub fn peak_sp_gflops(&self) -> f64 {
        2.0 * self.peak_dp_gflops()
    }

    /// Node-level sustained STREAM bandwidth with all domains saturated,
    /// GB/s (the Fig. 2 plateau).
    pub fn node_bw_gbs(&self) -> f64 {
        self.domain_bw_gbs * self.numa_domains as f64
    }

    /// The sensible core-count sweep for this machine's figures: powers of
    /// two plus the domain boundaries, up to the full node.
    pub fn core_sweep(&self) -> Vec<usize> {
        let total = self.total_cores();
        let per_domain = self.cores_per_domain();
        let mut pts: Vec<usize> = vec![1, 2, 4];
        let mut c = 8;
        while c < total {
            pts.push(c);
            c += 8;
        }
        pts.push(total);
        pts.push(per_domain);
        pts.retain(|&c| c <= total);
        pts.sort_unstable();
        pts.dedup();
        pts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_gflops_matches_table_i() {
        // Table I: 832 / 614 / 1228 / 3379 GFLOP/s.
        let xeon = ProcessorId::XeonE5_2660v3.spec();
        assert!((xeon.peak_dp_gflops() - 832.0).abs() < 1.0, "{}", xeon.peak_dp_gflops());
        let kp = ProcessorId::Kunpeng916.spec();
        assert!((kp.peak_dp_gflops() - 614.4).abs() < 1.0, "{}", kp.peak_dp_gflops());
        let tx2 = ProcessorId::ThunderX2.spec();
        assert!((tx2.peak_dp_gflops() - 1228.8).abs() < 1.0, "{}", tx2.peak_dp_gflops());
        let a64 = ProcessorId::A64FX.spec();
        assert!((a64.peak_dp_gflops() - 3379.2).abs() < 1.0, "{}", a64.peak_dp_gflops());
    }

    #[test]
    fn dp_flops_per_cycle_matches_table_i() {
        // Table I: 16 / 4 / 8 / 32.
        assert_eq!(ProcessorId::XeonE5_2660v3.spec().vector.dp_flops_per_cycle(), 16);
        assert_eq!(ProcessorId::Kunpeng916.spec().vector.dp_flops_per_cycle(), 4);
        assert_eq!(ProcessorId::ThunderX2.spec().vector.dp_flops_per_cycle(), 8);
        assert_eq!(ProcessorId::A64FX.spec().vector.dp_flops_per_cycle(), 32);
    }

    #[test]
    fn clock_speeds_match_table_i() {
        assert_eq!(ProcessorId::XeonE5_2660v3.spec().clock_ghz, 2.6);
        assert_eq!(ProcessorId::Kunpeng916.spec().clock_ghz, 2.4);
        assert_eq!(ProcessorId::ThunderX2.spec().clock_ghz, 2.4);
        assert_eq!(ProcessorId::A64FX.spec().clock_ghz, 2.2);
    }

    #[test]
    fn numa_layout_is_consistent() {
        for id in ProcessorId::ALL {
            let p = id.spec();
            assert_eq!(
                p.cores_per_domain() * p.numa_domains,
                p.total_cores(),
                "{:?}: cores must divide evenly into domains",
                id
            );
        }
    }

    #[test]
    fn a64fx_has_large_cache_lines() {
        assert_eq!(ProcessorId::A64FX.spec().cache_line_bytes, 256);
        assert_eq!(ProcessorId::XeonE5_2660v3.spec().cache_line_bytes, 64);
    }

    #[test]
    fn core_sweep_covers_full_node_and_is_sorted() {
        for id in ProcessorId::ALL {
            let p = id.spec();
            let sweep = p.core_sweep();
            assert_eq!(*sweep.first().unwrap(), 1);
            assert_eq!(*sweep.last().unwrap(), p.total_cores());
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn kunpeng_has_four_domains_of_16() {
        let p = ProcessorId::Kunpeng916.spec();
        assert_eq!(p.numa_domains, 4);
        assert_eq!(p.cores_per_domain(), 16);
    }

    #[test]
    fn sp_peak_is_double_dp_peak() {
        for id in ProcessorId::ALL {
            let p = id.spec();
            assert!((p.peak_sp_gflops() - 2.0 * p.peak_dp_gflops()).abs() < 1e-9);
        }
    }

    #[test]
    fn slugs_and_names_are_distinct() {
        let slugs: std::collections::HashSet<_> = ProcessorId::ALL.iter().map(|p| p.slug()).collect();
        assert_eq!(slugs.len(), 4);
        let names: std::collections::HashSet<_> = ProcessorId::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
