//! # parallex-workloads
//!
//! Irregular task-parallel workloads on the `parallex` runtime. The paper
//! motivates AMT systems with algorithms that "feature an increased
//! dynamic behavior and low uniformity" (Section I) — stencils are its
//! *benchmark*, but the scheduling machinery earns its keep on workloads
//! like these:
//!
//! * [`uts`] — an Unbalanced Tree Search in the spirit of the classic UTS
//!   benchmark: a deterministic, hash-generated tree whose shape is
//!   unknown until traversal, the canonical work-stealing stress test.
//! * [`fib`] — fork-join recursion with grain-size thresholding, the
//!   standard task-spawn-overhead microbenchmark.
//! * [`quadrature`] — adaptive Simpson integration: task recursion whose
//!   depth follows the integrand's local difficulty.
//!
//! All three produce deterministic results independent of worker count and
//! scheduling policy (asserted by the test suite), so they double as
//! scheduler correctness stressors.

pub mod fib;
pub mod quadrature;
pub mod uts;

pub use fib::parallel_fib;
pub use quadrature::integrate_adaptive;
pub use uts::{uts_count, UtsParams};
