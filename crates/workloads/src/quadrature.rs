//! Adaptive Simpson quadrature with task recursion.
//!
//! The interval subdivides wherever the integrand is locally hard — the
//! task tree's shape follows the *data*, which is the "data directed
//! computing" the ParalleX model description emphasizes (the paper's
//! Section III-A). Subdivision depth, and hence parallelism, is unknown
//! until runtime.

use parallex::lcos::dataflow::dataflow2;
use parallex::lcos::future::Future;
use parallex::runtime::Runtime;
use std::sync::Arc;

fn simpson(f: &dyn Fn(f64) -> f64, a: f64, b: f64) -> f64 {
    (b - a) / 6.0 * (f(a) + 4.0 * f(0.5 * (a + b)) + f(b))
}

#[allow(clippy::too_many_arguments)] // recursion state is clearer flat
fn adaptive(
    rt: &Runtime,
    f: Arc<dyn Fn(f64) -> f64 + Send + Sync>,
    a: f64,
    b: f64,
    eps: f64,
    whole: f64,
    depth: u32,
    task_depth: u32,
) -> Future<f64> {
    let m = 0.5 * (a + b);
    let left = simpson(f.as_ref(), a, m);
    let right = simpson(f.as_ref(), m, b);
    if depth >= 40 || (left + right - whole).abs() <= 15.0 * eps {
        // Richardson-corrected accept.
        return rt.make_ready_future(left + right + (left + right - whole) / 15.0);
    }
    if depth >= task_depth {
        // Deep refinement: recurse sequentially inside this task.
        return rt.make_ready_future(
            adaptive_seq(f.as_ref(), a, m, eps / 2.0, left, depth + 1)
                + adaptive_seq(f.as_ref(), m, b, eps / 2.0, right, depth + 1),
        );
    }
    let rt2 = rt.clone();
    let fa = f.clone();
    let lf = rt.async_task(move || {
        adaptive(&rt2, fa, a, m, eps / 2.0, left, depth + 1, task_depth).get()
    });
    let rt3 = rt.clone();
    let fb = f.clone();
    let rf = rt.async_task(move || {
        adaptive(&rt3, fb, m, b, eps / 2.0, right, depth + 1, task_depth).get()
    });
    dataflow2(lf, rf, |l, r| l + r)
}

fn adaptive_seq(f: &dyn Fn(f64) -> f64, a: f64, b: f64, eps: f64, whole: f64, depth: u32) -> f64 {
    let m = 0.5 * (a + b);
    let left = simpson(f, a, m);
    let right = simpson(f, m, b);
    if depth >= 40 || (left + right - whole).abs() <= 15.0 * eps {
        return left + right + (left + right - whole) / 15.0;
    }
    adaptive_seq(f, a, m, eps / 2.0, left, depth + 1)
        + adaptive_seq(f, m, b, eps / 2.0, right, depth + 1)
}

/// Integrate `f` over `[a, b]` to absolute tolerance `eps`, spawning a
/// task per subdivision down to `task_depth` levels.
pub fn integrate_adaptive(
    rt: &Runtime,
    f: impl Fn(f64) -> f64 + Send + Sync + 'static,
    a: f64,
    b: f64,
    eps: f64,
) -> f64 {
    assert!(b > a && eps > 0.0);
    let f: Arc<dyn Fn(f64) -> f64 + Send + Sync> = Arc::new(f);
    let whole = simpson(f.as_ref(), a, b);
    adaptive(rt, f, a, b, eps, whole, 0, 8).get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn rt() -> Runtime {
        Runtime::builder().worker_threads(4).build()
    }

    #[test]
    fn integrates_sine_exactly_enough() {
        let rt = rt();
        let got = integrate_adaptive(&rt, f64::sin, 0.0, PI, 1e-10);
        assert!((got - 2.0).abs() < 1e-8, "{got}");
        rt.shutdown();
    }

    #[test]
    fn integrates_a_polynomial() {
        let rt = rt();
        // ∫0..2 (3x² + 1) dx = 10; Simpson is exact for cubics.
        let got = integrate_adaptive(&rt, |x| 3.0 * x * x + 1.0, 0.0, 2.0, 1e-12);
        assert!((got - 10.0).abs() < 1e-10, "{got}");
        rt.shutdown();
    }

    #[test]
    fn handles_a_locally_hard_integrand() {
        let rt = rt();
        // A narrow spike: ∫ 1/(1e-4 + x²) dx over [-1, 1]
        //   = 2·atan(1/0.01)/0.01.
        let c: f64 = 1e-4;
        let want = 2.0 * (1.0 / c.sqrt()).atan() / c.sqrt();
        let got = integrate_adaptive(&rt, move |x| 1.0 / (c + x * x), -1.0, 1.0, 1e-9);
        assert!((got - want).abs() / want < 1e-7, "{got} vs {want}");
        rt.shutdown();
    }

    #[test]
    fn single_worker_is_deadlock_free_and_agrees() {
        let rt1 = Runtime::builder().worker_threads(1).build();
        let rt4 = rt();
        let a = integrate_adaptive(&rt1, |x| (x * 3.0).cos() * x, 0.0, 4.0, 1e-10);
        let b = integrate_adaptive(&rt4, |x| (x * 3.0).cos() * x, 0.0, 4.0, 1e-10);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        rt1.shutdown();
        rt4.shutdown();
    }

    #[test]
    #[should_panic]
    fn empty_interval_rejected() {
        let rt = rt();
        let _ = integrate_adaptive(&rt, |x| x, 1.0, 1.0, 1e-6);
    }
}
