//! Unbalanced Tree Search.
//!
//! A deterministic tree is generated on the fly from per-node hashes
//! (SplitMix64): each node below the root has `branching` children with
//! probability `q`, none otherwise. The resulting subtree sizes vary
//! wildly and unpredictably — exactly the "low uniformity" the paper's
//! introduction says AMT schedulers exist for — so counting the nodes in
//! parallel is a pure work-stealing stress test. The count for a given
//! parameter set is a deterministic constant, independent of worker count
//! or scheduling policy.

use parallex::lcos::future::when_all;
use parallex::runtime::Runtime;

/// SplitMix64 — tiny, seedable, splittable hash (public domain algorithm).
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Child `i`'s node hash.
#[inline]
fn child_hash(parent: u64, i: u64) -> u64 {
    splitmix64(parent ^ splitmix64(i.wrapping_add(1)))
}

/// UTS parameters (geometric variant).
#[derive(Clone, Copy, Debug)]
pub struct UtsParams {
    /// Tree seed.
    pub seed: u64,
    /// Children of the root (always expanded).
    pub root_branches: u64,
    /// Children of an interior node that branches.
    pub branching: u64,
    /// Probability an interior node branches, in 1/10000ths.
    pub q_bp: u64,
    /// Hard depth cutoff (keeps the expected size finite even for
    /// super-critical `q`).
    pub max_depth: u32,
    /// Subtrees at or below this depth-from-root are counted sequentially
    /// (grain-size control; 0 ⇒ every node is a task).
    pub sequential_below: u32,
}

impl UtsParams {
    /// A small tree (~tens of thousands of nodes) suitable for tests.
    pub fn small(seed: u64) -> UtsParams {
        UtsParams {
            seed,
            root_branches: 128,
            branching: 4,
            q_bp: 2460, // sub-critical: 4 * 0.246 < 1, but close to critical
            max_depth: 80,
            sequential_below: 4,
        }
    }
}

fn num_children(hash: u64, depth: u32, p: &UtsParams) -> u64 {
    if depth == 0 {
        return p.root_branches;
    }
    if depth >= p.max_depth {
        return 0;
    }
    if splitmix64(hash ^ 0xC0FF_EE00) % 10_000 < p.q_bp {
        p.branching
    } else {
        0
    }
}

fn count_sequential(hash: u64, depth: u32, p: &UtsParams) -> u64 {
    let kids = num_children(hash, depth, p);
    let mut total = 1;
    for i in 0..kids {
        total += count_sequential(child_hash(hash, i), depth + 1, p);
    }
    total
}

fn count_parallel(rt: &Runtime, hash: u64, depth: u32, p: UtsParams) -> u64 {
    if depth >= p.sequential_below {
        return count_sequential(hash, depth, &p);
    }
    let kids = num_children(hash, depth, &p);
    let futures: Vec<_> = (0..kids)
        .map(|i| {
            let rt2 = rt.clone();
            let h = child_hash(hash, i);
            rt.async_task(move || count_parallel(&rt2, h, depth + 1, p))
        })
        .collect();
    1 + when_all(futures).get().into_iter().sum::<u64>()
}

/// Count the nodes of the parameterized tree in parallel. Deterministic
/// for a given `UtsParams` regardless of worker count or policy.
pub fn uts_count(rt: &Runtime, p: UtsParams) -> u64 {
    count_parallel(rt, splitmix64(p.seed), 0, p)
}

/// Sequential reference count (for verification).
pub fn uts_count_sequential(p: UtsParams) -> u64 {
    count_sequential(splitmix64(p.seed), 0, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parallex::sched::SchedulerPolicy;

    #[test]
    fn parallel_count_matches_sequential_reference() {
        let p = UtsParams::small(42);
        let want = uts_count_sequential(p);
        assert!(want > 2_000, "tree too small to be interesting: {want}");
        let rt = Runtime::builder().worker_threads(4).build();
        assert_eq!(uts_count(&rt, p), want);
        rt.shutdown();
    }

    #[test]
    fn count_is_independent_of_workers_and_policy() {
        let p = UtsParams::small(7);
        let want = uts_count_sequential(p);
        for workers in [1, 2, 5] {
            for policy in [SchedulerPolicy::LocalPriority, SchedulerPolicy::Static] {
                let rt = Runtime::builder().worker_threads(workers).scheduler(policy).build();
                assert_eq!(uts_count(&rt, p), want, "{workers} workers {policy:?}");
                rt.shutdown();
            }
        }
    }

    #[test]
    fn different_seeds_give_different_trees() {
        let a = uts_count_sequential(UtsParams::small(1));
        let b = uts_count_sequential(UtsParams::small(2));
        assert_ne!(a, b);
    }

    #[test]
    fn subtree_sizes_are_genuinely_unbalanced() {
        // The whole point: sibling subtrees differ in size by orders of
        // magnitude.
        let p = UtsParams::small(42);
        let root = splitmix64(p.seed);
        let sizes: Vec<u64> = (0..p.root_branches)
            .map(|i| count_sequential(child_hash(root, i), 1, &p))
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max >= 20 * min.max(1), "min {min}, max {max}");
    }

    #[test]
    fn depth_cutoff_bounds_the_tree() {
        let mut p = UtsParams::small(3);
        p.q_bp = 9_000; // super-critical without the cutoff
        p.max_depth = 6;
        p.sequential_below = 0;
        let n = uts_count_sequential(p);
        // <= 128 * 4^5 interior expansion bound plus root.
        assert!(n < 128 * 1024 + 2, "{n}");
    }

    #[test]
    fn grain_threshold_does_not_change_the_count() {
        let base = UtsParams::small(11);
        let want = uts_count_sequential(base);
        let rt = Runtime::builder().worker_threads(3).build();
        for cutoff in [0, 2, 8] {
            let mut p = base;
            p.sequential_below = cutoff;
            assert_eq!(uts_count(&rt, p), want, "cutoff {cutoff}");
        }
        rt.shutdown();
    }
}
