//! Fork-join recursion (the task-overhead microbenchmark).
//!
//! `fib(n)` with task-per-call is the classic AMT overhead probe: almost
//! no computation, pure spawn/join traffic. The `threshold` parameter is
//! the grain-size dial — the paper's "contention overheads when the grain
//! size is too small" in its purest form.

use parallex::runtime::Runtime;

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

/// Compute `fib(n)` with a task per call above `threshold` (below it,
/// sequential recursion).
pub fn parallel_fib(rt: &Runtime, n: u64, threshold: u64) -> u64 {
    if n < 2 {
        return n;
    }
    if n <= threshold {
        return fib_seq(n);
    }
    let rt2 = rt.clone();
    let left = rt.async_task(move || parallel_fib(&rt2, n - 1, threshold));
    let right = parallel_fib(rt, n - 2, threshold);
    left.get() + right
}

/// Closed-form check value (Binet via iteration, exact in u64 range).
pub fn fib_reference(n: u64) -> u64 {
    let (mut a, mut b) = (0u64, 1u64);
    for _ in 0..n {
        let c = a + b;
        a = b;
        b = c;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_fib_is_correct() {
        let rt = Runtime::builder().worker_threads(4).build();
        for n in [0, 1, 2, 10, 20, 26] {
            assert_eq!(parallel_fib(&rt, n, 10), fib_reference(n), "fib({n})");
        }
        rt.shutdown();
    }

    #[test]
    fn threshold_does_not_change_the_answer() {
        let rt = Runtime::builder().worker_threads(3).build();
        let want = fib_reference(22);
        for threshold in [2, 5, 12, 21] {
            assert_eq!(parallel_fib(&rt, 22, threshold), want);
        }
        rt.shutdown();
    }

    #[test]
    fn runs_on_one_worker() {
        let rt = Runtime::builder().worker_threads(1).build();
        assert_eq!(parallel_fib(&rt, 18, 8), fib_reference(18));
        rt.shutdown();
    }

    #[test]
    fn reference_values() {
        assert_eq!(fib_reference(0), 0);
        assert_eq!(fib_reference(10), 55);
        assert_eq!(fib_reference(50), 12_586_269_025);
    }
}
