//! PAPI-like hardware-counter emulation.
//!
//! The paper uses Linux perf and PAPI (Section VI "Hardware Counters") to
//! read instructions, cache misses and stall cycles. This module exposes
//! the same workflow — build an event set, "run" the kernel, read the
//! counts — backed by the calibrated coefficients of [`crate::kernel`],
//! so Tables III–VI regenerate for the reference grid and extrapolate to
//! any other grid size.

use crate::kernel::{jacobi2d_coeffs, KernelError, Provenance, Vectorization};
use parallex::introspect::{CounterPath, CounterSnapshot, Instance};
use parallex_machine::spec::ProcessorId;

/// The hardware events the paper reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HwEvent {
    /// Retired instructions (`PAPI_TOT_INS`).
    Instructions,
    /// Last-level cache misses (`PAPI_TOT_CYC`-adjacent; the paper's
    /// "Cache Misses" column).
    CacheMisses,
    /// L2 cache misses (reported separately for ThunderX2).
    L2CacheMisses,
    /// Frontend stall cycles.
    FrontendStalls,
    /// Backend stall cycles.
    BackendStalls,
}

/// A completed measurement.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HwCounters {
    /// Retired instructions.
    pub instructions: f64,
    /// Last-level cache misses.
    pub cache_misses: f64,
    /// L2 cache misses.
    pub l2_misses: f64,
    /// Frontend stall cycles.
    pub fe_stalls: f64,
    /// Backend stall cycles.
    pub be_stalls: f64,
    /// Whether the stall numbers trace to the paper's tables or to our
    /// fitted estimates (Xeon/Kunpeng lack stall counters).
    pub stall_provenance: Provenance,
}

impl HwCounters {
    /// Read one event from the measurement.
    pub fn read(&self, ev: HwEvent) -> f64 {
        match ev {
            HwEvent::Instructions => self.instructions,
            HwEvent::CacheMisses => self.cache_misses,
            HwEvent::L2CacheMisses => self.l2_misses,
            HwEvent::FrontendStalls => self.fe_stalls,
            HwEvent::BackendStalls => self.be_stalls,
        }
    }

    /// Whether this machine supports stall counters (the paper: Xeon
    /// E5-2660 v3 and Hi1616 do not).
    pub fn stalls_supported(&self) -> bool {
        self.stall_provenance == Provenance::Paper
    }

    /// Render the measurement through the runtime's counter-path schema
    /// (`/papi{locality#L/total}/...`), so emulated hardware counts print,
    /// merge and diff with [`parallex`] runtime snapshots. Counts round to
    /// the nearest integer; the snapshot carries no timestamp (t = 0).
    pub fn as_snapshot(&self, locality: u32) -> CounterSnapshot {
        let entry = |name: &str, v: f64| {
            (CounterPath::new("papi", locality, Instance::Total, name), v.round() as u64)
        };
        CounterSnapshot::from_entries(
            0.0,
            vec![
                entry("count/instructions", self.instructions),
                entry("count/cache-misses", self.cache_misses),
                entry("count/l2-misses", self.l2_misses),
                entry("count/frontend-stalls", self.fe_stalls),
                entry("count/backend-stalls", self.be_stalls),
            ],
        )
    }
}

/// "Measure" the 2D Jacobi kernel on one core of `proc` over an
/// `nx × ny` grid for `steps` iterations — the counter-mode run of
/// Section VI (reference: 8192 × 16384, 100 steps).
pub fn measure(
    proc: ProcessorId,
    elem_bytes: usize,
    vec: Vectorization,
    nx: usize,
    ny: usize,
    steps: usize,
) -> Result<HwCounters, KernelError> {
    let lups = nx as f64 * ny as f64 * steps as f64;
    let c = jacobi2d_coeffs(proc, elem_bytes, vec)?;
    Ok(HwCounters {
        instructions: c.instr * lups,
        cache_misses: c.cache_misses * lups,
        l2_misses: c.l2_misses * lups,
        fe_stalls: c.fe_stalls * lups,
        be_stalls: c.be_stalls * lups,
        stall_provenance: c.stall_provenance,
    })
}

/// [`measure`] at the paper's counter workload (8192 × 16384, 100 steps).
pub fn measure_reference(
    proc: ProcessorId,
    elem_bytes: usize,
    vec: Vectorization,
) -> Result<HwCounters, KernelError> {
    measure(proc, elem_bytes, vec, 8192, 16384, 100)
}

#[cfg(test)]
mod tests {
    use super::*;
    use Vectorization::{Auto, Explicit};

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() / b < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn table_iii_xeon_reproduces() {
        let rows = [
            (Auto, 4, 3.153e10, 2.121e8),
            (Explicit, 4, 1.783e10, 3.706e8),
            (Auto, 8, 6.01e10, 4.74e8),
            (Explicit, 8, 3.507e10, 8.751e8),
        ];
        for (vec, bytes, instr, miss) in rows {
            let m = measure_reference(ProcessorId::XeonE5_2660v3, bytes, vec).unwrap();
            close(m.instructions, instr);
            close(m.cache_misses, miss);
            assert!(!m.stalls_supported(), "paper: Xeon lacks stall counters");
        }
    }

    #[test]
    fn table_iv_kunpeng_reproduces() {
        let rows = [
            (Auto, 4, 4.3e10, 3.148e9),
            (Explicit, 4, 4.144e10, 2.512e9),
            (Auto, 8, 8.321e10, 5.639e9),
            (Explicit, 8, 8.236e10, 4.953e9),
        ];
        for (vec, bytes, instr, miss) in rows {
            let m = measure_reference(ProcessorId::Kunpeng916, bytes, vec).unwrap();
            close(m.instructions, instr);
            close(m.cache_misses, miss);
            assert!(!m.stalls_supported());
        }
    }

    #[test]
    fn table_v_a64fx_reproduces() {
        let rows = [
            (Auto, 4, 1.284e10, 3.801e8, 9.43e9),
            (Explicit, 4, 1.496e10, 2.918e8, 8.003e9),
            (Auto, 8, 2.299e10, 3.86e8, 1.871e10),
            (Explicit, 8, 2.956e10, 3.56e8, 1.443e10),
        ];
        for (vec, bytes, instr, fe, be) in rows {
            let m = measure_reference(ProcessorId::A64FX, bytes, vec).unwrap();
            close(m.instructions, instr);
            close(m.fe_stalls, fe);
            close(m.be_stalls, be);
            assert!(m.stalls_supported());
        }
    }

    #[test]
    fn table_vi_tx2_reproduces() {
        let rows = [
            (Auto, 4, 4.039e10, 1.811e9, 1.522e10),
            (Explicit, 4, 4.394e10, 1.69e9, 6.437e9),
            (Auto, 8, 8.065e10, 5.716e9, 3.298e10),
            (Explicit, 8, 8.756e10, 6.055e9, 2.826e10),
        ];
        for (vec, bytes, instr, l2, be) in rows {
            let m = measure_reference(ProcessorId::ThunderX2, bytes, vec).unwrap();
            close(m.instructions, instr);
            close(m.l2_misses, l2);
            close(m.be_stalls, be);
        }
    }

    #[test]
    fn counts_scale_linearly_with_grid() {
        let small = measure(ProcessorId::A64FX, 8, Auto, 1024, 1024, 10).unwrap();
        let big = measure(ProcessorId::A64FX, 8, Auto, 2048, 1024, 10).unwrap();
        close(big.instructions, 2.0 * small.instructions);
        close(big.be_stalls, 2.0 * small.be_stalls);
    }

    #[test]
    fn snapshot_uses_parseable_native_paths() {
        let m = measure_reference(ProcessorId::A64FX, 8, Auto).unwrap();
        let snap = m.as_snapshot(1);
        assert_eq!(snap.len(), 5);
        for (p, v) in snap.iter() {
            assert_eq!(&CounterPath::parse(&p.to_string()).unwrap(), p);
            assert_eq!(p.object, "papi");
            assert_eq!(p.locality, 1);
            assert!(v > 0, "{p}");
        }
        let ins =
            snap.get(&CounterPath::new("papi", 1, Instance::Total, "count/instructions"));
        assert_eq!(ins, Some(m.instructions.round() as u64));
    }

    #[test]
    fn event_read_api_matches_fields() {
        let m = measure_reference(ProcessorId::ThunderX2, 4, Explicit).unwrap();
        assert_eq!(m.read(HwEvent::Instructions), m.instructions);
        assert_eq!(m.read(HwEvent::CacheMisses), m.cache_misses);
        assert_eq!(m.read(HwEvent::L2CacheMisses), m.l2_misses);
        assert_eq!(m.read(HwEvent::FrontendStalls), m.fe_stalls);
        assert_eq!(m.read(HwEvent::BackendStalls), m.be_stalls);
    }
}
