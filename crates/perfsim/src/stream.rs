//! The STREAM COPY model (Fig. 2).
//!
//! The paper measures memory bandwidth with STREAM COPY over 128 M
//! elements, best of ten runs, one pinned thread per core. Our model is
//! the per-NUMA-domain saturation curve of
//! [`parallex_machine::numa::MemorySystem`]; a *native* STREAM that
//! actually runs on the host lives in the `parallex-stencil` crate (used
//! by the examples) — this module produces the modeled curves for the
//! four paper machines.

use parallex_machine::numa::MemorySystem;
use parallex_machine::spec::ProcessorId;

/// STREAM COPY array length the paper uses (128 M elements).
pub const PAPER_STREAM_ELEMS: usize = 128_000_000;

/// Modeled STREAM COPY bandwidth at `cores` pinned cores, GB/s.
pub fn stream_copy_gbs(proc: ProcessorId, cores: usize) -> f64 {
    MemorySystem::new(&proc.spec()).stream_at(cores)
}

/// The full Fig. 2 series for one machine: `(cores, GB/s)` over its core
/// sweep.
pub fn stream_series(proc: ProcessorId) -> Vec<(usize, f64)> {
    let spec = proc.spec();
    spec.core_sweep()
        .into_iter()
        .map(|c| (c, stream_copy_gbs(proc, c)))
        .collect()
}

/// Bytes moved by one STREAM COPY pass (read + write of `elems` doubles).
pub fn copy_bytes(elems: usize) -> usize {
    elems * 8 * 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_monotone_nondecreasing() {
        for id in ProcessorId::ALL {
            let s = stream_series(id);
            for w in s.windows(2) {
                assert!(w[1].1 >= w[0].1 - 1e-12, "{id:?}: {w:?}");
            }
        }
    }

    #[test]
    fn full_node_hits_spec_bandwidth() {
        for id in ProcessorId::ALL {
            let spec = id.spec();
            let bw = stream_copy_gbs(id, spec.total_cores());
            assert!((bw - spec.node_bw_gbs()).abs() < 1e-9, "{id:?}");
        }
    }

    #[test]
    fn a64fx_dwarfs_ddr_machines() {
        // Fig. 2's headline: HBM2 puts the A64FX in a different class.
        let a64 = stream_copy_gbs(ProcessorId::A64FX, 48);
        for id in [ProcessorId::XeonE5_2660v3, ProcessorId::Kunpeng916, ProcessorId::ThunderX2] {
            let other = stream_copy_gbs(id, id.spec().total_cores());
            assert!(a64 > 2.5 * other, "{id:?}");
        }
    }

    #[test]
    fn single_domain_saturates_before_the_node() {
        // Plateau structure: once a domain's cores saturate it, adding
        // cores within the same domain gains nothing.
        let p = ProcessorId::Kunpeng916.spec();
        let saturating = (p.domain_bw_gbs / p.core_bw_gbs).ceil() as usize;
        let at_sat = stream_copy_gbs(ProcessorId::Kunpeng916, saturating);
        let later = stream_copy_gbs(ProcessorId::Kunpeng916, 16);
        assert!((at_sat - later).abs() < 1e-9, "{at_sat} vs {later}");
    }

    #[test]
    fn copy_bytes_counts_read_and_write() {
        assert_eq!(copy_bytes(PAPER_STREAM_ELEMS), 128_000_000 * 16);
    }
}
